"""Command-line interface: ``repro-logs`` (or ``python -m repro``).

Subcommands
-----------
* ``query``     — evaluate an incident pattern over a log file (with a
  pre-flight static-diagnostics pass; opt out with ``--no-lint``);
* ``lint``      — static diagnostics for a pattern, optionally against a
  log's vocabulary/statistics and/or a bundled workflow model;
* ``stats``     — descriptive statistics of a log;
* ``validate``  — Definition 2 well-formedness report (optional repair);
* ``generate``  — simulate a workflow model (or synthetic noise) to a log;
* ``anomalies`` — run a bundled anomaly rule-set over a log;
* ``monitor``   — replay a log record by record through the streaming
  evaluator, printing each alert at the record that completes it;
* ``profile``   — evaluate a pattern with tracing enabled and print a
  per-node cost breakdown (predicted vs. actual pairs, hottest node);
  ``--flamegraph out.html`` / ``--folded out.txt`` render the recorded
  span tree as a self-contained HTML flamegraph / folded stacks;
* ``batch``     — evaluate several patterns in one shared-scan pass,
  deduplicating common subpatterns across the queries and skipping the
  scans of queries the prover shows are subsumed by a sibling (opt out
  with ``--no-analyze``; a pre-flight ``lint_batch`` pass reports
  QW501 subsumption findings on stderr, opt out with ``--no-lint``);
* ``analyze``   — the decision procedures of ``repro.analysis``:
  ``--rules`` proves every shipped optimizer rewrite rule
  equivalence-preserving (CI gate), ``--equivalent P Q`` /
  ``--contains P Q`` decide the pair and print a counterexample trace
  on refutation (exit 0 holds, 1 refuted, 2 usage/input error,
  3 internal error);
* ``bench``     — the continuous-performance harness: ``bench run``
  executes a registry suite and records a ``repro.obs.bench/v1``
  document (appending to ``BENCH_history.jsonl``), ``bench compare``
  issues noise-aware pass/regress verdicts against a baseline,
  ``bench report`` prints the recorded trajectory, ``bench list`` the
  registered cases;
* ``events``    — query/filter/tail a ``repro.obs.journal/v1`` JSONL
  journal (``--slow-ms`` is the slow-query log view);
* ``top``       — per-pattern resource ranking over a journal;
* ``convert``   — transcode between jsonl / csv / xes.

``query``, ``profile`` and ``batch`` accept ``--jobs N`` to evaluate over
wid-disjoint shards on a process pool (see ``docs/PARALLELISM.md``);
results are identical to serial evaluation.  ``query --progress`` adds
per-shard completion feedback on stderr.

``query`` and ``batch`` accept ``--journal PATH`` (append the run's
lifecycle events as JSONL) and the resource-governor budgets
``--deadline-ms`` / ``--max-pairs``; a run killed by the governor exits
with the dedicated code **4** (see ``docs/OBSERVABILITY.md``), after
recording a terminal ``killed`` journal event.

Log formats are inferred from file extensions (``.jsonl``, ``.csv``,
``.xes``/``.xml``); ``-`` reads from stdin / writes to stdout as JSONL.
``-v`` / ``-vv`` on the root command routes the ``repro.*`` diagnostic
logging hierarchy to stderr at INFO / DEBUG.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path

from repro.analytics.anomaly import clinic_rules, loan_rules, order_rules
from repro.cache import CachePolicy, QueryCache
from repro.core.backend import Backend
from repro.core.errors import QueryGovernorError, ReproError
from repro.core.lint import Linter, Severity, format_diagnostics
from repro.core.model import Log
from repro.core.options import EngineOptions
from repro.core.parser import parse, parse_with_spans
from repro.core.query import ENGINES, Query
from repro.generator.synthetic import SyntheticLogConfig, generate_log
from repro.logstore import (
    read_csv,
    read_jsonl,
    read_xes,
    repair_log,
    summarize,
    validation_report,
    write_csv,
    write_jsonl,
    write_xes,
)
from repro.obs import MetricsRegistry, Tracer, enable_verbose, metrics_to_dict, render_trace
from repro.obs.journal import EVENT_KINDS as JOURNAL_EVENT_KINDS
from repro.obs.journal import TOP_KEYS as JOURNAL_TOP_KEYS
from repro.workflow.engine import SimulationConfig, WorkflowEngine
from repro.workflow.models import (
    clinic_referral_workflow,
    loan_approval_workflow,
    order_fulfillment_workflow,
)

__all__ = ["main", "build_parser"]

_MODELS = {
    "clinic": clinic_referral_workflow,
    "order": order_fulfillment_workflow,
    "loan": loan_approval_workflow,
}

_RULESETS = {
    "clinic": clinic_rules,
    "order": order_rules,
    "loan": loan_rules,
}


def _load_log(path: str, *, validate: bool = True) -> Log:
    if path == "-":
        return read_jsonl(sys.stdin, validate=validate)
    suffix = Path(path).suffix.lower()
    if suffix == ".jsonl":
        return read_jsonl(path, validate=validate)
    if suffix == ".csv":
        return read_csv(path, validate=validate)
    if suffix in (".xes", ".xml"):
        return read_xes(path, validate=validate)
    raise ReproError(
        f"cannot infer log format from {path!r}; use .jsonl, .csv or .xes"
    )


def _save_log(log: Log, path: str) -> None:
    if path == "-":
        write_jsonl(log, sys.stdout)
        return
    suffix = Path(path).suffix.lower()
    if suffix == ".jsonl":
        write_jsonl(log, path)
    elif suffix == ".csv":
        write_csv(log, path)
    elif suffix in (".xes", ".xml"):
        write_xes(log, path)
    else:
        raise ReproError(
            f"cannot infer log format from {path!r}; use .jsonl, .csv or .xes"
        )


def _add_governor_arguments(command: argparse.ArgumentParser) -> None:
    """The journal/governor flags shared by ``query`` and ``batch``."""
    command.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append the run's lifecycle events to this JSONL journal "
        "(repro.obs.journal/v1; inspect with `repro-logs events/top`)",
    )
    command.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock budget; a run past it is killed with exit code 4",
    )
    command.add_argument(
        "--max-pairs",
        type=int,
        default=None,
        metavar="N",
        help="budget on pairs examined; a run past it is killed with "
        "exit code 4",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (exposed for the test-suite)."""
    parser = argparse.ArgumentParser(
        prog="repro-logs",
        description="Incident-pattern queries over workflow logs",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="enable repro.* diagnostics on stderr (-v INFO, -vv DEBUG)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="evaluate an incident pattern")
    query.add_argument("--log", required=True, help="log file (.jsonl/.csv/.xes)")
    query.add_argument("--pattern", required=True, help='e.g. "A -> (B | C)"')
    query.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="engine (default: indexed; --backend sqlite implies sqlite)",
    )
    query.add_argument(
        "--no-optimize", action="store_true", help="skip the query optimizer"
    )
    query.add_argument(
        "--mode",
        choices=("incidents", "count", "exists", "instances"),
        default="incidents",
        help="what to print",
    )
    query.add_argument(
        "--limit", type=int, default=20, help="max incidents to print"
    )
    query.add_argument(
        "--explain", action="store_true", help="print the chosen plan"
    )
    query.add_argument(
        "--max-incidents",
        type=int,
        default=None,
        help="abort if an incident set exceeds this size",
    )
    query.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the pre-flight static-diagnostics pass",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help="record and print the per-node evaluation span tree",
    )
    query.add_argument(
        "--metrics",
        action="store_true",
        help="print the engine metrics snapshot after the results",
    )
    query.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default="json",
        help="metrics output format: JSON document or Prometheus text "
        "exposition (implies --metrics)",
    )
    query.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="evaluate wid-disjoint shards on this many parallel workers",
    )
    query.add_argument(
        "--backend",
        choices=tuple(b.value for b in Backend.requestable()),
        default=None,
        help="execution backend: a sharded-executor backend (implies "
        "--jobs; default auto) or 'sqlite' to compile the pattern to SQL "
        "over the columnar schema",
    )
    query.add_argument(
        "--progress",
        action="store_true",
        help="report per-shard completion on stderr (parallel runs)",
    )
    query.add_argument(
        "--cache",
        action="store_true",
        help="enable the in-process result/memo cache and report which "
        "layer served the run (see docs/CACHING.md)",
    )
    query.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="per-layer cache byte budget (default 32 MiB per layer)",
    )
    query.add_argument(
        "--cache-equivalence",
        action="store_true",
        help="key the result cache on proved equivalence classes "
        "(repro.analysis canonical keys) instead of AC-canonical "
        "patterns; implies --cache",
    )
    query.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="evaluate N times, timing each run on stderr — with --cache "
        "the warm runs demonstrate the result layer",
    )
    _add_governor_arguments(query)

    profile = commands.add_parser(
        "profile",
        help="per-node cost breakdown: predicted vs. actual pairs, hottest node",
    )
    profile.add_argument("--log", required=True, help="log file (.jsonl/.csv/.xes)")
    profile.add_argument("--pattern", required=True, help='e.g. "A -> (B | C)"')
    profile.add_argument(
        "--engine", choices=sorted(ENGINES), default="indexed", help="engine"
    )
    profile.add_argument(
        "--no-optimize", action="store_true", help="skip the query optimizer"
    )
    profile.add_argument(
        "--max-incidents",
        type=int,
        default=None,
        help="abort if an incident set exceeds this size",
    )
    profile.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    profile.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="profile a sharded process-pool evaluation with this many workers",
    )
    profile.add_argument(
        "--flamegraph",
        metavar="OUT.html",
        default=None,
        help="write the recorded span tree as a self-contained HTML flamegraph",
    )
    profile.add_argument(
        "--folded",
        metavar="OUT.txt",
        default=None,
        help="write the span tree as folded stacks (self time, microseconds)",
    )

    bench = commands.add_parser(
        "bench",
        help="benchmark harness: run suites, gate regressions, inspect history",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_commands.add_parser(
        "run", help="run a benchmark suite and record a bench/v1 document"
    )
    bench_run.add_argument(
        "--suite", default="smoke", help="registry suite to run (default: smoke)"
    )
    bench_run.add_argument(
        "--case",
        action="append",
        metavar="NAME",
        help="run only this case (repeatable; overrides --suite)",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=5, help="measured repetitions per case"
    )
    bench_run.add_argument(
        "--warmup", type=int, default=1, help="discarded warmup calls per case"
    )
    bench_run.add_argument(
        "--out",
        default="BENCH_results.json",
        help="result document path (gitignored by default naming)",
    )
    bench_run.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="append-only history file (- to skip appending)",
    )

    bench_compare = bench_commands.add_parser(
        "compare", help="noise-aware verdicts of a run against a baseline"
    )
    bench_compare.add_argument(
        "--baseline",
        default="benchmarks/baselines/smoke.json",
        help="committed baseline document",
    )
    bench_compare.add_argument(
        "--results",
        default="BENCH_results.json",
        help="candidate document (a bench run output)",
    )
    bench_compare.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative regression threshold on the median (default 0.25)",
    )
    bench_compare.add_argument(
        "--report-only",
        action="store_true",
        help="always exit 0: report verdicts without gating",
    )

    bench_report = bench_commands.add_parser(
        "report", help="print the recorded history trajectory"
    )
    bench_report.add_argument(
        "--history", default="BENCH_history.jsonl", help="history file to read"
    )
    bench_report.add_argument(
        "--case", default=None, metavar="NAME", help="one case's full trajectory"
    )
    bench_report.add_argument(
        "--last", type=int, default=10, help="show at most the last N runs"
    )

    bench_commands.add_parser("list", help="list the registered cases")

    bench_history = bench_commands.add_parser(
        "history", help="inspect or prune the recorded history file"
    )
    bench_history.add_argument(
        "--history", default="BENCH_history.jsonl", help="history file"
    )
    bench_history.add_argument(
        "--tail",
        type=int,
        default=None,
        metavar="N",
        help="print only the newest N runs",
    )
    bench_history.add_argument(
        "--prune",
        action="store_true",
        help="rewrite the file keeping only the newest --keep runs",
    )
    bench_history.add_argument(
        "--keep",
        type=int,
        default=50,
        metavar="N",
        help="runs to keep with --prune (default 50)",
    )

    events = commands.add_parser(
        "events", help="query/filter/tail a query-lifecycle journal"
    )
    events.add_argument(
        "--journal", required=True, metavar="PATH", help="JSONL journal file"
    )
    events.add_argument(
        "--query-id", default=None, help="only this query's events"
    )
    events.add_argument(
        "--kind",
        action="append",
        choices=JOURNAL_EVENT_KINDS,
        default=None,
        help="only these event kinds (repeatable)",
    )
    events.add_argument(
        "--pattern",
        default=None,
        help="substring match on the event's pattern field",
    )
    events.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="slow-query log: terminal events at/above this wall time, "
        "slowest first (combines with the other filters)",
    )
    events.add_argument(
        "--tail", type=int, default=None, metavar="N", help="newest N events"
    )
    events.add_argument(
        "--no-validate",
        action="store_true",
        help="skip schema validation while loading",
    )
    events.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )

    top = commands.add_parser(
        "top", help="per-pattern resource ranking over a journal"
    )
    top.add_argument(
        "--journal", required=True, metavar="PATH", help="JSONL journal file"
    )
    top.add_argument(
        "--by",
        choices=JOURNAL_TOP_KEYS,
        default="wall_ms",
        help="ranking key (default wall_ms)",
    )
    top.add_argument(
        "--limit", type=int, default=10, metavar="N", help="rows to print"
    )
    top.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )

    slo = commands.add_parser(
        "slo",
        help="replay a journal through the windowed SLO engine "
        "(same aggregator as the live admin plane)",
    )
    slo.add_argument(
        "--journal", required=True, metavar="PATH", help="JSONL journal file"
    )
    slo.add_argument(
        "--window", type=float, default=300.0, metavar="SECONDS",
        help="trailing stats window to report (default 300)",
    )
    slo.add_argument(
        "--bucket", type=float, default=10.0, metavar="SECONDS",
        help="aggregation bucket width (default 10)",
    )
    slo.add_argument(
        "--fast-window", type=float, default=300.0, metavar="SECONDS",
        help="fast burn-rate window (default 300)",
    )
    slo.add_argument(
        "--slow-window", type=float, default=3600.0, metavar="SECONDS",
        help="slow burn-rate window (default 3600)",
    )
    slo.add_argument(
        "--availability-target", type=float, default=0.999,
        help="availability objective (default 0.999)",
    )
    slo.add_argument(
        "--latency-target", type=float, default=0.95,
        help="latency objective (default 0.95)",
    )
    slo.add_argument(
        "--latency-threshold-ms", type=float, default=500.0, metavar="MS",
        help="latency objective threshold (default 500ms)",
    )
    slo.add_argument(
        "--burn-threshold", type=float, default=1.0,
        help="burn multiple at which an objective breaches (default 1.0)",
    )
    slo.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows per attribution table (default 10)",
    )
    slo.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )

    batch = commands.add_parser(
        "batch",
        help="evaluate several patterns in one shared-scan pass",
    )
    batch.add_argument("--log", required=True, help="log file (.jsonl/.csv/.xes)")
    batch.add_argument(
        "patterns",
        nargs="*",
        metavar="PATTERN",
        help='patterns, e.g. "A -> B" "A -> B -> C"',
    )
    batch.add_argument(
        "--queries",
        metavar="FILE",
        default=None,
        help="file with one pattern per line (# comments allowed; - for stdin)",
    )
    batch.add_argument(
        "--no-optimize",
        action="store_true",
        help="skip rule-based canonicalisation (reduces subpattern sharing)",
    )
    batch.add_argument(
        "--no-analyze",
        action="store_true",
        help="skip the subsumption prover pass (every query scans the log "
        "independently)",
    )
    batch.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the pre-flight lint_batch pass (QW501 subsumption "
        "findings on stderr)",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard the log over this many parallel workers",
    )
    batch.add_argument(
        "--backend",
        choices=tuple(
            b.value for b in Backend.executor() if b is not Backend.AUTO
        ),
        default="process",
        help="backend used when --jobs > 1",
    )
    batch.add_argument(
        "--max-incidents",
        type=int,
        default=None,
        help="abort if an incident set exceeds this size",
    )
    batch.add_argument(
        "--cache",
        action="store_true",
        help="serve repeated patterns from the result cache and persist "
        "subpattern memos across the batch (in-process backends)",
    )
    _add_governor_arguments(batch)

    analyze = commands.add_parser(
        "analyze",
        help="decision procedures: rewrite-rule soundness, pattern "
        "equivalence and containment (repro.analysis)",
    )
    analyze.add_argument(
        "--rules",
        action="store_true",
        help="prove every shipped optimizer rewrite rule "
        "equivalence-preserving over the standard corpus",
    )
    analyze.add_argument(
        "--equivalent",
        nargs=2,
        metavar=("P", "Q"),
        default=None,
        help="decide P ≡ Q; prints a counterexample trace on refutation",
    )
    analyze.add_argument(
        "--contains",
        nargs=2,
        metavar=("P", "Q"),
        default=None,
        help="decide P ⊑ Q (every incident of P is an incident of Q); "
        "prints a counterexample trace on refutation",
    )
    analyze.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="prover automaton state budget (default 20000)",
    )
    analyze.add_argument(
        "--samples",
        type=int,
        default=40,
        help="random corpus patterns per rule for --rules (default 40)",
    )

    lint = commands.add_parser(
        "lint", help="static diagnostics for a pattern (no evaluation)"
    )
    lint.add_argument("pattern", help='e.g. "A -> (B | C)"')
    lint.add_argument(
        "--log", help="check against this log's vocabulary and statistics"
    )
    lint.add_argument(
        "--model",
        choices=sorted(_MODELS),
        help="check against a bundled workflow model's control flow",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    lint.add_argument(
        "--cost-threshold",
        type=float,
        default=1e7,
        help="estimated plan cost above which QW401 fires",
    )

    stats = commands.add_parser("stats", help="log statistics")
    stats.add_argument("--log", required=True)

    validate = commands.add_parser("validate", help="well-formedness report")
    validate.add_argument("--log", required=True)
    validate.add_argument(
        "--repair", metavar="OUT", help="write a repaired log to OUT"
    )

    generate = commands.add_parser("generate", help="simulate a workflow model")
    generate.add_argument(
        "--model",
        choices=(*sorted(_MODELS), "synthetic"),
        default="clinic",
    )
    generate.add_argument("--instances", type=int, default=20)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--stagger", type=int, default=0,
                          help="steps between instance launches")
    generate.add_argument("--out", required=True, help="output file or -")

    anomalies = commands.add_parser("anomalies", help="run anomaly rules")
    anomalies.add_argument("--log", required=True)
    anomalies.add_argument(
        "--rules", choices=sorted(_RULESETS), default="clinic"
    )

    monitor = commands.add_parser(
        "monitor", help="stream a log through the live rule monitor"
    )
    monitor.add_argument("--log", required=True)
    monitor.add_argument(
        "--rules", choices=sorted(_RULESETS), default="clinic"
    )
    monitor.add_argument(
        "--quiet", action="store_true",
        help="print only the final per-rule summary",
    )

    show = commands.add_parser(
        "show", help="render a log (table, instance timeline, swimlanes, dot)"
    )
    show.add_argument("--log", required=True)
    show.add_argument(
        "--view",
        choices=("table", "instance", "swimlanes", "dot"),
        default="table",
    )
    show.add_argument("--wid", type=int, default=None,
                      help="instance id (view=instance)")
    show.add_argument("--pattern", default=None,
                      help="highlight this pattern's incidents (view=instance)")
    show.add_argument("--limit", type=int, default=25,
                      help="rows to print (view=table)")
    show.add_argument("--attrs", action="store_true",
                      help="include attribute maps (view=table)")

    convert = commands.add_parser("convert", help="transcode a log file")
    convert.add_argument("--src", dest="source", required=True)
    convert.add_argument("--dst", dest="target", required=True)

    serve = commands.add_parser(
        "serve", help="run the HTTP query daemon (see docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port; 0 binds an ephemeral port")
    serve.add_argument(
        "--catalog",
        help="catalog source: a .json/.toml config or a directory of log files",
    )
    serve.add_argument(
        "--store", action="append", default=[], metavar="NAME=PATH",
        help="add one named log file to the catalog (repeatable)",
    )
    serve.add_argument("--max-concurrency", type=int, default=8,
                       help="queries evaluating at once")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="requests allowed to wait for a slot")
    serve.add_argument("--queue-timeout-ms", type=float, default=10_000.0,
                       help="longest a request waits in the queue")
    serve.add_argument("--deadline-ms-ceiling", type=float, default=30_000.0,
                       help="per-request wall-clock budget ceiling")
    serve.add_argument("--max-pairs-ceiling", type=int, default=50_000_000,
                       help="per-request pairs-examined budget ceiling")
    serve.add_argument("--jobs-ceiling", type=int, default=8,
                       help="per-request parallel fan-out ceiling")
    serve.add_argument("--cache-bytes", type=int, default=None,
                       help="per-layer byte budget for the shared query cache")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="append query lifecycle events to this JSONL file")
    serve.add_argument("--access-log", action="store_true",
                       help="emit one structured JSON access-log line per "
                       "request on the repro.service.access logger")

    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    # Exit codes (documented in docs/QUERY_LANGUAGE.md §6): 0 clean or
    # warnings/info only, 1 error-severity diagnostics, 2 usage/input
    # error (syntax, unreadable log), 3 internal linter failure — so a
    # pipeline can tell "the query is bad" from "the linter is broken".
    parsed = parse_with_spans(args.pattern)
    linter = Linter.for_context(
        log=_load_log(args.log) if args.log else None,
        spec=_MODELS[args.model]() if args.model else None,
        cost_threshold=args.cost_threshold,
    )
    try:
        diagnostics = linter.lint(parsed)
        if args.format == "json":
            print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
        else:
            print(format_diagnostics(diagnostics, parsed.text))
    except ReproError:
        raise  # usage/input error: main() maps it to exit code 2
    except Exception as exc:  # noqa: BLE001 - the distinct-code contract
        print(f"internal error: {exc!r}", file=sys.stderr)
        return 3
    return 1 if any(d.severity == Severity.ERROR for d in diagnostics) else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import PatternProver, default_prover, verify_rules

    chosen = sum(
        1 for flag in (args.rules, args.equivalent, args.contains) if flag
    )
    if chosen != 1:
        raise ReproError(
            "choose exactly one of --rules, --equivalent P Q, --contains P Q"
        )
    prover = (
        PatternProver(max_states=args.max_states)
        if args.max_states is not None
        else default_prover()
    )
    try:
        if args.rules:
            report = verify_rules(samples=args.samples, prover=prover)
            print(report.format())
            return 0 if report.ok else 1
        if args.equivalent:
            p, q = (parse(text) for text in args.equivalent)
            counterexample = prover.witness(p, q)
            if counterexample is None:
                print("equivalent")
                return 0
            print("not equivalent")
            print(counterexample.format())
            return 1
        p, q = (parse(text) for text in args.contains)
        refutation = prover.containment_witness(p, q)
        if refutation is None:
            print("contained: every incident of P is an incident of Q")
            return 0
        print("not contained")
        print(refutation.format())
        return 1
    except ReproError:
        raise  # includes AnalysisError: budget/unsupported → exit code 2
    except Exception as exc:  # noqa: BLE001 - mirror lint's contract
        print(f"internal error: {exc!r}", file=sys.stderr)
        return 3


def _shard_progress(stream):
    """A ``progress(done, total)`` printer for per-shard completion.

    On a TTY the line rewrites in place (carriage return, newline at the
    end); on anything else — pipes, CI logs, test capture — it prints
    one plain line per shard so the output stays free of control
    characters.
    """
    is_tty = bool(getattr(stream, "isatty", lambda: False)())

    def progress(done: int, total: int) -> None:
        if is_tty:
            end = "\n" if done == total else ""
            print(f"\rshards {done}/{total}", end=end, file=stream, flush=True)
        else:
            print(f"shards {done}/{total}", file=stream, flush=True)

    return progress


def _cmd_query(args: argparse.Namespace) -> int:
    log = _load_log(args.log)
    parsed = parse_with_spans(args.pattern)
    if not args.no_lint:
        # pre-flight warning pass: report, never block evaluation
        diagnostics = Linter.for_log(log).lint(parsed)
        for diagnostic in diagnostics:
            print(diagnostic.format(parsed.text), file=sys.stderr)
    tracer = Tracer() if args.trace else None
    want_metrics = args.metrics or args.metrics_format != "json"
    registry = MetricsRegistry() if want_metrics else None
    cache = None
    if args.cache or args.cache_equivalence:
        policy = CachePolicy(equivalence_keys=args.cache_equivalence)
        if args.cache_bytes is not None:
            policy = policy.with_budget(args.cache_bytes)
        cache = QueryCache(policy, metrics=registry)
    journal = None
    if args.journal is not None:
        from repro.obs.journal import QueryJournal

        journal = QueryJournal(args.journal, metrics=registry)
    query = Query(
        parsed.pattern,
        EngineOptions(
            engine=args.engine,
            optimize=not args.no_optimize,
            max_incidents=args.max_incidents,
            tracer=tracer,
            metrics=registry,
            jobs=args.jobs,
            backend=args.backend,
            progress=_shard_progress(sys.stderr) if args.progress else None,
            cache=cache,
            deadline_ms=args.deadline_ms,
            max_pairs=args.max_pairs,
            journal=journal,
        ),
    )
    if args.explain:
        print(query.explain(log))
        print()

    try:
        # warm-up repeats (timed on stderr); the final run produces the output
        runs = max(1, args.repeat)
        for attempt in range(1, runs):
            started = time.perf_counter()
            query.run(log)
            elapsed_ms = (time.perf_counter() - started) * 1e3
            layer = query.last_cache_layer or "none"
            print(
                f"run {attempt}/{runs}: {elapsed_ms:.2f} ms  (cache: {layer})",
                file=sys.stderr,
            )

        started = time.perf_counter()
        if args.mode == "exists":
            print("yes" if query.exists(log) else "no")
        elif args.mode == "count":
            print(query.count(log))
        elif args.mode == "instances":
            print(" ".join(map(str, query.matching_instances(log))))
        else:
            incidents = query.run(log)
            print(f"{len(incidents)} incident(s)")
            for i, incident in enumerate(incidents):
                if i >= args.limit:
                    print(f"... ({len(incidents) - args.limit} more)")
                    break
                members = ", ".join(
                    f"l{r.lsn}:{r.activity}@{r.is_lsn}" for r in incident
                )
                print(f"  wid={incident.wid}  {{{members}}}")
        if runs > 1:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            layer = query.last_cache_layer or "none"
            print(
                f"run {runs}/{runs}: {elapsed_ms:.2f} ms  (cache: {layer})",
                file=sys.stderr,
            )
    finally:
        # the journal owns its stream: close even on a governor kill so
        # the terminal `killed` event is flushed to disk
        if journal is not None:
            journal.close()
    if cache is not None:
        print(f"cache: served by {query.last_cache_layer or 'none (cold)'}")
    if tracer is not None:
        print()
        print("trace:")
        if tracer.last_root is None:
            print("  (no span tree recorded for this mode/engine path)")
        else:
            print(render_trace(tracer.last_root))
            stats = query.engine.last_stats
            if stats is not None:
                print(
                    f"pairs examined: {int(tracer.last_root.total('pairs'))} "
                    f"traced / {stats.pairs_examined} counted"
                )
    if registry is not None:
        print()
        print("metrics:")
        if args.metrics_format == "prom":
            print(registry.to_prometheus(), end="")
        else:
            print(json.dumps(metrics_to_dict(registry), indent=2, ensure_ascii=False))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import profile_query

    log = _load_log(args.log)
    report = profile_query(
        log,
        args.pattern,
        engine=args.engine,
        optimize=not args.no_optimize,
        max_incidents=args.max_incidents,
        jobs=args.jobs,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, ensure_ascii=False))
    else:
        print(report.format())
        if report.extra:
            print(
                f"parallel: {report.extra['jobs']} worker(s), "
                f"{report.extra['shards']} shard(s), "
                f"backend={report.extra['backend']}"
            )
    if args.flamegraph:
        from repro.obs.flamegraph import flamegraph_html

        title = f"{report.pattern_text}  (engine={report.engine})"
        Path(args.flamegraph).write_text(
            flamegraph_html(report.trace, title=title), encoding="utf-8"
        )
        print(f"flamegraph written to {args.flamegraph}", file=sys.stderr)
    if args.folded:
        from repro.obs.flamegraph import folded_stacks

        Path(args.folded).write_text(folded_stacks(report.trace), encoding="utf-8")
        print(f"folded stacks written to {args.folded}", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        append_history,
        case_series,
        compare_documents,
        default_registry,
        load_history,
        run_suite,
    )
    from repro.obs.export import validate_bench

    if args.bench_command == "list":
        registry = default_registry()
        for case in registry:
            suites = ",".join(case.suites)
            print(f"{case.name:40s} [{suites}]  {case.description}")
        print(f"--- {len(registry)} case(s), suites: {', '.join(registry.suites())} ---")
        return 0

    if args.bench_command == "run":
        registry = default_registry()
        names = list(args.case) if args.case else None
        cases = registry.select(suite=None if names else args.suite, names=names)
        suite_name = "custom" if names else args.suite

        def progress(name: str, index: int, total: int) -> None:
            print(f"bench {index + 1}/{total}: {name}", file=sys.stderr, flush=True)

        document = run_suite(
            cases,
            suite=suite_name,
            warmup=args.warmup,
            repeats=args.repeats,
            progress=progress,
        )
        validate_bench(document)
        out = Path(args.out)
        out.write_text(
            json.dumps(document, indent=2, ensure_ascii=False, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        summary_path: Path | None = None
        if args.history != "-":
            append_history(document, args.history)
            # per-suite summary (BENCH_<suite>.json) next to the history
            # file: the latest full document for this suite, so the perf
            # trajectory per suite is tracked without replaying the
            # whole history (ROADMAP tier-1 workflow)
            summary_path = Path(args.history).parent / f"BENCH_{suite_name}.json"
            summary_path.write_text(
                json.dumps(
                    document, indent=2, ensure_ascii=False, sort_keys=True
                )
                + "\n",
                encoding="utf-8",
            )
        for case in document["cases"]:
            stats = case["stats"]
            print(
                f"{case['name']:40s} median {stats['median_s'] * 1e3:9.3f}ms  "
                f"mad {stats['mad_s'] * 1e3:7.3f}ms  "
                f"(n={stats['n']}, rejected={stats['rejected']})"
            )
        print(
            f"--- suite {suite_name!r}: {len(document['cases'])} case(s) -> {out}"
            + ("" if args.history == "-" else f", history -> {args.history}")
            + ("" if summary_path is None else f", summary -> {summary_path}")
            + " ---"
        )
        return 0

    if args.bench_command == "compare":
        baseline = _read_bench_document(args.baseline)
        candidate = _read_bench_document(args.results)
        report = compare_documents(baseline, candidate, tolerance=args.tolerance)
        print(report.format())
        if args.report_only:
            return 0
        return 0 if report.ok else 1

    if args.bench_command == "history":
        from repro.obs.bench import prune_history

        if args.prune:
            dropped, kept = prune_history(args.history, keep=args.keep)
            print(f"pruned {dropped} run(s), kept {kept} in {args.history}")
            return 0
        documents = load_history(args.history)
        if not documents:
            print(f"no history at {args.history}")
            return 0
        shown = documents[-args.tail:] if args.tail else documents
        for document in shown:
            stamp = _format_unix(int(document.get("created_unix", 0)))
            cases = document.get("cases", [])
            total_ms = sum(c["stats"]["median_s"] for c in cases) * 1e3
            print(
                f"{stamp}  suite={document.get('suite', '?'):8s}  "
                f"{len(cases):2d} case(s)  sum-of-medians {total_ms:9.3f}ms"
            )
        print(
            f"--- showing {len(shown)} of {len(documents)} recorded run(s) "
            f"in {args.history} ---"
        )
        return 0

    assert args.bench_command == "report"
    documents = load_history(args.history)
    if not documents:
        print(f"no history at {args.history}")
        return 0
    if args.case:
        series = case_series(documents, args.case)
        if not series:
            raise ReproError(f"case {args.case!r} never appears in {args.history}")
        for created, stats in series[-args.last:]:
            stamp = _format_unix(created)
            print(
                f"{stamp}  median {stats['median_s'] * 1e3:9.3f}ms  "
                f"mad {stats['mad_s'] * 1e3:7.3f}ms  (n={stats['n']})"
            )
        return 0
    for document in documents[-args.last:]:
        stamp = _format_unix(int(document.get("created_unix", 0)))
        cases = document.get("cases", [])
        total_ms = sum(c["stats"]["median_s"] for c in cases) * 1e3
        print(
            f"{stamp}  suite={document.get('suite', '?'):8s}  "
            f"{len(cases):2d} case(s)  sum-of-medians {total_ms:9.3f}ms"
        )
    print(f"--- {len(documents)} recorded run(s) in {args.history} ---")
    return 0


def _read_bench_document(path: str) -> dict:
    from repro.obs.export import SchemaError, validate_bench

    try:
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
    except FileNotFoundError:
        raise ReproError(
            f"no bench document at {path!r} (run `repro-logs bench run` first, "
            f"or point --baseline/--results at an existing file)"
        ) from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON ({exc.msg})") from None
    try:
        validate_bench(document)
    except SchemaError as exc:
        raise ReproError(f"{path}: {exc}") from None
    return document


def _format_unix(created: int) -> str:
    from datetime import datetime, timezone

    return datetime.fromtimestamp(created, tz=timezone.utc).strftime(
        "%Y-%m-%d %H:%M:%SZ"
    )


def _read_query_file(path: str) -> list[str]:
    """Patterns from a query file: one per line, ``#`` comments, blank
    lines ignored."""
    text = sys.stdin.read() if path == "-" else Path(path).read_text("utf-8")
    patterns = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            patterns.append(line)
    return patterns


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.exec.batch import evaluate_batch

    patterns = list(args.patterns)
    if args.queries:
        patterns.extend(_read_query_file(args.queries))
    if not patterns:
        raise ReproError("no patterns given (positional or --queries FILE)")
    log = _load_log(args.log)
    if not args.no_lint:
        # pre-flight pass on stderr (stdout carries only results): per-
        # query diagnostics plus proved QW501 cross-query subsumption
        from repro.core.lint import lint_batch

        for text, diagnostics in zip(patterns, lint_batch(patterns, log=log)):
            for diagnostic in diagnostics:
                print(f"{text}: {diagnostic.format()}", file=sys.stderr)
    journal = None
    if args.journal is not None:
        from repro.obs.journal import QueryJournal

        journal = QueryJournal(args.journal)
    try:
        result = evaluate_batch(
            log,
            patterns,
            optimize=not args.no_optimize,
            analyze=not args.no_analyze,
            jobs=args.jobs,
            backend=args.backend,
            max_incidents=args.max_incidents,
            cache=QueryCache() if args.cache else None,
            deadline_ms=args.deadline_ms,
            max_pairs=args.max_pairs,
            journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
    for text, incidents in zip(patterns, result.results):
        print(f"{len(incidents):6d}  {text}")
    summary = (
        f"--- {len(patterns)} query(ies), {result.stats.pairs_examined} pairs "
        f"examined, {result.shared_hits} shared subpattern hit(s), "
        f"{result.subsumed} subsumed, backend={result.backend}, "
        f"jobs={result.jobs}"
    )
    if args.cache:
        summary += f", {result.cache_hits} cached result(s)"
    print(summary + " ---")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from repro.obs.export import SchemaError
    from repro.obs.journal import filter_events, read_journal, slow_queries

    try:
        events = read_journal(args.journal, validate=not args.no_validate)
    except FileNotFoundError:
        raise ReproError(f"no journal at {args.journal!r}") from None
    except SchemaError as exc:
        raise ReproError(f"{args.journal}: {exc}") from None
    selected = filter_events(
        events,
        query_id=args.query_id,
        kinds=args.kind,
        pattern=args.pattern,
    )
    if args.slow_ms is not None:
        selected = slow_queries(selected, threshold_ms=args.slow_ms)
    if args.tail is not None and args.tail >= 0:
        selected = selected[len(selected) - args.tail:]
    if args.format == "json":
        print(json.dumps(selected, indent=2, ensure_ascii=False))
        return 0
    for event in selected:
        extra = ""
        kind = event.get("event")
        if kind == "submit":
            extra = f"op={event.get('op')} pattern={event.get('pattern')!r}"
        elif kind == "plan":
            extra = f"changed={event.get('changed')} -> {event.get('optimized')!r}"
        elif kind == "cache":
            extra = f"probe={event.get('probe')} hit={event.get('hit')}"
        elif kind == "shard":
            extra = (
                f"shards={event.get('shards')} backend={event.get('backend')} "
                f"jobs={event.get('jobs')}"
            )
        elif kind == "evaluate":
            extra = f"pairs={event.get('pairs')} incidents={event.get('incidents')}"
            if "shard" in event:
                extra = f"shard={event.get('shard')} pid={event.get('pid')} " + extra
        elif kind in ("finish", "killed"):
            extra = (
                f"wall={event.get('wall_ms', 0):.2f}ms "
                f"pairs={event.get('pairs')} pattern={event.get('pattern')!r}"
            )
            if kind == "killed":
                extra = f"reason={event.get('reason')} " + extra
        print(f"{event.get('seq', '?'):>5}  {event.get('query_id')}  "
              f"{str(kind):8s} {extra}")
    print(f"--- {len(selected)} of {len(events)} event(s) ---")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.export import SchemaError
    from repro.obs.journal import read_journal, top_patterns

    try:
        events = read_journal(args.journal, validate=False)
    except FileNotFoundError:
        raise ReproError(f"no journal at {args.journal!r}") from None
    except SchemaError as exc:
        raise ReproError(f"{args.journal}: {exc}") from None
    rows = top_patterns(events, by=args.by, limit=args.limit)
    if args.format == "json":
        print(json.dumps(rows, indent=2, ensure_ascii=False))
        return 0
    header = (
        f"{'runs':>5} {'killed':>6} {'wall_ms':>10} {'cpu_ms':>10} "
        f"{'pairs':>10} {'peak_bytes':>11}  pattern"
    )
    print(header)
    for row in rows:
        print(
            f"{row['runs']:>5} {row['killed']:>6} {row['wall_ms']:>10.2f} "
            f"{row['cpu_ms']:>10.2f} {row['pairs']:>10} "
            f"{row['peak_alloc_bytes']:>11}  {row['pattern']}"
        )
    print(f"--- {len(rows)} pattern(s), ranked by {args.by} ---")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    print(summarize(_load_log(args.log)).format())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    log = _load_log(args.log, validate=False)
    issues = validation_report(log.records)
    if not issues:
        print("log is well-formed (Definition 2)")
        return 0
    for issue in issues:
        print(str(issue))
    if args.repair:
        repaired, dropped = repair_log(log.records)
        _save_log(repaired, args.repair)
        print(
            f"repaired log written to {args.repair} "
            f"({len(dropped)} record(s) dropped)"
        )
        return 0
    return 1


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "synthetic":
        log = generate_log(
            SyntheticLogConfig(instances=args.instances, seed=args.seed)
        )
    else:
        engine = WorkflowEngine(_MODELS[args.model]())
        log = engine.run(
            SimulationConfig(
                instances=args.instances,
                seed=args.seed,
                arrival_stagger=args.stagger,
            )
        )
    _save_log(log, args.out)
    if args.out != "-":
        print(f"wrote {len(log)} records / {len(log.wids)} instances to {args.out}")
    return 0


def _cmd_anomalies(args: argparse.Namespace) -> int:
    log = _load_log(args.log)
    report = _RULESETS[args.rules]().run(log)
    print(report.format())
    return 1 if report else 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.analytics.monitor import LiveMonitor

    log = _load_log(args.log)
    monitor = LiveMonitor(_RULESETS[args.rules]())
    for record in log:
        for alert in monitor.observe(record):
            if not args.quiet:
                print(alert.format())
    offending = monitor.offending_instances()
    print(f"--- {len(monitor.alerts)} alert(s) over {len(log)} records ---")
    for name, wids in sorted(offending.items()):
        shown = ", ".join(map(str, wids[:10]))
        print(f"  {name}: instances {shown}"
              + (f" (+{len(wids) - 10} more)" if len(wids) > 10 else ""))
    return 1 if monitor.alerts else 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.logstore.render import (
        dfg_to_dot,
        render_instance,
        render_log_table,
        render_swimlanes,
    )

    log = _load_log(args.log)
    if args.view == "table":
        print(render_log_table(log, limit=args.limit,
                               with_attributes=args.attrs))
    elif args.view == "swimlanes":
        print(render_swimlanes(log))
    elif args.view == "dot":
        print(dfg_to_dot(log), end="")
    else:
        wid = args.wid if args.wid is not None else log.wids[0]
        incidents = ()
        if args.pattern:
            incidents = Query(parse(args.pattern)).run(log)
        print(f"instance {wid}:")
        print(render_instance(log, wid, incidents=incidents))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    _save_log(_load_log(args.source), args.target)
    if args.target != "-":
        print(f"converted {args.source} -> {args.target}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs.export import SchemaError
    from repro.obs.journal import read_journal
    from repro.obs.live import SloEngine, SloObjective, SloPolicy, WindowedAggregator

    try:
        events = read_journal(args.journal, validate=False)
    except FileNotFoundError:
        raise ReproError(f"no journal at {args.journal!r}") from None
    except SchemaError as exc:
        raise ReproError(f"{args.journal}: {exc}") from None

    # the ring must span every window we are asked to answer
    span = max(args.window, args.slow_window, args.fast_window, args.bucket)
    aggregator = WindowedAggregator(bucket_s=args.bucket, window_s=span)
    ingested = aggregator.replay(events)
    if ingested == 0:
        raise ReproError(
            f"{args.journal}: no terminal (finish/killed) events to replay"
        )
    # report "as of" the newest terminal event, not wall-clock now — a
    # replay of last week's journal should see last week's traffic
    last_ts = max(
        float(event["ts_unix"])
        for event in events
        if event.get("event") in ("finish", "killed")
        and isinstance(event.get("ts_unix"), (int, float))
    )
    policy = SloPolicy(
        objectives=(
            SloObjective(
                name="availability",
                kind="availability",
                target=args.availability_target,
            ),
            SloObjective(
                name="latency",
                kind="latency",
                target=args.latency_target,
                latency_threshold_s=args.latency_threshold_ms / 1000.0,
            ),
        ),
        fast_window_s=args.fast_window,
        slow_window_s=args.slow_window,
        burn_threshold=args.burn_threshold,
    )
    stats = aggregator.window(args.window, now=last_ts).report(top=args.top)
    slo = SloEngine(policy, aggregator).report(now=last_ts)
    if args.format == "json":
        print(
            json.dumps(
                {"replayed": ingested, "stats": stats, "slo": slo},
                indent=2,
                ensure_ascii=False,
            )
        )
        return 0

    latency = stats["latency"]
    print(
        f"replayed {ingested} terminal event(s); trailing {args.window:g}s "
        f"window as of the newest event:"
    )
    print(
        f"  requests {stats['requests']}  errors {stats['errors']}  "
        f"killed {stats['killed']}  error_ratio {stats['error_ratio']:.4f}"
    )
    print(
        f"  latency p50 {latency['p50_s'] * 1000:.1f}ms  "
        f"p95 {latency['p95_s'] * 1000:.1f}ms  "
        f"p99 {latency['p99_s'] * 1000:.1f}ms"
    )
    for title, rows_key in (("route", "routes"), ("store", "stores"),
                            ("pattern", "patterns")):
        rows = stats[rows_key]
        if not rows:
            continue
        print(f"  by {title}:")
        for row in rows:
            print(
                f"    {row['count']:>6}  err {row['errors']:>4}  "
                f"p95 {row['p95_s'] * 1000:>8.1f}ms  {row['key']}"
            )
    print(
        f"slo (burn threshold {slo['burn_threshold']:g}x, fast "
        f"{slo['fast_window_s']:g}s / slow {slo['slow_window_s']:g}s):"
    )
    for row in slo["objectives"]:
        state = "BREACH" if row["breach"] else "ok"
        print(
            f"  {row['name']:<14} target {row['target']:.4f}  "
            f"burn fast {row['burn_fast']:>8.2f}x  "
            f"slow {row['burn_slow']:>8.2f}x  "
            f"budget left {row['budget_remaining'] * 100:>6.1f}%  {state}"
        )
    if slo["breaching"]:
        print(f"--- breaching: {', '.join(slo['breaching'])} ---")
        return 1
    print("--- all objectives within budget ---")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.journal import QueryJournal
    from repro.service import QueryService, ServiceConfig, StoreCatalog
    from repro.service import serve as serve_daemon

    if not args.catalog and not args.store:
        raise ReproError("serve needs --catalog and/or at least one --store")

    registry = MetricsRegistry()
    if args.catalog:
        source = Path(args.catalog)
        if source.is_dir():
            catalog = StoreCatalog.from_directory(source, metrics=registry)
        else:
            catalog = StoreCatalog.from_config(source, metrics=registry)
    else:
        catalog = StoreCatalog(metrics=registry)
    for entry in args.store:
        name, separator, path = entry.partition("=")
        if not separator or not name or not path:
            raise ReproError(f"--store expects NAME=PATH, got {entry!r}")
        catalog.add_file(name, path)

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        queue_timeout_ms=args.queue_timeout_ms,
        deadline_ms_ceiling=args.deadline_ms_ceiling,
        max_pairs_ceiling=args.max_pairs_ceiling,
        jobs_ceiling=args.jobs_ceiling,
        cache_bytes=args.cache_bytes,
        access_log=args.access_log,
    )
    if args.access_log:
        # access lines ride the repro.* logging hierarchy; make sure they
        # reach stderr even without -v
        logging.getLogger("repro.service.access").setLevel(logging.INFO)
        if args.verbose == 0:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter("%(message)s"))
            logging.getLogger("repro.service.access").addHandler(handler)
    journal = (
        QueryJournal(args.journal, metrics=registry, memory=False)
        if args.journal
        else None
    )
    service = QueryService(catalog, config, metrics=registry, journal=journal)
    # announce on stdout so scripts (and the CI smoke job) can scrape the
    # bound address even when --port 0 picked an ephemeral port
    return serve_daemon(
        service, announce=lambda url: print(f"listening on {url}", flush=True)
    )


_HANDLERS = {
    "query": _cmd_query,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
    "batch": _cmd_batch,
    "events": _cmd_events,
    "top": _cmd_top,
    "slo": _cmd_slo,
    "lint": _cmd_lint,
    "analyze": _cmd_analyze,
    "stats": _cmd_stats,
    "validate": _cmd_validate,
    "generate": _cmd_generate,
    "anomalies": _cmd_anomalies,
    "monitor": _cmd_monitor,
    "show": _cmd_show,
    "convert": _cmd_convert,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    enable_verbose(args.verbose)
    try:
        return _HANDLERS[args.command](args)
    except QueryGovernorError as exc:
        # the resource governor killed the run: dedicated exit code so
        # pipelines can tell "over budget" from "bad input" (code 2)
        print(f"killed: {exc}", file=sys.stderr)
        return 4
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`)
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Static analysis of incident-pattern queries: the ``QW`` diagnostics.

The algebraic laws (Theorems 2-5) and the worst-case size bound
(Theorem 1) let a lot be decided about a query *before* touching a single
log record: atoms outside the vocabulary guarantee empty subresults,
contradictions against the workflow's block structure make whole patterns
unsatisfiable, duplicate choice operands are provably redundant, and the
atom count bounds the incident-set blowup.  This module packages those
decisions as structured :class:`Diagnostic` objects with stable codes,
severities, source spans (from :func:`repro.core.parser.parse_with_spans`)
and fix-it suggestions.

Diagnostic catalogue
--------------------

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
QW101     error     positive atom's activity never occurs in the log —
                    every incident containing it is impossible
QW102     error     positive atom's activity is unreachable in the
                    workflow specification
QW201     error     the query as a whole is unsatisfiable (can never
                    produce an incident on the given log / any log of the
                    given specification)
QW202     warning   dead ``⊗`` branch: one alternative of a choice can
                    never match while a sibling can
QW301     warning   duplicate ``⊗`` operand (redundant: ``p ⊗ p ≡ p``,
                    modulo Theorem 2-4 normalization)
QW302     info      duplicate ``⊕`` operand: the query demands two
                    disjoint occurrences of the same subpattern
QW401     warning   estimated evaluation blowup: the cost model (or, with
                    no log, Theorem 1's ``O(m^k)`` bound) exceeds the
                    configured threshold
QW402     info      a cheaper equivalent form exists via Theorem 5 choice
                    factoring (the optimizer's normal form), *proved*
                    equivalent by the containment prover
QW501     info      the query is provably subsumed by a batch sibling —
                    the batch planner evaluates the sibling once and
                    derives this query by filtering
QW502     warning   a ``⊗`` operand is provably subsumed by a sibling
                    operand (``p ⊑ q`` implies ``p ⊗ q ≡ q``), beyond
                    the syntactic duplicates QW301 catches
========  ========  =====================================================

Satisfiability here is always *relative to a context*: in the core
algebra every pattern is satisfiable on some log (even ``t ⊙ ¬t`` —
a ``t`` record directly followed by any other record), so QW201/QW202
require a log (vocabulary and record counts) and/or a
:class:`~repro.workflow.spec.WorkflowSpec` (block-structure refutation
via :mod:`repro.workflow.analysis`).  All emptiness verdicts are sound:
a pattern flagged QW201 has a provably empty incident set.

The linter and the query planner share one canonical form
(:func:`repro.core.optimizer.rules.normalize`), so a query is planned in
exactly the shape lint reasoned about.

The QW402/QW5xx equivalence and subsumption verdicts are *proved* by the
:mod:`repro.analysis` containment prover (decision procedures over the
automaton IR), not inferred from syntax or cost heuristics: QW402 is
only emitted once the normal form is proved equivalent to the original
query, and falls back to silence — never a guess — when the proof is
unavailable (state budget, unsupported operator).

Example
-------
>>> from repro.core.lint import Linter
>>> from repro.core.model import Log
>>> log = Log.from_traces([["A", "B"]])
>>> [d.code for d in Linter.for_log(log).lint("A -> Ghost")]
['QW101', 'QW201']
"""

from __future__ import annotations

import difflib
from collections import Counter
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from enum import IntEnum

from repro.core.algebra import (
    build_left_deep,
    canonicalize,
    choice_normal_form,
    flatten_assoc,
)
from repro.core.model import Log
from repro.core.optimizer.cost import CostModel, LogStatistics
from repro.core.optimizer.rules import normalize
from repro.core.parser import ParseResult, SourceSpan, parse_with_spans
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
    to_text,
)
from repro.workflow.analysis import ModelProfile, analyze, explain_mismatch
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "Severity",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "Linter",
    "lint_pattern",
    "lint_batch",
    "format_diagnostics",
]


# -- prover bridge (lazy: repro.analysis imports the evaluation stack) -----

def _proved(kind: str, p: Pattern, q: Pattern) -> bool | None:
    """Ask the shared prover whether ``p kind q`` holds; ``None`` when it
    cannot decide (state budget, unsupported operator) — callers must
    treat ``None`` as "stay silent", never as a verdict."""
    from repro.analysis import AnalysisError, default_prover

    try:
        prover = default_prover()
        if kind == "equivalent":
            return prover.equivalent(p, q)
        return prover.contains(p, q)
    except AnalysisError:
        return None


class Severity(IntEnum):
    """Diagnostic severity; larger values are more severe."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


#: Stable code -> short title, the authoritative catalogue (documented in
#: docs/QUERY_LANGUAGE.md; the doc test cross-checks the two).
DIAGNOSTIC_CODES: dict[str, str] = {
    "QW101": "activity not in the log vocabulary",
    "QW102": "activity not in the workflow specification",
    "QW201": "unsatisfiable pattern",
    "QW202": "dead choice branch",
    "QW301": "redundant duplicate choice operand",
    "QW302": "duplicate parallel operand",
    "QW401": "estimated evaluation blowup",
    "QW402": "cheaper equivalent form available (proved)",
    "QW501": "query subsumed by a batch sibling (proved)",
    "QW502": "choice operand subsumed by a sibling (proved)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes
    ----------
    code:
        Stable identifier from :data:`DIAGNOSTIC_CODES` (``QW...``).
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable explanation, specific to the query.
    span:
        Source range of the offending subexpression, when the query was
        linted from text (None for DSL-built patterns or rewritten nodes).
    suggestion:
        Optional fix-it: an equivalent rewrite or a remediation hint.
    """

    code: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    suggestion: str | None = None

    def format(self, text: str | None = None) -> str:
        """Render for terminals; with ``text`` a caret line is included."""
        where = f" at {self.span}" if self.span is not None else ""
        lines = [f"{self.code} {self.severity}{where}: {self.message}"]
        if text is not None and self.span is not None:
            lines.append(f"    {text}")
            lines.append(f"    {self.span.caret_line()}")
        if self.suggestion:
            lines.append(f"  suggestion: {self.suggestion}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by ``repro lint --format json``)."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "span": None if self.span is None else [self.span.start, self.span.end],
            "suggestion": self.suggestion,
        }


def format_diagnostics(
    diagnostics: Sequence[Diagnostic], text: str | None = None
) -> str:
    """Render a batch of diagnostics, one block per finding."""
    if not diagnostics:
        return "no diagnostics"
    return "\n".join(d.format(text) for d in diagnostics)


def _pairwise_operator_count(pattern: Pattern) -> int:
    """Number of ⊙/⊳/⊕ nodes — the ``k`` of Theorem 1's ``O(m^k)``."""
    return sum(
        1
        for node in pattern.walk()
        if isinstance(node, (Consecutive, Sequential, Parallel))
    )


def _choice_count(pattern: Pattern) -> int:
    return sum(1 for node in pattern.walk() if isinstance(node, Choice))


def _walk_with_parent(
    node: Pattern, parent: Pattern | None = None
) -> Iterator[tuple[Pattern, Pattern | None]]:
    yield node, parent
    if isinstance(node, BinaryPattern):
        yield from _walk_with_parent(node.left, node)
        yield from _walk_with_parent(node.right, node)


class Linter:
    """Static analyzer for incident patterns.

    Parameters
    ----------
    stats:
        Log statistics; enables the vocabulary (QW101), record-demand
        (QW201) and cost-model (QW401) checks.
    profile:
        A workflow model's :class:`~repro.workflow.analysis.ModelProfile`;
        enables the specification checks (QW102, QW201, QW202).
    cost_threshold:
        Estimated plan cost above which QW401 fires (with ``stats``).
    incident_threshold:
        Estimated incident-set cardinality above which QW401 fires.
    max_pairwise_operators:
        Without ``stats``, QW401 fires when the pattern chains more than
        this many pairwise (⊙/⊳/⊕) operators — Theorem 1's exponent.
    max_choice_nodes:
        Cap on ⊗ nodes per subtree for the (exponential) choice-normal-
        form satisfiability reasoning; larger subtrees are skipped.
    """

    def __init__(
        self,
        *,
        stats: LogStatistics | None = None,
        profile: ModelProfile | None = None,
        cost_threshold: float = 1e7,
        incident_threshold: float = 1e6,
        max_pairwise_operators: int = 6,
        max_choice_nodes: int = 7,
    ):
        self.stats = stats
        self.profile = profile
        self.cost_threshold = cost_threshold
        self.incident_threshold = incident_threshold
        self.max_pairwise_operators = max_pairwise_operators
        self.max_choice_nodes = max_choice_nodes
        self.model = CostModel(stats) if stats is not None else None

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_log(cls, log: Log, **kwargs) -> "Linter":
        """A linter checking queries against one log's statistics."""
        return cls(stats=LogStatistics.from_log(log), **kwargs)

    @classmethod
    def for_spec(cls, spec: WorkflowSpec, **kwargs) -> "Linter":
        """A linter checking queries against a workflow specification."""
        return cls(profile=analyze(spec), **kwargs)

    @classmethod
    def for_context(
        cls,
        *,
        log: Log | None = None,
        spec: WorkflowSpec | None = None,
        **kwargs,
    ) -> "Linter":
        """A linter using whichever of log / spec are provided."""
        return cls(
            stats=None if log is None else LogStatistics.from_log(log),
            profile=None if spec is None else analyze(spec),
            **kwargs,
        )

    # -- entry point -------------------------------------------------------

    def lint(self, query: str | Pattern | ParseResult) -> list[Diagnostic]:
        """Analyze ``query`` and return its diagnostics, in source order.

        Accepts query text (spans are tracked), a prior
        :class:`~repro.core.parser.ParseResult`, or a DSL-built
        :class:`~repro.core.pattern.Pattern` (no spans).
        """
        if isinstance(query, str):
            query = parse_with_spans(query)
        if isinstance(query, ParseResult):
            pattern = query.pattern
            span_of = query.span
        else:
            pattern = query
            span_of = lambda node: None  # noqa: E731 - trivial fallback

        diagnostics: list[Diagnostic] = []
        empty_memo: dict[int, str | None] = {}
        diagnostics += self._check_vocabulary(pattern, span_of)
        diagnostics += self._check_satisfiability(pattern, span_of, empty_memo)
        diagnostics += self._check_dead_branches(pattern, span_of, empty_memo)
        diagnostics += self._check_redundancy(pattern, span_of)
        diagnostics += self._check_subsumption(pattern, span_of)
        diagnostics += self._check_complexity(pattern, span_of)
        diagnostics.sort(
            key=lambda d: (
                d.span.start if d.span else -1,
                d.span.end if d.span else -1,
                d.code,
            )
        )
        return diagnostics

    # -- vocabulary (QW101 / QW102) ----------------------------------------

    def _check_vocabulary(self, pattern: Pattern, span_of) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        reported: set[tuple[str, int]] = set()
        for atom in pattern.atoms():
            if atom.negated:
                # ¬t matches any *other* record, so an unknown t is
                # harmless (the atom just matches everything)
                continue
            if self.stats is not None and self.stats.count(atom.name) == 0:
                key = ("QW101", id(atom))
                if key not in reported:
                    reported.add(key)
                    out.append(
                        Diagnostic(
                            code="QW101",
                            severity=Severity.ERROR,
                            message=(
                                f"activity {atom.name!r} never occurs in the "
                                f"log; any incident containing it is "
                                f"impossible"
                            ),
                            span=span_of(atom),
                            suggestion=self._closest(
                                atom.name, self.stats.activity_counts
                            ),
                        )
                    )
            if self.profile is not None and atom.name not in self.profile.alphabet:
                out.append(
                    Diagnostic(
                        code="QW102",
                        severity=Severity.ERROR,
                        message=(
                            f"activity {atom.name!r} is not reachable in the "
                            f"workflow specification"
                        ),
                        span=span_of(atom),
                        suggestion=self._closest(atom.name, self.profile.alphabet),
                    )
                )
        return out

    @staticmethod
    def _closest(name: str, vocabulary) -> str | None:
        matches = difflib.get_close_matches(name, list(vocabulary), n=1)
        return f"did you mean {matches[0]!r}?" if matches else None

    # -- satisfiability (QW201) --------------------------------------------

    def _check_satisfiability(
        self, pattern: Pattern, span_of, memo: dict[int, str | None]
    ) -> list[Diagnostic]:
        reason = self._empty_reason(pattern, memo)
        if reason is None:
            return []
        locus = self._empty_locus(pattern, memo)
        suggestion = None
        if self.profile is not None and locus is not pattern:
            suggestion = (
                "the rest of the query cannot compensate: fix or drop "
                f"the marked subexpression {to_text(locus)!r}"
            )
        return [
            Diagnostic(
                code="QW201",
                severity=Severity.ERROR,
                message=f"query can never produce an incident: {reason}",
                span=span_of(locus),
                suggestion=suggestion,
            )
        ]

    def _empty_reason(
        self, node: Pattern, memo: dict[int, str | None]
    ) -> str | None:
        """A reason ``incL(node)`` is provably empty in this context, or
        None when emptiness cannot be proven.  Sound: a non-None return
        means no log of the context can contain an incident of ``node``."""
        key = id(node)
        if key in memo:
            return memo[key]
        reason = self._compute_empty(node, memo)
        memo[key] = reason
        return reason

    def _compute_empty(
        self, node: Pattern, memo: dict[int, str | None]
    ) -> str | None:
        if isinstance(node, Atomic):
            if node.negated:
                return None
            if self.stats is not None and self.stats.count(node.name) == 0:
                return f"activity {node.name!r} never occurs in the log"
            if self.profile is not None and node.name not in self.profile.alphabet:
                return (
                    f"activity {node.name!r} is not reachable in the "
                    f"workflow specification"
                )
            return None
        assert isinstance(node, BinaryPattern)
        if isinstance(node, Choice):
            left = self._empty_reason(node.left, memo)
            if left is None:
                return None
            right = self._empty_reason(node.right, memo)
            if right is None:
                return None
            return f"no alternative of the choice can match ({left})"
        # pairwise operator: empty when either input is, or the node's own
        # constraints are refuted by the specification / the log's counts
        for child in (node.left, node.right):
            child_reason = self._empty_reason(child, memo)
            if child_reason is not None:
                return child_reason
        if self.profile is not None and self._cnf_tractable(node):
            reasons = explain_mismatch(self.profile, node)
            if reasons:
                return reasons[0]
        if self.stats is not None and self._cnf_tractable(node):
            over = self._overdemand(node)
            if over is not None:
                return over
        return None

    def _cnf_tractable(self, node: Pattern) -> bool:
        """Whether choice-normal-form reasoning over ``node`` is cheap
        enough (the branch count is exponential in the ⊗ count)."""
        return _choice_count(node) <= self.max_choice_nodes

    def _overdemand(self, node: Pattern) -> str | None:
        """Empty because every choice-free branch needs more records of
        some activity than the whole log contains."""
        assert self.stats is not None
        worst: tuple[str, int, int] | None = None
        for branch in choice_normal_form(node):
            needs = Counter(a.name for a in branch.atoms() if not a.negated)
            violation = next(
                (
                    (name, needed, self.stats.count(name))
                    for name, needed in needs.items()
                    if self.stats.count(name) < needed
                ),
                None,
            )
            if violation is None:
                return None  # this branch is not refuted by counts
            worst = violation
        if worst is None:
            return None
        name, needed, have = worst
        return (
            f"the pattern needs {needed} disjoint {name!r} records in one "
            f"instance but the whole log contains {have}"
        )

    def _empty_locus(self, node: Pattern, memo: dict[int, str | None]) -> Pattern:
        """The deepest subexpression that is provably empty on its own —
        where the diagnostic's span should point."""
        if isinstance(node, Atomic) or isinstance(node, Choice):
            return node
        assert isinstance(node, BinaryPattern)
        for child in (node.left, node.right):
            if self._empty_reason(child, memo) is not None:
                return self._empty_locus(child, memo)
        return node

    # -- dead branches (QW202) ---------------------------------------------

    def _check_dead_branches(
        self, pattern: Pattern, span_of, memo: dict[int, str | None]
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node, _parent in _walk_with_parent(pattern):
            if not isinstance(node, Choice):
                continue
            sides = ((node.left, node.right), (node.right, node.left))
            for branch, sibling in sides:
                reason = self._empty_reason(branch, memo)
                if reason is None or self._empty_reason(sibling, memo) is not None:
                    continue
                out.append(
                    Diagnostic(
                        code="QW202",
                        severity=Severity.WARNING,
                        message=(
                            f"dead ⊗ branch: {reason}; the query only ever "
                            f"matches via the other alternative"
                        ),
                        span=span_of(branch),
                        suggestion=f"drop the branch, leaving: {to_text(sibling)}",
                    )
                )
        return out

    # -- redundancy (QW301 / QW302) ----------------------------------------

    def _check_redundancy(self, pattern: Pattern, span_of) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node, parent in _walk_with_parent(pattern):
            if isinstance(node, Choice) and not isinstance(parent, Choice):
                out += self._duplicate_operands(
                    node,
                    Choice,
                    span_of,
                    code="QW301",
                    severity=Severity.WARNING,
                    why=(
                        "is redundant: p ⊗ p ≡ p (set semantics of "
                        "Definition 4, modulo Theorem 2-4 normalization)"
                    ),
                    suggest_dedup=True,
                )
            if isinstance(node, Parallel) and not isinstance(parent, Parallel):
                out += self._duplicate_operands(
                    node,
                    Parallel,
                    span_of,
                    code="QW302",
                    severity=Severity.INFO,
                    why=(
                        "demands two disjoint occurrences of the same "
                        "subpattern in one instance; drop the duplicate if "
                        "one occurrence was meant"
                    ),
                    suggest_dedup=False,
                )
        return out

    def _duplicate_operands(
        self,
        node: BinaryPattern,
        cls: type,
        span_of,
        *,
        code: str,
        severity: Severity,
        why: str,
        suggest_dedup: bool,
    ) -> list[Diagnostic]:
        operands = flatten_assoc(node, cls)
        seen: dict[Pattern, Pattern] = {}
        kept: list[Pattern] = []
        duplicates: list[Pattern] = []
        for operand in operands:
            canon = canonicalize(operand)
            if canon in seen:
                duplicates.append(operand)
            else:
                seen[canon] = operand
                kept.append(operand)
        out: list[Diagnostic] = []
        for duplicate in duplicates:
            suggestion = None
            if suggest_dedup:
                deduped = build_left_deep(cls, kept)
                suggestion = f"equivalent without the duplicate: {to_text(deduped)}"
            out.append(
                Diagnostic(
                    code=code,
                    severity=severity,
                    message=(
                        f"operand {to_text(duplicate)!r} appears more than "
                        f"once under {node.symbol}; it {why}"
                    ),
                    span=span_of(duplicate),
                    suggestion=suggestion,
                )
            )
        return out

    # -- proved choice subsumption (QW502) ---------------------------------

    #: Skip the pairwise prover pass on choices larger than this (the
    #: proofs are per-pair automaton constructions).
    max_subsumption_operands = 5

    def _check_subsumption(self, pattern: Pattern, span_of) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node, parent in _walk_with_parent(pattern):
            if not isinstance(node, Choice) or isinstance(parent, Choice):
                continue
            operands = flatten_assoc(node, Choice)
            if len(operands) > self.max_subsumption_operands:
                continue
            canon = [canonicalize(op) for op in operands]
            for j, operand in enumerate(operands):
                for i, sibling in enumerate(operands):
                    if i == j or canon[i] == canon[j]:
                        continue  # syntactic duplicates are QW301's beat
                    if not _proved("contains", operand, sibling):
                        continue
                    # equivalent-but-not-identical pairs: flag only the
                    # later operand, mirroring QW301's keep-first rule
                    if i > j and _proved("contains", sibling, operand):
                        continue
                    kept = [op for k, op in enumerate(operands) if k != j]
                    out.append(
                        Diagnostic(
                            code="QW502",
                            severity=Severity.WARNING,
                            message=(
                                f"operand {to_text(operand)!r} is provably "
                                f"subsumed by sibling {to_text(sibling)!r}: "
                                f"every incident of the former is an incident "
                                f"of the latter, so p ⊗ q ≡ q"
                            ),
                            span=span_of(operand),
                            suggestion=(
                                f"equivalent without the subsumed operand: "
                                f"{to_text(build_left_deep(Choice, kept))}"
                            ),
                        )
                    )
                    break
        return out

    # -- complexity (QW401 / QW402) ----------------------------------------

    def _check_complexity(self, pattern: Pattern, span_of) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        normalized, applied = normalize(pattern)
        factored = any(step.startswith("factor-choice") for step in applied)

        if self.model is not None:
            estimated_cost = self.model.plan_cost(pattern)
            estimated_incidents = self.model.cardinality(pattern)
            if (
                estimated_cost > self.cost_threshold
                or estimated_incidents > self.incident_threshold
            ):
                out.append(
                    Diagnostic(
                        code="QW401",
                        severity=Severity.WARNING,
                        message=(
                            f"estimated evaluation blowup: "
                            f"~{estimated_incidents:,.0f} incidents / cost "
                            f"~{estimated_cost:,.0f} (thresholds "
                            f"{self.incident_threshold:,.0f} / "
                            f"{self.cost_threshold:,.0f}); incident sets are "
                            f"worst-case exponential in pattern size "
                            f"(Theorem 1)"
                        ),
                        span=span_of(pattern),
                        suggestion=self._cheaper_form(pattern, estimated_cost),
                    )
                )
        else:
            k = _pairwise_operator_count(pattern)
            if k > self.max_pairwise_operators:
                out.append(
                    Diagnostic(
                        code="QW401",
                        severity=Severity.WARNING,
                        message=(
                            f"{k} pairwise (⊙/⊳/⊕) operators: worst-case "
                            f"|incL| = O(m^{k + 1}) by Theorem 1; lint "
                            f"against a log for a concrete estimate"
                        ),
                        span=span_of(pattern),
                        suggestion=(
                            "cap materialisation with max_incidents, or use "
                            "exists()/count() instead of run()"
                        ),
                    )
                )

        # QW402 is gated on an actual equivalence proof of the rewritten
        # form: a failed or undecidable proof yields silence, not a guess.
        if factored and _proved("equivalent", pattern, normalized):
            message = (
                "an equivalent cheaper form exists via Theorem 5 choice "
                "factoring (proved equivalent; the planner evaluates this "
                "form)"
            )
            if self.model is not None:
                before = self.model.plan_cost(pattern)
                after = self.model.plan_cost(normalized)
                message += f"; estimated cost {before:,.0f} -> {after:,.0f}"
            out.append(
                Diagnostic(
                    code="QW402",
                    severity=Severity.INFO,
                    message=message,
                    span=span_of(pattern),
                    suggestion=f"equivalent form: {to_text(normalized)}",
                )
            )
        return out

    def _cheaper_form(self, pattern: Pattern, estimated_cost: float) -> str | None:
        """A Theorem 5 / re-association rewrite with a lower estimate, when
        one exists; falls back to a budget hint."""
        assert self.model is not None
        from repro.core.optimizer.planner import Optimizer

        plan = Optimizer(self.model).optimize(pattern)
        if plan.optimized != pattern and plan.optimized_cost < estimated_cost * 0.9:
            return (
                f"cheaper equivalent (estimated cost "
                f"{plan.optimized_cost:,.0f}): {to_text(plan.optimized)}"
            )
        return (
            "cap materialisation with max_incidents, or use exists()/count() "
            "instead of run()"
        )


def lint_pattern(
    query: str | Pattern | ParseResult,
    *,
    log: Log | None = None,
    spec: WorkflowSpec | None = None,
    **kwargs,
) -> list[Diagnostic]:
    """One-shot convenience: lint ``query`` against an optional log and/or
    workflow specification.  See :class:`Linter` for keyword options."""
    return Linter.for_context(log=log, spec=spec, **kwargs).lint(query)


#: Skip the cross-query prover pass on batches larger than this.
_MAX_BATCH_SUBSUMPTION = 16


def lint_batch(
    queries: Sequence[str | Pattern | ParseResult],
    *,
    log: Log | None = None,
    spec: WorkflowSpec | None = None,
    linter: Linter | None = None,
    **kwargs,
) -> list[list[Diagnostic]]:
    """Lint a batch of queries: per-query diagnostics plus the proved
    cross-query subsumption check (QW501).

    A QW501 finding means the batch executor's subsumption planner
    (:func:`repro.exec.batch.evaluate_batch`) will evaluate the named
    sibling once and derive this query's incidents by filtering — the
    diagnostic is informational, not a defect.  Returns one diagnostic
    list per query, index-aligned with ``queries``.
    """
    if linter is None:
        linter = Linter.for_context(log=log, spec=spec, **kwargs)
    resolved: list[ParseResult | Pattern] = [
        parse_with_spans(query) if isinstance(query, str) else query
        for query in queries
    ]
    per_query = [linter.lint(query) for query in resolved]
    patterns = [
        query.pattern if isinstance(query, ParseResult) else query
        for query in resolved
    ]
    if len(patterns) < 2 or len(patterns) > _MAX_BATCH_SUBSUMPTION:
        return per_query
    for j, pattern in enumerate(patterns):
        for i, sibling in enumerate(patterns):
            if i == j:
                continue
            if not _proved("contains", pattern, sibling):
                continue
            if i > j and _proved("contains", sibling, pattern):
                continue  # for proved-equivalent pairs, flag the later one
            span = (
                resolved[j].span(pattern)
                if isinstance(resolved[j], ParseResult)
                else None
            )
            per_query[j].append(
                Diagnostic(
                    code="QW501",
                    severity=Severity.INFO,
                    message=(
                        f"query is provably subsumed by batch sibling #{i + 1} "
                        f"({to_text(sibling)!r}): the batch planner evaluates "
                        f"that sibling once and derives this query's "
                        f"incidents by filtering"
                    ),
                    span=span,
                )
            )
            break
    return per_query

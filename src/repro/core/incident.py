"""Incident instances and incident sets (Definition 4 of the paper).

An *incident* (instance) of a pattern in a log is a set of log records —
all from one workflow instance — that jointly satisfy the pattern.  Each
incident carries the three functions the paper defines on incidents:

* ``first(o)`` — smallest relevant instance-specific sequence number,
* ``last(o)``  — largest relevant instance-specific sequence number,
* ``wid(o)``   — the workflow instance the incident belongs to.

Incident identity is the *set of records* (the paper's ``incL(p)`` is a set
of sets), so two incidents with the same records compare and hash equal even
if they were derived through different sub-patterns.  ``first``/``last`` are
derived bookkeeping, not identity.

This module also contains :func:`reference_incidents`, a direct, executable
transcription of Definition 4 used as the ground-truth oracle in tests.  It
is intentionally naive (it recurses on the definition with no indexing) and
should not be used on large logs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from functools import total_ordering

from repro.core.model import Log, LogRecord
from repro.core.pattern import (
    Atomic,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["Incident", "IncidentSet", "reference_incidents"]


@total_ordering
class Incident:
    """A set of log records forming one match of a pattern (Definition 4).

    Parameters
    ----------
    records:
        The member log records.  They must all belong to one workflow
        instance; this is asserted at construction time.
    first, last:
        The paper's ``first(o)``/``last(o)`` values.  For every operator in
        Definition 4 these coincide with the min/max instance-specific
        sequence number of the member records, so they are computed rather
        than stored per-operator.  (A short induction on Definition 4 shows
        the recursive definitions always reduce to min/max.)

    Examples
    --------
    >>> from repro.core.model import LogRecord
    >>> a = LogRecord(lsn=3, wid=1, is_lsn=2, activity="GetRefer")
    >>> b = LogRecord(lsn=4, wid=1, is_lsn=3, activity="CheckIn")
    >>> o = Incident([a, b])
    >>> (o.first, o.last, o.wid)
    (2, 3, 1)
    """

    __slots__ = ("_records", "_key", "_sort_key", "first", "last", "wid")

    def __init__(self, records: Iterable[LogRecord]):
        recs = sorted(records, key=lambda r: r.is_lsn)
        if not recs:
            raise ValueError("an incident must contain at least one log record")
        wid = recs[0].wid
        for rec in recs:
            if rec.wid != wid:
                raise ValueError(
                    "all records of an incident must share one workflow instance; "
                    f"got wids {wid} and {rec.wid}"
                )
        self._records: tuple[LogRecord, ...] = tuple(recs)
        self._key: frozenset[int] = frozenset(r.lsn for r in recs)
        self.first: int = recs[0].is_lsn
        self.last: int = recs[-1].is_lsn
        self.wid: int = wid
        self._sort_key: tuple = (
            wid,
            self.first,
            self.last,
            tuple(sorted(self._key)),
        )

    # -- set-like behaviour ---------------------------------------------

    @property
    def records(self) -> tuple[LogRecord, ...]:
        """Member records sorted by instance-specific sequence number."""
        return self._records

    @property
    def lsns(self) -> frozenset[int]:
        """Identity key: the set of global log sequence numbers."""
        return self._key

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __contains__(self, record: object) -> bool:
        return isinstance(record, LogRecord) and record.lsn in self._key

    def disjoint(self, other: "Incident") -> bool:
        """Whether the two incidents share no log records (used by ``⊕``)."""
        return self._key.isdisjoint(other._key)

    def union(self, other: "Incident") -> "Incident":
        """Set union of two incidents (must be in the same instance)."""
        if self.wid != other.wid:
            raise ValueError(
                f"cannot union incidents of instances {self.wid} and {other.wid}"
            )
        merged: dict[int, LogRecord] = {r.lsn: r for r in self._records}
        merged.update((r.lsn, r) for r in other._records)
        return Incident(merged.values())

    # -- identity --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Incident):
            return NotImplemented
        return self._key == other._key

    @property
    def sort_key(self) -> tuple:
        """The canonical ordering key: ``(wid, first, last, sorted lsns)``.

        This total order is *the* canonical order of ``incL(p)`` results:
        by workflow instance, then by start position, then by end position,
        with the sorted record-lsn tuple as the deterministic tiebreak for
        incidents spanning the same positions.  Every engine yields its
        final incident set in this order (via :class:`IncidentSet`), which
        is what lets :mod:`repro.exec` assert that a parallel merge is
        byte-for-byte identical to a serial evaluation.
        """
        return self._sort_key

    def __lt__(self, other: "Incident") -> bool:
        """Incidents sort by :attr:`sort_key` — the canonical order all
        engines and the parallel executor agree on."""
        if not isinstance(other, Incident):
            return NotImplemented
        return self._sort_key < other._sort_key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        members = ",".join(f"l{r.lsn}" for r in self._records)
        return f"Incident(wid={self.wid}, first={self.first}, last={self.last}, {{{members}}})"

    def activities(self) -> tuple[str, ...]:
        """Activity names of the member records, in execution order."""
        return tuple(r.activity for r in self._records)


class IncidentSet:
    """The incident set ``incL(p)`` of a pattern ``p`` on a log ``L``.

    Behaves as an immutable set of :class:`Incident` with convenience
    accessors.  Iteration is in the *canonical incident order* — ascending
    ``Incident.sort_key``, i.e. ``(wid, first, last, sorted lsns)`` — which
    every engine produces and which makes results reproducible across
    serial, sharded and parallel evaluation: two equal incident sets
    iterate in exactly the same order, element for element.
    """

    __slots__ = ("_incidents",)

    def __init__(self, incidents: Iterable[Incident] = ()):
        self._incidents: tuple[Incident, ...] = tuple(sorted(set(incidents)))

    def __len__(self) -> int:
        return len(self._incidents)

    def __iter__(self) -> Iterator[Incident]:
        return iter(self._incidents)

    def __contains__(self, incident: object) -> bool:
        return isinstance(incident, Incident) and incident in set(self._incidents)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IncidentSet):
            return self._incidents == other._incidents
        if isinstance(other, (set, frozenset)):
            return set(self._incidents) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._incidents)

    def __repr__(self) -> str:
        return f"IncidentSet({len(self._incidents)} incidents)"

    def __bool__(self) -> bool:
        return bool(self._incidents)

    def to_set(self) -> frozenset[Incident]:
        """The underlying mathematical set."""
        return frozenset(self._incidents)

    def to_rows(self) -> list[dict[str, object]]:
        """The incidents as plain dict rows, in canonical order.

        This is the stable tabular surface for downstream consumers
        (dataframes, JSON serialisation, the CLI): one row per incident
        with keys ``wid``, ``first``, ``last``, ``lsns`` (sorted tuple of
        global record lsns — the incident's identity) and ``activities``
        (names in execution order).  Row order is the canonical incident
        order (ascending :attr:`Incident.sort_key`), so equal incident
        sets serialise identically byte for byte.
        """
        return [
            {
                "wid": o.wid,
                "first": o.first,
                "last": o.last,
                "lsns": tuple(sorted(o.lsns)),
                "activities": o.activities(),
            }
            for o in self._incidents
        ]

    def by_wid(self) -> dict[int, list[Incident]]:
        """Incidents grouped per workflow instance."""
        grouped: dict[int, list[Incident]] = {}
        for incident in self._incidents:
            grouped.setdefault(incident.wid, []).append(incident)
        return grouped

    def wids(self) -> tuple[int, ...]:
        """Instance ids that have at least one incident."""
        return tuple(sorted({o.wid for o in self._incidents}))

    def lsn_sets(self) -> frozenset[frozenset[int]]:
        """Identity view: the set of record-lsn sets (handy in tests)."""
        return frozenset(o.lsns for o in self._incidents)


# ---------------------------------------------------------------------------
# Reference semantics: a literal transcription of Definition 4.
# ---------------------------------------------------------------------------

def reference_incidents(log: Log, pattern: Pattern) -> IncidentSet:
    """Ground-truth ``incL(p)`` computed directly from Definition 4.

    This recursive oracle makes no attempt at efficiency; it exists so the
    production engines can be differential-tested against the definition
    itself.
    """
    return IncidentSet(_reference(log, pattern))


def _reference(log: Log, pattern: Pattern) -> set[Incident]:
    if isinstance(pattern, Atomic):
        return {Incident([r]) for r in log if pattern.matches(r)}

    assert hasattr(pattern, "left") and hasattr(pattern, "right")
    left = _reference(log, pattern.left)
    right = _reference(log, pattern.right)

    if isinstance(pattern, Choice):
        return left | right

    out: set[Incident] = set()
    for o1 in left:
        for o2 in right:
            if o1.wid != o2.wid:
                continue
            if isinstance(pattern, (Consecutive, Sequential)):
                if pattern.gap_ok(o1.last, o2.first):
                    out.add(o1.union(o2))
            elif isinstance(pattern, Parallel):
                if o1.disjoint(o2):
                    out.add(o1.union(o2))
            else:  # pragma: no cover - unknown operator
                raise TypeError(f"unknown pattern operator {type(pattern).__name__}")
    return out

"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the subsystems: log well-formedness (:class:`LogValidationError`),
query-text parsing (:class:`PatternSyntaxError`), evaluation
(:class:`EvaluationError`), and the optimizer (:class:`OptimizerError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LogValidationError(ReproError):
    """A log (or log record) violates the well-formedness conditions of
    Definition 2 in the paper.

    Attributes
    ----------
    condition:
        Which numbered condition of Definition 2 was violated (1-4), or
        ``0`` for structural problems outside the definition (e.g. a
        duplicated log sequence number type error).
    lsn:
        The log sequence number of the offending record, when known.
    """

    def __init__(self, message: str, *, condition: int = 0, lsn: int | None = None):
        super().__init__(message)
        self.condition = condition
        self.lsn = lsn


class PatternSyntaxError(ReproError):
    """The textual query could not be parsed into an incident pattern.

    Attributes
    ----------
    text:
        The full query text.
    position:
        0-based character offset at which the error was detected, or
        ``None`` when the error is not tied to a position (e.g. an
        unexpected end of input).
    """

    def __init__(self, message: str, *, text: str = "", position: int | None = None):
        if position is not None and text:
            pointer = " " * position + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)
        self.text = text
        self.position = position


class EvaluationError(ReproError):
    """Evaluating a pattern against a log failed."""


class BudgetExceededError(EvaluationError):
    """An evaluation exceeded a user-supplied resource budget.

    Incident sets can be exponential in the pattern size (Theorem 1), so
    engines accept an optional cap on the number of incidents materialised;
    exceeding it raises this error rather than exhausting memory.
    """

    def __init__(self, message: str, *, limit: int):
        super().__init__(message)
        self.limit = limit


def _rebuild_error(cls: type, message: str, attrs: dict) -> Exception:
    """Reconstruct a governor error from pickled state.

    The governor errors carry keyword-only attributes (partial stats,
    budget values); a plain ``Exception.__reduce__`` would re-invoke the
    constructor with positional args only and fail.  Workers raise these
    across a ``ProcessPoolExecutor`` boundary, so they must round-trip.
    """
    err = cls.__new__(cls)
    Exception.__init__(err, message)
    err.__dict__.update(attrs)
    return err


class QueryGovernorError(EvaluationError):
    """A resource governor stopped a query before completion.

    Base of the typed budget errors raised at the cooperative engine
    checkpoints (see ``docs/OBSERVABILITY.md``).  Attributes:

    partial_stats:
        Detached :class:`~repro.core.eval.base.EvaluationStats` snapshot
        taken at the checkpoint that tripped — what the query had cost
        when it was killed — or ``None`` when the failing code path keeps
        no pairwise stats (the counting DP charges abstract work units).
    """

    def __init__(self, message: str, *, partial_stats: object | None = None):
        super().__init__(message)
        self.partial_stats = partial_stats

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args[0], self.__dict__.copy()))


class QueryBudgetExceeded(QueryGovernorError):
    """A query examined more pairs than its ``max_pairs`` budget allows.

    Attributes
    ----------
    limit:
        The configured ``max_pairs`` budget.
    examined:
        Pairs (or equivalent work units) examined when the budget tripped.
    """

    def __init__(
        self,
        message: str,
        *,
        limit: int,
        examined: int,
        partial_stats: object | None = None,
    ):
        super().__init__(message, partial_stats=partial_stats)
        self.limit = limit
        self.examined = examined


class QueryTimeout(QueryGovernorError):
    """A query ran past its ``deadline_ms`` wall-clock budget.

    Attributes
    ----------
    deadline_ms:
        The configured budget in milliseconds (None when the governor was
        built from an absolute deadline only).
    elapsed_ms:
        Wall time elapsed when the deadline check tripped.
    """

    def __init__(
        self,
        message: str,
        *,
        deadline_ms: float | None = None,
        elapsed_ms: float | None = None,
        partial_stats: object | None = None,
    ):
        super().__init__(message, partial_stats=partial_stats)
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms


class QueryCancelled(QueryGovernorError):
    """A query was cancelled cooperatively (a sibling shard tripped its
    budget, so the executor asked the remaining shards to stop)."""


class OptimizerError(ReproError):
    """The query optimizer produced or detected an inconsistent plan."""


class AnalysisError(ReproError):
    """Base class of the :mod:`repro.analysis` decision-procedure errors."""


class UnsupportedPatternError(AnalysisError):
    """The pattern falls outside the decidable fragment the prover
    compiles to automata (e.g. an attribute-guarded atom, whose predicate
    language is not regular over activity names)."""


class AnalysisBudgetError(AnalysisError):
    """An automaton construction exceeded the prover's state budget.

    The decision procedures are complete but worst-case exponential in
    pattern size (subset construction, shuffle products); the budget
    turns that into a clean refusal instead of unbounded memory use.
    """

    def __init__(self, message: str, *, limit: int):
        super().__init__(message)
        self.limit = limit


class WorkflowDefinitionError(ReproError):
    """A workflow specification is structurally invalid (unknown node,
    unreachable activity, gateway fan-in/out mismatch, ...)."""


class WorkflowRuntimeError(ReproError):
    """A workflow instance failed during simulated execution."""


class LogStoreError(ReproError):
    """A log store operation failed (I/O, format, or index consistency)."""

"""Workflow-log data model (Definitions 1 and 2 of the paper).

A *log record* is a tuple ``(lsn, wid, is-lsn, t, αin, αout)`` capturing one
activity execution inside one workflow instance:

* ``lsn`` — global log sequence number (positions ``1..|L|``),
* ``wid`` — workflow instance id,
* ``is_lsn`` — instance-specific log sequence number (``1..`` per instance),
* ``activity`` — the activity name ``t``,
* ``attrs_in`` / ``attrs_out`` — the input/output attribute maps.

A *log* is a finite set of records satisfying the four well-formedness
conditions of Definition 2; :meth:`Log.validate` enforces them.  Each
workflow instance begins with a ``START`` record and optionally ends with an
``END`` record.

The module-level helpers :func:`lsn`, :func:`wid`, :func:`is_lsn`,
:func:`act`, :func:`attrs_in` and :func:`attrs_out` mirror the component
extraction functions used throughout the paper's definitions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any

from repro.core.errors import LogValidationError
from repro.core.view import ActivitySet, RecordsView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columnar.column_log import ColumnarLog

__all__ = [
    "START",
    "END",
    "AttrMap",
    "LogRecord",
    "Log",
    "lsn",
    "wid",
    "is_lsn",
    "act",
    "attrs_in",
    "attrs_out",
]

#: Activity name of the mandatory first record of every workflow instance.
START = "START"

#: Activity name of the optional final record of a workflow instance.
END = "END"

#: Attribute maps assign values to a finite set of attribute names.
AttrMap = Mapping[str, Any]

_EMPTY_MAP: AttrMap = MappingProxyType({})


def _freeze_attrs(attrs: AttrMap | None) -> AttrMap:
    """Return an immutable view of ``attrs`` (``None`` becomes empty)."""
    if attrs is None or len(attrs) == 0:
        return _EMPTY_MAP
    return MappingProxyType(dict(attrs))


@dataclass(frozen=True, slots=True)
class LogRecord:
    """A single entry of a workflow log (Definition 1).

    Instances are immutable and hashable; identity within a log is carried
    by the globally unique ``lsn``.

    Examples
    --------
    >>> rec = LogRecord(lsn=4, wid=1, is_lsn=3, activity="CheckIn",
    ...                 attrs_in={"referId": "034d1"},
    ...                 attrs_out={"referState": "active"})
    >>> rec.activity
    'CheckIn'
    >>> rec.attrs_out["referState"]
    'active'
    """

    lsn: int
    wid: int
    is_lsn: int
    activity: str
    attrs_in: AttrMap | None = field(default=None)
    attrs_out: AttrMap | None = field(default=None)

    def __post_init__(self) -> None:
        if self.lsn < 1:
            raise LogValidationError(
                f"lsn must be a positive natural number, got {self.lsn}", lsn=self.lsn
            )
        if self.wid < 1:
            raise LogValidationError(
                f"wid must be a positive natural number, got {self.wid}", lsn=self.lsn
            )
        if self.is_lsn < 1:
            raise LogValidationError(
                f"is-lsn must be a positive natural number, got {self.is_lsn}",
                lsn=self.lsn,
            )
        if not self.activity:
            raise LogValidationError("activity name must be nonempty", lsn=self.lsn)
        object.__setattr__(self, "attrs_in", _freeze_attrs(self.attrs_in))
        object.__setattr__(self, "attrs_out", _freeze_attrs(self.attrs_out))

    def __hash__(self) -> int:
        # equality includes the attribute maps, but the hash only needs the
        # identity columns (maps may hold unhashable values such as lists)
        return hash((self.lsn, self.wid, self.is_lsn, self.activity))

    # Records are immutable: copying returns self; pickling rebuilds from
    # plain dicts (mappingproxy itself is not picklable).
    def __copy__(self) -> "LogRecord":
        return self

    def __deepcopy__(self, memo) -> "LogRecord":
        return self

    def __reduce__(self):
        return (
            LogRecord,
            (
                self.lsn,
                self.wid,
                self.is_lsn,
                self.activity,
                dict(self.attrs_in),
                dict(self.attrs_out),
            ),
        )

    # Records are totally ordered by their global log sequence number.
    def __lt__(self, other: "LogRecord") -> bool:
        return self.lsn < other.lsn

    def __le__(self, other: "LogRecord") -> bool:
        return self.lsn <= other.lsn

    @property
    def is_start(self) -> bool:
        """Whether this is a ``START`` sentinel record."""
        return self.activity == START

    @property
    def is_end(self) -> bool:
        """Whether this is an ``END`` sentinel record."""
        return self.activity == END

    @property
    def is_sentinel(self) -> bool:
        """Whether this record is a ``START`` or ``END`` sentinel."""
        return self.is_start or self.is_end

    def reads(self, attribute: str) -> bool:
        """Whether the activity read ``attribute`` (it appears in αin)."""
        return attribute in self.attrs_in

    def writes(self, attribute: str) -> bool:
        """Whether the activity wrote ``attribute`` (it appears in αout)."""
        return attribute in self.attrs_out

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation used by the serialization modules."""
        return {
            "lsn": self.lsn,
            "wid": self.wid,
            "is_lsn": self.is_lsn,
            "activity": self.activity,
            "attrs_in": dict(self.attrs_in),
            "attrs_out": dict(self.attrs_out),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LogRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            lsn=int(data["lsn"]),
            wid=int(data["wid"]),
            is_lsn=int(data["is_lsn"]),
            activity=str(data["activity"]),
            attrs_in=data.get("attrs_in") or {},
            attrs_out=data.get("attrs_out") or {},
        )

    def __repr__(self) -> str:  # compact, log-table-like
        return (
            f"LogRecord(lsn={self.lsn}, wid={self.wid}, is_lsn={self.is_lsn}, "
            f"activity={self.activity!r})"
        )


# ---------------------------------------------------------------------------
# Component-extraction helpers matching the paper's notation.
# ---------------------------------------------------------------------------

def lsn(record: LogRecord) -> int:
    """The log sequence number of ``record`` (paper: ``lsn(l)``)."""
    return record.lsn


def wid(record: LogRecord) -> int:
    """The workflow instance id of ``record`` (paper: ``wid(l)``)."""
    return record.wid


def is_lsn(record: LogRecord) -> int:
    """The instance-specific sequence number (paper: ``is-lsn(l)``)."""
    return record.is_lsn


def act(record: LogRecord) -> str:
    """The activity name of ``record`` (paper: ``act(l)``)."""
    return record.activity


def attrs_in(record: LogRecord) -> AttrMap:
    """The input attribute map (paper: ``αin(l)``)."""
    return record.attrs_in


def attrs_out(record: LogRecord) -> AttrMap:
    """The output attribute map (paper: ``αout(l)``)."""
    return record.attrs_out


class Log:
    """A well-formed workflow log (Definition 2).

    A :class:`Log` is an immutable sequence of :class:`LogRecord` objects in
    ascending ``lsn`` order.  Construction validates the four conditions of
    Definition 2 unless ``validate=False`` is passed (used internally when
    the source is already trusted, e.g. the workflow engine).

    Definition 2 conditions enforced:

    1. the set of lsn values is exactly ``{1, ..., |L|}``;
    2. ``is_lsn == 1`` iff the record's activity is ``START``;
    3. within an instance, ``is_lsn`` values are consecutive, and the record
       with ``is_lsn = k+1`` appears later in the log than the one with
       ``is_lsn = k``;
    4. an ``END`` record is the last record of its instance.

    Examples
    --------
    >>> log = Log.from_tuples([
    ...     (1, 1, 1, "START"),
    ...     (2, 1, 2, "GetRefer"),
    ...     (3, 1, 3, "CheckIn"),
    ... ])
    >>> len(log)
    3
    >>> [r.activity for r in log.instance(1)]
    ['START', 'GetRefer', 'CheckIn']
    """

    __slots__ = (
        "_records",
        "_by_wid",
        "_by_activity",
        "_by_lsn",
        "_epoch",
        "_lineage",
        "_is_snapshot",
        "_fingerprint",
        "_records_view",
        "_columnar",
    )

    #: Slots that are derived caches, rebuilt lazily — excluded from
    #: pickling so shard logs shipped to process workers stay lean.
    _TRANSIENT_SLOTS = ("_records_view", "_columnar")

    def __init__(
        self,
        records: Iterable[LogRecord],
        *,
        validate: bool = True,
        epoch: int = 0,
        lineage: str | None = None,
        snapshot: bool = False,
    ):
        recs = sorted(records, key=lambda r: r.lsn)
        self._records: tuple[LogRecord, ...] = tuple(recs)
        self._epoch = epoch
        self._lineage = lineage
        self._is_snapshot = snapshot
        self._fingerprint: str | None = None
        self._records_view: RecordsView | None = None
        self._columnar: "ColumnarLog | None" = None
        if validate:
            _validate_records(self._records)
        by_wid: dict[int, list[LogRecord]] = {}
        by_activity: dict[str, list[LogRecord]] = {}
        by_lsn: dict[int, LogRecord] = {}
        for rec in self._records:
            by_wid.setdefault(rec.wid, []).append(rec)
            by_activity.setdefault(rec.activity, []).append(rec)
            by_lsn[rec.lsn] = rec
        self._by_wid = {w: tuple(rs) for w, rs in by_wid.items()}
        self._by_activity = {a: tuple(rs) for a, rs in by_activity.items()}
        self._by_lsn = by_lsn

    # -- construction -------------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        rows: Iterable[tuple | Sequence],
        *,
        validate: bool = True,
    ) -> "Log":
        """Build a log from ``(lsn, wid, is_lsn, activity[, αin[, αout]])``
        tuples — the column layout of Figure 3 in the paper."""
        records = []
        for row in rows:
            row = tuple(row)
            if not 4 <= len(row) <= 6:
                raise LogValidationError(
                    f"expected 4-6 fields per row, got {len(row)}: {row!r}"
                )
            ain = row[4] if len(row) > 4 else None
            aout = row[5] if len(row) > 5 else None
            records.append(
                LogRecord(
                    lsn=row[0],
                    wid=row[1],
                    is_lsn=row[2],
                    activity=row[3],
                    attrs_in=ain,
                    attrs_out=aout,
                )
            )
        return cls(records, validate=validate)

    @classmethod
    def from_traces(
        cls,
        traces: Mapping[int, Sequence[str]] | Sequence[Sequence[str]],
        *,
        interleave: bool = False,
        add_sentinels: bool = True,
    ) -> "Log":
        """Build a log from per-instance activity-name sequences.

        ``traces`` maps instance ids to activity-name sequences (or is a
        list, in which case instance ids ``1..n`` are assigned).  When
        ``interleave`` is false the instances are logged back to back; when
        true their records are round-robin interleaved, exercising the
        multi-instance structure of real logs.  ``add_sentinels`` prepends a
        ``START`` record (required by Definition 2) and appends an ``END``
        record to every instance.
        """
        if not isinstance(traces, Mapping):
            traces = {i + 1: seq for i, seq in enumerate(traces)}
        per_instance: dict[int, list[str]] = {}
        for w, seq in traces.items():
            names = list(seq)
            if add_sentinels:
                names = [START, *names, END]
            if not names or names[0] != START:
                raise LogValidationError(
                    f"instance {w} does not begin with START", condition=2
                )
            per_instance[int(w)] = names

        records: list[LogRecord] = []
        next_lsn = 1
        if interleave:
            cursors = {w: 0 for w in per_instance}
            remaining = sum(len(v) for v in per_instance.values())
            order = sorted(per_instance)
            while remaining:
                for w in order:
                    i = cursors[w]
                    if i >= len(per_instance[w]):
                        continue
                    records.append(
                        LogRecord(
                            lsn=next_lsn,
                            wid=w,
                            is_lsn=i + 1,
                            activity=per_instance[w][i],
                        )
                    )
                    cursors[w] += 1
                    next_lsn += 1
                    remaining -= 1
        else:
            for w in sorted(per_instance):
                for i, name in enumerate(per_instance[w]):
                    records.append(
                        LogRecord(lsn=next_lsn, wid=w, is_lsn=i + 1, activity=name)
                    )
                    next_lsn += 1
        return cls(records)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> LogRecord:
        return self._records[index]

    def __contains__(self, record: object) -> bool:
        if not isinstance(record, LogRecord):
            return False
        return self._by_lsn.get(record.lsn) == record

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Log):
            return NotImplemented
        return self._records == other._records

    def __hash__(self) -> int:
        return hash(self._records)

    def __repr__(self) -> str:
        return f"Log({len(self)} records, {len(self._by_wid)} instances)"

    # -- views ---------------------------------------------------------------

    @property
    def records(self) -> RecordsView:
        """All records in ascending ``lsn`` order.

        Returned as a :class:`~repro.core.view.RecordsView` — an immutable
        :class:`tuple` subclass that is also callable (returning itself), so
        both the legacy attribute style ``log.records`` and the
        :class:`~repro.core.view.LogView` protocol's ``log.records()`` work.
        The historical list-mutation surface raises with a
        :class:`DeprecationWarning`.
        """
        view = self._records_view
        if view is None:
            view = self._records_view = RecordsView(self._records)
        return view

    @property
    def wids(self) -> tuple[int, ...]:
        """All workflow instance ids present in the log, sorted."""
        return tuple(sorted(self._by_wid))

    @property
    def activities(self) -> ActivitySet:
        """The set of activity names occurring in the log (callable view)."""
        return ActivitySet(self._by_activity)

    # -- provenance (cache invalidation, see repro.cache) -------------------

    @property
    def epoch(self) -> int:
        """Append epoch of the originating store at snapshot time.

        Stores bump their epoch on every appended record; a snapshot
        carries the epoch it was taken at, so two snapshots of one store
        are content-identical iff their ``(lineage, epoch)`` pairs match.
        Logs built directly (``from_traces``, file loaders) stay at 0.
        """
        return self._epoch

    @property
    def lineage(self) -> str | None:
        """Identity token of the originating append-only store, or None
        for logs without store provenance.  Within one lineage, records
        are never mutated or removed — the invariant the
        :mod:`repro.cache` subpattern memo relies on to keep entries for
        untouched instances valid across appends."""
        return self._lineage

    @property
    def is_snapshot(self) -> bool:
        """Whether this log is a *complete* store snapshot (as opposed to
        a projection/shard), making ``(lineage, epoch)`` a sound
        whole-log cache identity."""
        return self._is_snapshot

    @property
    def fingerprint(self) -> str:
        """Content digest of the log, computed lazily and cached.

        Used as the whole-log cache identity when no store lineage is
        available.  Covers every identity column and both attribute maps
        of every record.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.blake2b(digest_size=16)
            for r in self._records:
                digest.update(
                    f"{r.lsn}|{r.wid}|{r.is_lsn}|{r.activity}|"
                    f"{sorted(r.attrs_in.items())!r}|"
                    f"{sorted(r.attrs_out.items())!r}\n".encode()
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def record(self, lsn_value: int) -> LogRecord:
        """The record with log sequence number ``lsn_value``.

        Raises ``KeyError`` if no such record exists.
        """
        return self._by_lsn[lsn_value]

    def instance(self, wid_value: int) -> tuple[LogRecord, ...]:
        """All records of workflow instance ``wid_value`` in is-lsn order."""
        return self._by_wid.get(wid_value, ())

    def wid_slice(self, wid_value: int) -> tuple[LogRecord, ...]:
        """:class:`~repro.core.view.LogView` name for :meth:`instance`."""
        return self._by_wid.get(wid_value, ())

    def columnar(self) -> "ColumnarLog":
        """The cached columnar representation of this log.

        Built on first use and kept for the lifetime of the log (logs are
        immutable, so the columnar form never goes stale).  Excluded from
        pickling — see ``_TRANSIENT_SLOTS``.
        """
        if self._columnar is None:
            from repro.columnar.column_log import ColumnarLog

            self._columnar = ColumnarLog.from_log(self)
        return self._columnar

    def with_activity(self, activity: str) -> tuple[LogRecord, ...]:
        """All records with the given activity name, in lsn order.

        This is the constant-time activity index used by Algorithm 2."""
        return self._by_activity.get(activity, ())

    def is_complete(self, wid_value: int) -> bool:
        """Whether instance ``wid_value`` has reached its ``END`` record."""
        recs = self.instance(wid_value)
        return bool(recs) and recs[-1].is_end

    def project(self, wids: Iterable[int]) -> "Log":
        """A wid-projection: only the given instances, with the *original*
        ``lsn`` values preserved.

        The result is not validated (condition 1 of Definition 2 requires
        contiguous lsn values, which a projection deliberately breaks) and
        the record objects are shared, not copied.  Because incidents are
        identified by their record-lsn sets (Definition 4), a pattern's
        incident set over a projection equals the same-wid slice of its
        incident set over the whole log — the property :mod:`repro.exec`
        sharding relies on.
        """
        keep = set(wids)
        return Log(
            (r for r in self._records if r.wid in keep),
            validate=False,
            epoch=self._epoch,
            lineage=self._lineage,
            snapshot=False,
        )

    def restrict_to(self, wids: Iterable[int]) -> "Log":
        """A new log containing only the given instances, with lsn values
        compacted to remain well-formed (Definition 2 condition 1)."""
        keep = set(wids)
        kept = [r for r in self._records if r.wid in keep]
        out = [
            LogRecord(
                lsn=i + 1,
                wid=r.wid,
                is_lsn=r.is_lsn,
                activity=r.activity,
                attrs_in=r.attrs_in,
                attrs_out=r.attrs_out,
            )
            for i, r in enumerate(kept)
        ]
        return Log(out)

    def validate(self) -> None:
        """Re-run the Definition 2 well-formedness checks."""
        _validate_records(self._records)

    # -- pickling ------------------------------------------------------------
    # Slotted classes pickle via per-slot state; the derived caches in
    # _TRANSIENT_SLOTS are dropped so shard logs shipped to process-pool
    # workers do not also ship a columnar copy of themselves.

    def __getstate__(self) -> dict[str, Any]:
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in self._TRANSIENT_SLOTS
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot in self._TRANSIENT_SLOTS:
            object.__setattr__(self, slot, None)
        for slot, value in state.items():
            object.__setattr__(self, slot, value)


def _validate_records(records: Sequence[LogRecord]) -> None:
    """Enforce the four conditions of Definition 2 on sorted records."""
    if not records:
        raise LogValidationError("a log must be a nonempty set of records")

    # Condition 1: lsn values are exactly 1..|L| (bijection with an initial
    # segment of the positive naturals).
    for position, record in enumerate(records, start=1):
        if record.lsn != position:
            raise LogValidationError(
                f"lsn values must be exactly 1..{len(records)}; "
                f"found lsn={record.lsn} at position {position}",
                condition=1,
                lsn=record.lsn,
            )

    last_is_lsn: dict[int, int] = {}
    ended: set[int] = set()
    for record in records:
        if record.wid in ended:
            raise LogValidationError(
                f"instance {record.wid} has records after its END record",
                condition=4,
                lsn=record.lsn,
            )
        # Condition 2: is_lsn == 1 iff activity == START.
        if (record.is_lsn == 1) != record.is_start:
            raise LogValidationError(
                f"record lsn={record.lsn}: is-lsn==1 iff activity==START "
                f"(got is-lsn={record.is_lsn}, activity={record.activity!r})",
                condition=2,
                lsn=record.lsn,
            )
        # Condition 3: per-instance is_lsn values are consecutive and appear
        # in ascending lsn order.
        expected = last_is_lsn.get(record.wid, 0) + 1
        if record.is_lsn != expected:
            raise LogValidationError(
                f"instance {record.wid}: expected is-lsn={expected}, "
                f"got {record.is_lsn} at lsn={record.lsn}",
                condition=3,
                lsn=record.lsn,
            )
        last_is_lsn[record.wid] = record.is_lsn
        if record.is_end:
            ended.add(record.wid)

"""The :class:`Backend` enumeration — one typed home for the execution
backend names that used to float around as bare strings in
:class:`~repro.core.options.EngineOptions`,
:class:`~repro.exec.parallel.ParallelExecutor`, the CLI and the service
schemas.

``Backend`` is a :class:`str` subclass (the pre-3.11 spelling of
``enum.StrEnum``), so every existing comparison, dict lookup, format
string and JSON serialisation keeps working with the member in place of
the raw string — ``Backend.PROCESS == "process"``,
``{"process": ...}[Backend.PROCESS]`` and ``json.dumps`` all behave as
before.  Old string values therefore remain valid everywhere; they are
coerced to members at the API boundary by :meth:`Backend.coerce`, which
is also where unknown names fail with an error listing the valid
members.

Not every member is meaningful in every position:

* ``AUTO``/``SERIAL``/``THREAD``/``PROCESS`` — the sharded-executor
  backends (:data:`Backend.executor`);
* ``SQLITE`` — the SQL pushdown backend: evaluation is compiled to SQL
  over the columnar schema (:mod:`repro.columnar.sqlite`) instead of
  being sharded, so it is *requestable* on
  :class:`~repro.core.options.EngineOptions` but rejected by the
  executor;
* ``CACHE`` — a reporting label only (a warm result-cache hit short-cuts
  the fan-out and the outcome says so); it is never requestable.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.core.errors import ReproError

__all__ = ["Backend"]


class Backend(str, Enum):
    """Execution backend of one query evaluation (see module docs)."""

    #: Let the dispatch cost model pick between serial and process.
    AUTO = "auto"
    #: Evaluate in the calling thread (one shard, no pool).
    SERIAL = "serial"
    #: Thread-pool fan-out (GIL-bound; useful for I/O-heavy engines).
    THREAD = "thread"
    #: Process-pool fan-out (true CPU parallelism, pays pickling).
    PROCESS = "process"
    #: Served from the result cache — reporting label, never requestable.
    CACHE = "cache"
    #: SQL pushdown: compile the pattern to SQL over the columnar schema.
    SQLITE = "sqlite"

    # str-mixin behaviour, matching enum.StrEnum (python >= 3.11) so the
    # members format/print as their plain values on 3.10 too
    __str__ = str.__str__
    __format__ = str.__format__

    @classmethod
    def requestable(cls) -> tuple["Backend", ...]:
        """Members a caller may ask for (everything except ``CACHE``)."""
        return (cls.AUTO, cls.SERIAL, cls.THREAD, cls.PROCESS, cls.SQLITE)

    @classmethod
    def executor(cls) -> tuple["Backend", ...]:
        """Members the sharded parallel executor accepts."""
        return (cls.AUTO, cls.SERIAL, cls.THREAD, cls.PROCESS)

    @classmethod
    def coerce(
        cls,
        value: "Backend | str",
        *,
        allow: Iterable["Backend"] | None = None,
        where: str = "backend",
    ) -> "Backend":
        """``value`` as a :class:`Backend` member.

        Accepts members and their string values (the legacy spelling).
        ``allow`` restricts the valid members for this position (e.g.
        :meth:`executor` inside the parallel executor); the default is
        :meth:`requestable`.  Unknown or disallowed values raise
        :class:`~repro.core.errors.ReproError` naming the valid members.
        """
        allowed = tuple(allow) if allow is not None else cls.requestable()
        try:
            member = value if isinstance(value, cls) else cls(value)
        except ValueError:
            member = None
        if member is None or member not in allowed:
            raise ReproError(
                f"unknown {where} {str(value)!r}; "
                f"available: {tuple(m.value for m in allowed)}"
            )
        return member

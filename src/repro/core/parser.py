"""Textual query syntax for incident patterns.

The paper builds incident trees from infix pattern expressions using
Dijkstra's shunting-yard algorithm (Algorithm 3).  This module implements
that pipeline: a tokenizer, the shunting-yard infix→AST conversion, and
precise error reporting with source positions.

Surface syntax
--------------

====================  =======================  =====================
construct             ASCII                    unicode alias
====================  =======================  =====================
positive atom         ``CheckIn``              —
quoted atom           ``"Check In"``           —
negated atom          ``!CheckIn``             ``¬CheckIn``
consecutive (⊙)       ``A ; B``                ``A ⊙ B``
sequential  (⊳)       ``A -> B``               ``A ⊳ B`` or ``A » B``
parallel    (⊕)       ``A & B``                ``A ⊕ B``
choice      (⊗)       ``A | B``                ``A ⊗ B``
grouping              ``( ... )``              —
====================  =======================  =====================

Precedence, tightest first: ``;`` = ``->`` (one level, per Theorem 4 both
chains associate freely), then ``&``, then ``|``.  All operators are
left-associative — harmless by Theorem 2 (all four operators are
associative), but it fixes a canonical parse.

Examples
--------
>>> parse("UpdateRefer -> GetReimburse")
Sequential(Atomic(UpdateRefer), Atomic(GetReimburse))
>>> parse("A ; B | C & D").token
'|'
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.errors import PatternSyntaxError
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = [
    "parse",
    "parse_with_spans",
    "tokenize",
    "Token",
    "SourceSpan",
    "ParseResult",
]


_OPERATORS: dict[str, type[BinaryPattern]] = {
    ";": Consecutive,
    "⊙": Consecutive,
    "->": Sequential,
    "⊳": Sequential,
    "»": Sequential,
    "|": Choice,
    "⊗": Choice,
    "&": Parallel,
    "⊕": Parallel,
}

#: Precedence per canonical token; higher binds tighter.
_PRECEDENCE: dict[type[BinaryPattern], int] = {
    Consecutive: 3,
    Sequential: 3,
    Parallel: 2,
    Choice: 1,
}

_NEGATION_CHARS = ("!", "¬")


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token: ``kind`` is one of ``atom``, ``op``, ``lparen``,
    ``rparen``; ``value`` is the atom name or canonical operator token;
    ``position`` is the 0-based source offset; ``negated`` flags ``!atom``;
    ``guard`` carries the text of an attribute guard (``Name[...]``);
    ``bound`` carries the window of a bounded sequential (``->[k]``).
    """

    kind: str
    value: str
    position: int
    negated: bool = False
    guard: str | None = None
    bound: int | None = None
    #: 0-based exclusive end offset of the token's source text; ``-1`` for
    #: tokens constructed without position information.
    end: int = -1


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """A half-open ``[start, end)`` character range in the query text.

    Spans are attached to AST nodes during parsing (see
    :class:`ParseResult`) so downstream tooling — notably
    :mod:`repro.core.lint` — can point diagnostics at the offending
    subexpression.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def slice(self, text: str) -> str:
        """The source text the span covers."""
        return text[self.start : self.end]

    def caret_line(self) -> str:
        """An underline (``^^^``) aligned with the span, for CLI output."""
        return " " * self.start + "^" * max(1, self.end - self.start)

    def __str__(self) -> str:
        return f"{self.start}-{self.end}"


class ParseResult:
    """A parsed pattern plus the source spans of its AST nodes.

    Patterns are immutable value objects — structurally equal subtrees
    compare and hash equal — so spans are kept in a side table keyed by
    node *identity* rather than on the nodes themselves.  The result
    object retains the root pattern (keeping every node alive), which
    makes identity keys stable for its lifetime.
    """

    __slots__ = ("pattern", "text", "_spans")

    def __init__(self, pattern: Pattern, text: str, spans: dict[int, SourceSpan]):
        self.pattern = pattern
        self.text = text
        self._spans = spans

    def span(self, node: Pattern) -> SourceSpan | None:
        """The source span of ``node``, or None when the node is not part
        of this parse (e.g. built by a rewrite)."""
        return self._spans.get(id(node))

    def __repr__(self) -> str:
        return f"ParseResult({self.text!r})"


def tokenize(text: str) -> Iterator[Token]:
    """Lex ``text`` into :class:`Token` objects.

    Raises
    ------
    PatternSyntaxError
        On an unexpected character or an unterminated quoted name.
    """
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(":
            yield Token("lparen", "(", i, end=i + 1)
            i += 1
            continue
        if ch == ")":
            yield Token("rparen", ")", i, end=i + 1)
            i += 1
            continue
        if text.startswith("->", i):
            i += 2
            if i < n and text[i] == "[":
                end = text.find("]", i + 1)
                if end < 0:
                    raise PatternSyntaxError(
                        "unterminated window bound after '->['",
                        text=text,
                        position=i,
                    )
                raw = text[i + 1 : end].strip()
                if not raw.isdigit() or int(raw) < 1:
                    raise PatternSyntaxError(
                        f"window bound must be a positive integer, got {raw!r}",
                        text=text,
                        position=i + 1,
                    )
                yield Token("op", "->", i - 2, bound=int(raw), end=end + 1)
                i = end + 1
            else:
                yield Token("op", "->", i - 2, end=i)
            continue
        if ch in _OPERATORS and ch != "-":
            # single-character operators and unicode aliases
            canonical = _OPERATORS[ch].token
            yield Token("op", canonical, i, end=i + 1)
            i += 1
            continue
        if ch in _NEGATION_CHARS:
            start = i
            i += 1
            while i < n and text[i].isspace():
                i += 1
            name, i = _read_name(text, i, start)
            guard, i = _read_guard(text, i)
            yield Token("atom", name, start, negated=True, guard=guard, end=i)
            continue
        if ch == '"' or ch == "_" or ch.isalnum():
            start = i
            name, i = _read_name(text, i, start)
            guard, i = _read_guard(text, i)
            yield Token("atom", name, start, guard=guard, end=i)
            continue
        raise PatternSyntaxError(
            f"unexpected character {ch!r}", text=text, position=i
        )


def _read_name(text: str, i: int, error_pos: int) -> tuple[str, int]:
    """Read an activity name starting at ``i``; returns (name, next index)."""
    n = len(text)
    if i >= n:
        raise PatternSyntaxError(
            "expected an activity name", text=text, position=error_pos
        )
    if text[i] == '"':
        end = text.find('"', i + 1)
        if end < 0:
            raise PatternSyntaxError(
                "unterminated quoted activity name", text=text, position=i
            )
        name = text[i + 1 : end]
        if not name:
            raise PatternSyntaxError(
                "empty quoted activity name", text=text, position=i
            )
        return name, end + 1
    if not (text[i].isalnum() or text[i] == "_"):
        raise PatternSyntaxError(
            f"expected an activity name, found {text[i]!r}",
            text=text,
            position=i,
        )
    j = i
    while j < n and (text[j].isalnum() or text[j] == "_"):
        j += 1
    return text[i:j], j


def _read_guard(text: str, i: int) -> tuple[str | None, int]:
    """Read an optional ``[guard]`` suffix after an atom name."""
    n = len(text)
    j = i
    while j < n and text[j].isspace():
        j += 1
    if j >= n or text[j] != "[":
        return None, i
    depth = 0
    k = j
    while k < n:
        if text[k] == "[":
            depth += 1
        elif text[k] == "]":
            depth -= 1
            if depth == 0:
                return text[j + 1 : k], k + 1
        k += 1
    raise PatternSyntaxError("unterminated attribute guard", text=text, position=j)


def _make_atom(token: Token) -> Pattern:
    """Build the leaf for an atom token (guarded when ``[...]`` present)."""
    if token.guard is None:
        return Atomic(token.value, negated=token.negated)
    # imported lazily: extensions build on core, not the other way around
    from repro.extensions.conditions import Guarded, parse_guard

    return Guarded(token.value, token.negated, parse_guard(token.guard))


def _make_operator(token: Token):
    """The node factory for an operator token (windowed when bounded)."""
    cls = _OPERATORS[token.value]
    if token.bound is None:
        return cls
    from repro.extensions.windows import Within

    bound = token.bound

    def build(left: Pattern, right: Pattern) -> Pattern:
        return Within(left, right, bound)

    return build


def parse(text: str) -> Pattern:
    """Parse an infix pattern expression into a :class:`Pattern` AST.

    Implements the shunting-yard conversion of Algorithm 3: operators are
    held on a stack and popped to build AST nodes whenever a same-or-higher
    precedence operator (left associativity) or a closing parenthesis
    arrives.

    Raises
    ------
    PatternSyntaxError
        On any lexical or grammatical error, with source position.
    """
    return parse_with_spans(text).pattern


def parse_with_spans(text: str) -> ParseResult:
    """Like :func:`parse`, but also records each AST node's source span.

    Every node of the returned pattern — atoms and operators alike — maps
    to the ``[start, end)`` range of query text it was built from (operator
    nodes span their whole subexpression, excluding enclosing parentheses).
    """
    tokens = list(tokenize(text))
    if not tokens:
        raise PatternSyntaxError("empty pattern expression", text=text)

    spans: dict[int, SourceSpan] = {}
    output: list[Pattern] = []
    # operator stack holds ("op", factory, precedence, position) or
    # ("lparen", None, 0, position)
    stack: list[tuple[str, object, int, int]] = []
    # expect_operand tracks the grammar state: True when an atom or '(' is
    # legal next, False when an operator or ')' is legal next.
    expect_operand = True

    def reduce_once(position: int) -> None:
        kind, factory, __, ___ = stack.pop()
        assert kind == "op" and factory is not None
        if len(output) < 2:
            raise PatternSyntaxError(
                "operator is missing an operand", text=text, position=position
            )
        right = output.pop()
        left = output.pop()
        node = factory(left, right)  # type: ignore[operator]
        left_span, right_span = spans.get(id(left)), spans.get(id(right))
        if left_span is not None and right_span is not None:
            spans[id(node)] = SourceSpan(left_span.start, right_span.end)
        output.append(node)

    for token in tokens:
        if token.kind == "atom":
            if not expect_operand:
                raise PatternSyntaxError(
                    f"expected an operator before {token.value!r}",
                    text=text,
                    position=token.position,
                )
            atom = _make_atom(token)
            spans[id(atom)] = SourceSpan(token.position, token.end)
            output.append(atom)
            expect_operand = False
        elif token.kind == "lparen":
            if not expect_operand:
                raise PatternSyntaxError(
                    "expected an operator before '('",
                    text=text,
                    position=token.position,
                )
            stack.append(("lparen", None, 0, token.position))
            expect_operand = True
        elif token.kind == "rparen":
            if expect_operand:
                raise PatternSyntaxError(
                    "expected a pattern before ')'",
                    text=text,
                    position=token.position,
                )
            while stack and stack[-1][0] == "op":
                reduce_once(token.position)
            if not stack:
                raise PatternSyntaxError(
                    "unmatched ')'", text=text, position=token.position
                )
            stack.pop()  # the lparen
            expect_operand = False
        else:  # operator
            if expect_operand:
                raise PatternSyntaxError(
                    f"expected a pattern before {token.value!r}",
                    text=text,
                    position=token.position,
                )
            factory = _make_operator(token)
            my_prec = _PRECEDENCE[_OPERATORS[token.value]]
            while stack and stack[-1][0] == "op" and stack[-1][2] >= my_prec:
                reduce_once(token.position)
            stack.append(("op", factory, my_prec, token.position))
            expect_operand = True

    if expect_operand:
        last = tokens[-1]
        raise PatternSyntaxError(
            "expression ends with a dangling operator",
            text=text,
            position=last.position,
        )
    while stack:
        kind, __, ___, position = stack[-1]
        if kind == "lparen":
            raise PatternSyntaxError("unmatched '('", text=text, position=position)
        reduce_once(position)

    if len(output) != 1:  # pragma: no cover - guarded by grammar state machine
        raise PatternSyntaxError("malformed expression", text=text)
    return ParseResult(output[0], text, spans)

"""Cost-based query optimizer for incident patterns.

The paper proves algebraic laws (Theorems 2-5) and explicitly leaves
"developing query optimization techniques" as future work; this package
implements that future work:

* :mod:`repro.core.optimizer.cost` — log statistics and cardinality
  estimation grounded in the size bounds of Lemma 1;
* :mod:`repro.core.optimizer.rules` — rewrite rules, each one licensed by
  a specific theorem (choice factoring by Theorem 5, chain flattening by
  Theorems 2/4, ...);
* :mod:`repro.core.optimizer.planner` — a matrix-chain-style dynamic
  program that picks the cheapest parenthesisation of ⊙/⊳ chains, plus the
  top-level :class:`~repro.core.optimizer.planner.Optimizer`.
"""

from repro.core.optimizer.cost import CostModel, LogStatistics
from repro.core.optimizer.planner import OptimizedPlan, Optimizer
from repro.core.optimizer.rules import (
    REWRITE_RULES,
    RewriteRule,
    factor_choice,
    normalize,
    push_choice_out,
)

__all__ = [
    "CostModel",
    "LogStatistics",
    "Optimizer",
    "OptimizedPlan",
    "RewriteRule",
    "REWRITE_RULES",
    "factor_choice",
    "normalize",
    "push_choice_out",
]

"""Rewrite rules, each licensed by one of the paper's theorems.

A :class:`RewriteRule` maps a pattern to an equivalent pattern (or ``None``
when it does not apply).  All rules preserve ``incL`` by construction —
each cites the theorem that licenses it — and the test-suite additionally
verifies every rule application by randomized Definition 5 testing.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.algebra import build_left_deep, canonicalize, flatten_assoc
from repro.core.pattern import (
    BinaryPattern,
    Choice,
    Pattern,
)

__all__ = [
    "RewriteRule",
    "REWRITE_RULES",
    "factor_choice",
    "push_choice_out",
    "dedup_choice",
    "apply_bottom_up",
    "normalize",
]


@dataclass(frozen=True)
class RewriteRule:
    """A named, theorem-licensed pattern rewrite.

    ``apply`` returns a rewritten pattern, or ``None`` when the rule does
    not match at the given root.
    """

    name: str
    theorem: str
    apply: Callable[[Pattern], Pattern | None]

    def __repr__(self) -> str:
        return f"RewriteRule({self.name}, licensed by {self.theorem})"


def apply_bottom_up(
    pattern: Pattern, rule: Callable[[Pattern], Pattern | None]
) -> tuple[Pattern, int]:
    """Apply ``rule`` at every node, bottom-up, until fixpoint at each node.

    Returns the rewritten pattern and the number of applications.
    """
    applications = 0

    def rec(node: Pattern) -> Pattern:
        nonlocal applications
        if isinstance(node, BinaryPattern):
            left = rec(node.left)
            right = rec(node.right)
            if left is not node.left or right is not node.right:
                node = node.with_children(left, right)
        # iterate at this node until the rule stops firing
        while True:
            replacement = rule(node)
            if replacement is None or replacement == node:
                return node
            applications += 1
            node = replacement

    return rec(pattern), applications


# ---------------------------------------------------------------------------
# Individual rules
# ---------------------------------------------------------------------------

def factor_choice(pattern: Pattern) -> Pattern | None:
    """Factor a common operand out of a choice (Theorem 5, right-to-left).

    ``(p θ q1) ⊗ (p θ q2)  →  p θ (q1 ⊗ q2)`` and symmetrically
    ``(q1 θ p) ⊗ (q2 θ p)  →  (q1 ⊗ q2) θ p``.

    Factoring never increases cost: it halves the number of θ-joins with
    the (typically large) common operand ``p``.
    """
    if not isinstance(pattern, Choice):
        return None
    left, right = pattern.left, pattern.right
    if not isinstance(left, BinaryPattern) or not _same_operator(left, right):
        return None
    if isinstance(left, Choice):
        return None  # nothing to factor out of nested choices
    assert isinstance(right, BinaryPattern)
    if left.left == right.left:
        return left.with_children(left.left, Choice(left.right, right.right))
    if left.right == right.right:
        return left.with_children(Choice(left.left, right.left), left.right)
    return None


def _same_operator(a: Pattern, b: Pattern) -> bool:
    """Whether two nodes carry the same operator, including any extra
    operator parameters (e.g. the window bound of a windowed ⊳)."""
    if type(a) is not type(b) or not isinstance(a, BinaryPattern):
        return False
    for field_info in dataclasses.fields(a):
        if field_info.name in ("left", "right"):
            continue
        if getattr(a, field_info.name) != getattr(b, field_info.name):
            return False
    return True


def push_choice_out(pattern: Pattern) -> Pattern | None:
    """Distribute an operator over a choice operand (Theorem 5,
    left-to-right).

    ``p θ (q1 ⊗ q2) → (p θ q1) ⊗ (p θ q2)`` (and symmetrically).  This
    *duplicates* ``p`` and is only beneficial in special cases (e.g. when a
    branch is empty on the target log), so it is not in the default rule
    set; the planner applies it cost-guardedly.
    """
    if not isinstance(pattern, BinaryPattern) or isinstance(pattern, Choice):
        return None
    if isinstance(pattern.right, Choice):
        q = pattern.right
        return Choice(
            pattern.with_children(pattern.left, q.left),
            pattern.with_children(pattern.left, q.right),
        )
    if isinstance(pattern.left, Choice):
        q = pattern.left
        return Choice(
            pattern.with_children(q.left, pattern.right),
            pattern.with_children(q.right, pattern.right),
        )
    return None


def dedup_choice(pattern: Pattern) -> Pattern | None:
    """Remove duplicate operands from a choice tree.

    ``p ⊗ p ≡ p`` because ``incL(p) ∪ incL(p) = incL(p)`` (set semantics of
    Definition 4); duplicates are detected modulo Theorem 2-4 canonical
    form.
    """
    if not isinstance(pattern, Choice):
        return None
    operands = flatten_assoc(pattern, Choice)
    seen: set[Pattern] = set()
    kept: list[Pattern] = []
    for operand in operands:
        key = canonicalize(operand)
        if key not in seen:
            seen.add(key)
            kept.append(operand)
    if len(kept) == len(operands):
        return None
    return build_left_deep(Choice, kept)


#: Default always-beneficial rule set, applied bottom-up to fixpoint.
REWRITE_RULES: tuple[RewriteRule, ...] = (
    RewriteRule("dedup-choice", "Definition 4 (set semantics)", dedup_choice),
    RewriteRule("factor-choice", "Theorem 5", factor_choice),
)


def normalize(pattern: Pattern) -> tuple[Pattern, list[str]]:
    """The shared normal form: :data:`REWRITE_RULES` applied bottom-up to
    fixpoint, in order.

    This is the single canonicalisation step both the planner
    (:class:`~repro.core.optimizer.planner.Optimizer`) and the static
    analyzer (:mod:`repro.core.lint`) run, so a query is planned in
    exactly the form lint reasoned about.  Returns the rewritten pattern
    and a human-readable description of each rule that fired.
    """
    applied: list[str] = []
    current = pattern
    for rule in REWRITE_RULES:
        current, count = apply_bottom_up(current, rule.apply)
        if count:
            applied.append(f"{rule.name} x{count} (licensed by {rule.theorem})")
    return current, applied

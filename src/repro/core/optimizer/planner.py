"""Plan selection: chain re-association DP and the top-level Optimizer.

Theorems 2 and 4 make every parenthesisation of a maximal ⊙/⊳ chain
equivalent (as long as each operator stays attached to its gap), exactly
as join associativity does in relational algebra.  The planner therefore
runs the classic matrix-chain dynamic program over each chain, using the
:class:`~repro.core.optimizer.cost.CostModel` cardinality estimates, to
pick the parenthesisation with the least estimated pairwise-join work.

The :class:`Optimizer` pipeline:

1. apply the always-beneficial rewrite rules (choice dedup and factoring,
   Theorem 5 right-to-left) bottom-up to fixpoint;
2. re-associate every maximal ⊙/⊳ chain via the DP;
3. cost-guardedly distribute operators over choices (Theorem 5
   left-to-right) when the estimate says it helps (e.g. one branch is
   empty on this log);
4. emit an :class:`OptimizedPlan` with before/after cost estimates and the
   list of applied transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import OptimizerError
from repro.core.model import Log
from repro.obs.log import get_logger
from repro.core.optimizer.cost import CostModel, LogStatistics
from repro.core.optimizer.rules import normalize, push_choice_out
from repro.core.algebra import flatten_chain
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Consecutive,
    Pattern,
    Sequential,
)

__all__ = ["Optimizer", "OptimizedPlan", "reassociate_chain"]

logger = get_logger("core.optimizer")


@dataclass
class OptimizedPlan:
    """Result of optimizing a query pattern for a specific log.

    Attributes
    ----------
    original, optimized:
        Input pattern and equivalent rewritten pattern.
    original_cost, optimized_cost:
        Estimated evaluation costs under the cost model.
    transformations:
        Human-readable list of the transformations applied.
    """

    original: Pattern
    optimized: Pattern
    original_cost: float
    optimized_cost: float
    transformations: list[str] = field(default_factory=list)

    @property
    def estimated_speedup(self) -> float:
        """Ratio of estimated costs (>= 1.0 when optimization helped)."""
        if self.optimized_cost <= 0:
            return 1.0
        return self.original_cost / self.optimized_cost

    def explain(self) -> str:
        """Multi-line explanation suitable for CLI `--explain` output."""
        lines = [
            f"original : {self.original}",
            f"optimized: {self.optimized}",
            f"estimated cost: {self.original_cost:,.0f} -> "
            f"{self.optimized_cost:,.0f} "
            f"({self.estimated_speedup:.2f}x)",
        ]
        if self.transformations:
            lines.append("transformations:")
            lines.extend(f"  - {t}" for t in self.transformations)
        else:
            lines.append("transformations: none (already optimal)")
        return "\n".join(lines)


def reassociate_chain(
    items: list[Pattern], gaps: list, model: CostModel
) -> tuple[Pattern, float]:
    """Matrix-chain DP over a ⊙/⊳ chain.

    Returns the cheapest-parenthesisation pattern and its estimated join
    cost.  ``items[i]`` must already be optimized; ``gaps[k]`` is the
    operator between items ``k`` and ``k+1``.
    """
    n = len(items)
    if n != len(gaps) + 1:
        raise OptimizerError("chain items/gaps length mismatch")
    if n == 1:
        return items[0], 0.0

    leaf_cards = [model.cardinality(item) for item in items]

    # card[i][j]: canonical cardinality estimate for the sub-chain i..j.
    # Computed left-to-right so it is independent of the parenthesisation
    # the DP later chooses (the estimate, like the true size, is a property
    # of the sub-chain, not of the plan).
    card = [[0.0] * n for _ in range(n)]
    for i in range(n):
        card[i][i] = leaf_cards[i]
        running = leaf_cards[i]
        for j in range(i + 1, n):
            running = model.join_cardinality(gaps[j - 1], running, leaf_cards[j])
            card[i][j] = running

    INF = float("inf")
    cost = [[0.0] * n for _ in range(n)]
    split = [[-1] * n for _ in range(n)]
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            best, best_k = INF, -1
            for k in range(i, j):
                candidate = (
                    cost[i][k]
                    + cost[k + 1][j]
                    + model.join_cost(gaps[k], card[i][k], card[k + 1][j])
                )
                if candidate < best:
                    best, best_k = candidate, k
            cost[i][j] = best
            split[i][j] = best_k

    def build(i: int, j: int) -> Pattern:
        if i == j:
            return items[i]
        k = split[i][j]
        return gaps[k].with_children(build(i, k), build(k + 1, j))

    return build(0, n - 1), cost[0][n - 1]


class Optimizer:
    """Cost-based optimizer for incident-pattern queries.

    Examples
    --------
    >>> from repro.core.parser import parse
    >>> from repro.core.model import Log
    >>> log = Log.from_traces([["A", "B", "A", "C"]])
    >>> plan = Optimizer.for_log(log).optimize(parse("A -> B -> C"))
    >>> plan.optimized_cost <= plan.original_cost
    True
    """

    def __init__(self, model: CostModel):
        self.model = model

    @classmethod
    def for_log(cls, log: Log) -> "Optimizer":
        """Build an optimizer from a log's collected statistics."""
        return cls(CostModel(LogStatistics.from_log(log)))

    def optimize(self, pattern: Pattern) -> OptimizedPlan:
        """Produce an equivalent, estimated-cheaper pattern for the log the
        cost model was built from."""
        original_cost = self.model.plan_cost(pattern)

        # the same normal form repro.core.lint reasons about
        current, transformations = normalize(pattern)

        reassociated = self._reassociate(current)
        if reassociated != current:
            transformations.append(
                "chain re-association via DP (licensed by Theorems 2 and 4)"
            )
            current = reassociated

        distributed = self._distribute_if_cheaper(current)
        if distributed is not None:
            transformations.append(
                "cost-guarded choice distribution (licensed by Theorem 5)"
            )
            current = distributed

        optimized_cost = self.model.plan_cost(current)
        logger.debug(
            "optimized %s -> %s (cost %.1f -> %.1f, %d transformation(s))",
            pattern,
            current,
            original_cost,
            optimized_cost,
            len(transformations),
        )
        return OptimizedPlan(
            original=pattern,
            optimized=current,
            original_cost=original_cost,
            optimized_cost=optimized_cost,
            transformations=transformations,
        )

    # -- internals -----------------------------------------------------

    def _reassociate(self, pattern: Pattern) -> Pattern:
        """Recursively re-associate every maximal ⊙/⊳ chain."""
        if isinstance(pattern, Atomic):
            return pattern
        if isinstance(pattern, (Consecutive, Sequential)):
            items, gaps = flatten_chain(pattern)
            items = [self._reassociate(item) for item in items]
            rebuilt, __ = reassociate_chain(items, gaps, self.model)
            return rebuilt
        assert isinstance(pattern, BinaryPattern)
        return pattern.with_children(
            self._reassociate(pattern.left), self._reassociate(pattern.right)
        )

    def _distribute_if_cheaper(self, pattern: Pattern) -> Pattern | None:
        """Apply Theorem 5 left-to-right wherever the estimate improves.

        Distribution duplicates the non-choice operand, which usually
        costs more — but when one choice branch has (near-)zero estimated
        cardinality on this log, the distributed form lets that branch be
        evaluated (and found empty) in isolation.
        """
        improved = False

        def rec(node: Pattern) -> Pattern:
            nonlocal improved
            if isinstance(node, Atomic):
                return node
            assert isinstance(node, BinaryPattern)
            node = node.with_children(rec(node.left), rec(node.right))
            candidate = push_choice_out(node)
            if candidate is not None and self.model.plan_cost(
                candidate
            ) < self.model.plan_cost(node):
                improved = True
                return candidate
            return node

        result = rec(pattern)
        return result if improved else None

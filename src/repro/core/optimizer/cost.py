"""Cardinality estimation and operator cost model.

Lemma 1 gives exact worst-case bounds (every operator can produce
``n1·n2`` incidents, at pairwise cost).  For *planning* we need expected
sizes, which we estimate from per-log statistics under independence
assumptions standard in relational optimizers:

* atoms — exact counts from the activity histogram;
* ``⊳`` — of the ``n1·n2`` same-instance pairs, about half satisfy the
  ordering constraint;
* ``⊙`` — a pair additionally needs exact adjacency: about ``1/m_w`` of
  ordered pairs, with ``m_w`` the mean instance length;
* ``⊗`` — sizes add;
* ``⊕`` — same-instance pairs are usually disjoint when patterns differ,
  so ``n1·n2 / W`` (all same-instance pairs) is used, with ``W`` the
  instance count.

The estimates are heuristics — cross-instance pairing is modelled by
dividing pair counts by ``W`` throughout (incidents never span instances).
The benchmark ``benchmarks/bench_optimizer.py`` measures how well plans
ranked by this model track measured runtimes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.model import Log
from repro.core.pattern import (
    Atomic,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["LogStatistics", "CostModel", "DispatchCostModel"]


@dataclass(frozen=True)
class LogStatistics:
    """Summary statistics of a log, sufficient for cardinality estimation.

    Attributes
    ----------
    total_records:
        ``m`` — the number of log records.
    instance_count:
        ``W`` — the number of workflow instances.
    activity_counts:
        Histogram of activity names over the whole log.
    """

    total_records: int
    instance_count: int
    activity_counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_log(cls, log: Log) -> "LogStatistics":
        """Collect statistics in one pass over ``log``."""
        counts: Counter = Counter()
        for record in log:
            counts[record.activity] += 1
        return cls(
            total_records=len(log),
            instance_count=len(log.wids),
            activity_counts=counts,
        )

    @property
    def mean_instance_length(self) -> float:
        """Average number of records per workflow instance."""
        if self.instance_count == 0:
            return 0.0
        return self.total_records / self.instance_count

    def count(self, activity: str) -> int:
        """Number of records with the given activity name."""
        return self.activity_counts.get(activity, 0)


class CostModel:
    """Estimates incident-set cardinalities and evaluation costs.

    Parameters
    ----------
    stats:
        Statistics of the target log.
    sequential_selectivity:
        Fraction of same-instance pairs assumed to satisfy the ``⊳``
        ordering constraint (default 0.5).
    """

    def __init__(
        self,
        stats: LogStatistics,
        *,
        sequential_selectivity: float = 0.5,
        guard_selectivity: float = 0.33,
    ):
        if not 0.0 < sequential_selectivity <= 1.0:
            raise ValueError("sequential_selectivity must be in (0, 1]")
        if not 0.0 < guard_selectivity <= 1.0:
            raise ValueError("guard_selectivity must be in (0, 1]")
        self.stats = stats
        self.sequential_selectivity = sequential_selectivity
        self.guard_selectivity = guard_selectivity

    # -- cardinality -------------------------------------------------------

    def cardinality(self, pattern: Pattern) -> float:
        """Estimated ``|incL(pattern)|`` on the model's log."""
        if isinstance(pattern, Atomic):
            if pattern.negated:
                base = float(self.stats.total_records - self.stats.count(pattern.name))
            else:
                base = float(self.stats.count(pattern.name))
            if type(pattern) is not Atomic:
                # leaf subclasses carry extra filters (attribute guards);
                # apply a default selectivity in lieu of value histograms
                base *= self.guard_selectivity
            return base
        n1 = self.cardinality(pattern.left)
        n2 = self.cardinality(pattern.right)
        return self.join_cardinality(pattern, n1, n2)

    def join_cardinality(self, operator, n1: float, n2: float) -> float:
        """Estimated output size of one operator over inputs of the given
        estimated sizes.  ``operator`` may be an operator class or a
        pattern node (the node form lets windowed operators contribute
        their bound to the selectivity)."""
        cls = operator if isinstance(operator, type) else type(operator)
        same_instance_pairs = self._same_instance_pairs(n1, n2)
        m_w = max(self.stats.mean_instance_length, 1.0)
        if issubclass(cls, Consecutive):
            return same_instance_pairs / m_w
        if issubclass(cls, Sequential):
            bound = getattr(operator, "bound", None)
            if bound is not None:
                # a window of k positions admits about k/m_w of the pairs
                # an unbounded ⊳ would
                return same_instance_pairs * min(
                    self.sequential_selectivity, bound / m_w
                )
            return same_instance_pairs * self.sequential_selectivity
        if issubclass(cls, Choice):
            return n1 + n2
        if issubclass(cls, Parallel):
            return same_instance_pairs
        raise TypeError(f"unknown operator {operator!r}")

    def _same_instance_pairs(self, n1: float, n2: float) -> float:
        """Expected number of (o1, o2) pairs sharing a workflow instance,
        assuming incidents spread uniformly over instances."""
        w = max(self.stats.instance_count, 1)
        return (n1 / w) * (n2 / w) * w

    # -- cost ---------------------------------------------------------------

    def join_cost(self, operator, n1: float, n2: float) -> float:
        """Estimated work of evaluating one operator node (Lemma 1 shapes):
        pairwise for ⊙/⊳/⊕, additive for ⊗."""
        cls = operator if isinstance(operator, type) else type(operator)
        if issubclass(cls, Choice):
            return n1 + n2
        return n1 * n2

    def pairs_estimate(self, pattern: Pattern) -> float:
        """Predicted pairs examined at the *root* node of ``pattern``
        (0 for leaves): the Lemma 1 join cost under estimated input
        cardinalities.

        This is the number ``repro-logs profile`` reconciles against the
        measured per-node ``pairs`` metric — the cost model's testable
        prediction for one operator evaluation.
        """
        if isinstance(pattern, Atomic):
            return 0.0
        return self.join_cost(
            pattern,
            self.cardinality(pattern.left),
            self.cardinality(pattern.right),
        )

    def plan_cost(self, pattern: Pattern) -> float:
        """Total estimated evaluation cost: the sum over all operator nodes
        of the node's join cost under estimated input cardinalities (leaf
        lookup cost is the leaf cardinality — the index makes it
        output-proportional)."""
        if isinstance(pattern, Atomic):
            return self.cardinality(pattern)
        cost_left = self.plan_cost(pattern.left)
        cost_right = self.plan_cost(pattern.right)
        n1 = self.cardinality(pattern.left)
        n2 = self.cardinality(pattern.right)
        return cost_left + cost_right + self.join_cost(pattern, n1, n2)


@dataclass(frozen=True)
class DispatchCostModel:
    """Overhead model for the parallel execution backends.

    :mod:`repro.exec` fans wid-disjoint shards out over an execution
    backend; whether that pays off depends on how the (estimated) join
    work compares with the fixed cost of standing the backend up.  All
    constants are in the same unit as :meth:`CostModel.plan_cost` — one
    "pair examined" — calibrated roughly as ~0.5µs of pure-Python work
    per pair, so e.g. ``process_worker_cost = 60_000`` models the ~30ms
    a pool worker costs to fork and warm up.

    Attributes
    ----------
    process_worker_cost:
        Fixed cost per process-pool worker (fork + pool bookkeeping).
    process_record_cost:
        Per-record cost of shipping a shard to a worker and its results
        back (pickling both ways).
    thread_worker_cost:
        Fixed cost per thread-pool worker.  Threads never beat serial on
        this pure-Python CPU-bound workload (the GIL serialises the
        joins), so their parallel fraction is modelled as 1.
    min_parallel_cost:
        Plans estimated cheaper than this never leave the calling
        process, whatever the requested backend count.
    sqlite_load_cost:
        Per-record cost of bulk-loading the columnar arrays into the
        in-memory SQLite warehouse (``backend="sqlite"``), paid once per
        log thanks to the per-columnar warehouse cache.
    sqlite_row_cost:
        Per-pair cost multiplier of evaluating the compiled SQL relative
        to one pure-Python pair: SQLite's C join loop examines a pair far
        cheaper than the interpreter does.
    """

    process_worker_cost: float = 60_000.0
    process_record_cost: float = 4.0
    thread_worker_cost: float = 2_000.0
    min_parallel_cost: float = 250_000.0
    sqlite_load_cost: float = 6.0
    sqlite_row_cost: float = 0.1

    def overhead(self, backend: str, jobs: int, records: int) -> float:
        """Fixed dispatch cost of running ``jobs`` workers over a log of
        ``records`` records on the named backend."""
        if backend == "process":
            return self.process_worker_cost * jobs + self.process_record_cost * records
        if backend == "thread":
            return self.thread_worker_cost * jobs
        if backend == "sqlite":
            return self.sqlite_load_cost * records
        return 0.0

    def effective_workers(self, backend: str, jobs: int) -> int:
        """How many workers actually run joins concurrently: processes
        sidestep the GIL, threads and serial do not."""
        return max(1, jobs) if backend == "process" else 1

    def wall_cost(
        self, backend: str, jobs: int, records: int, plan_cost: float
    ) -> float:
        """Estimated wall-clock cost of one evaluation: dispatch overhead
        plus the plan cost divided by the truly concurrent workers (for
        ``"sqlite"``, the plan cost scaled by the in-database pair cost)."""
        if backend == "sqlite":
            return self.overhead(backend, jobs, records) + plan_cost * self.sqlite_row_cost
        return self.overhead(backend, jobs, records) + plan_cost / self.effective_workers(
            backend, jobs
        )

    def choose_backend(self, jobs: int, records: int, plan_cost: float) -> str:
        """The backend with the least estimated wall cost for this plan:
        ``"serial"`` when the plan is too small to amortise a pool,
        ``"process"`` otherwise.

        ``"sqlite"`` is deliberately not an auto-dispatch candidate: the
        pushdown schema cannot evaluate attribute-guarded leaves, so it
        only runs when requested explicitly (``backend="sqlite"``)."""
        if plan_cost < self.min_parallel_cost or jobs <= 1:
            return "serial"
        candidates = ("serial", "process")
        return min(
            candidates,
            key=lambda backend: self.wall_cost(backend, jobs, records, plan_cost),
        )

"""Algebraic laws of the pattern operators (Section 4 of the paper).

Implements the equivalences proven in Theorems 2-5 as executable rewrite
steps, a canonicalisation procedure built from them, and two equivalence
checkers:

* :func:`provably_equivalent` — sound but incomplete: patterns are
  equivalent if their canonical forms (modulo Theorems 2-5) coincide;
* :func:`randomized_equivalent` — Definition 5 tested on a battery of
  random logs; sound refutations, probabilistic confirmations.  Used by the
  property-based test-suite and by the optimizer's self-checks.

The laws, for all patterns ``p1, p2, p3`` and operators
``θ ∈ {⊙, ⊳, ⊗, ⊕}``:

* **Theorem 2** (associativity): ``(p1 θ p2) θ p3 ≡ p1 θ (p2 θ p3)``.
* **Theorem 3** (commutativity): ``p1 ⊗ p2 ≡ p2 ⊗ p1`` and
  ``p1 ⊕ p2 ≡ p2 ⊕ p1`` (⊙ and ⊳ are *not* commutative).
* **Theorem 4** (⊙/⊳ interchange): ``p1 ⊙ (p2 ⊳ p3) ≡ (p1 ⊙ p2) ⊳ p3`` and
  ``p1 ⊳ (p2 ⊙ p3) ≡ (p1 ⊳ p2) ⊙ p3``.
* **Theorem 5** (distributivity over choice):
  ``p1 θ (p2 ⊗ p3) ≡ (p1 θ p2) ⊗ (p1 θ p3)`` and symmetrically on the right.

.. note::
   The useful reading of Theorems 2+4 is the *gap model*: a maximal ⊙/⊳
   chain denotes a sequence of items with one constraint per gap between
   adjacent items (exactly-adjacent for ⊙, strictly-precedes for ⊳), and
   any parenthesisation that keeps each operator attached to its gap is
   equivalent.  (The last sentence of the paper's Theorem 4 proof writes
   ``p1 ⊳ (p2 ⊙ p3)`` where ``(p1 ⊙ p2) ⊳ p3`` is meant — a typo; the
   theorem statement itself matches the gap model.)  See
   :func:`flatten_chain` / :func:`build_chain`.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.core.incident import reference_incidents
from repro.core.model import Log
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Choice,
    Consecutive,
    Pattern,
    Sequential,
)

__all__ = [
    "flatten_chain",
    "build_chain",
    "flatten_assoc",
    "build_left_deep",
    "canonicalize",
    "choice_normal_form",
    "provably_equivalent",
    "randomized_equivalent",
    "random_logs",
]


# ---------------------------------------------------------------------------
# Chain views (Theorems 2 and 4)
# ---------------------------------------------------------------------------

def flatten_chain(
    pattern: Pattern,
) -> tuple[list[Pattern], list[BinaryPattern]]:
    """Flatten a maximal ⊙/⊳ chain into ``(items, gap_operators)``.

    A pattern like ``(a ⊙ b) ⊳ (c ⊙ d)`` flattens to items ``[a, b, c, d]``
    with gaps ``[⊙, ⊳, ⊙]``: each gap operator constrains the boundary
    between two adjacent items, independent of parenthesisation (this is
    the content of Theorems 2 and 4).  Sub-patterns whose top operator is
    ⊗ or ⊕ are treated as chain items.

    Gaps are returned as the original operator *nodes* (templates): use
    ``gap.with_children(l, r)`` to rebuild, so operator subclasses with
    extra fields (windowed ⊳) keep them.
    """
    items: list[Pattern] = []
    gaps: list[BinaryPattern] = []

    def walk(node: Pattern) -> None:
        if isinstance(node, (Consecutive, Sequential)):
            # in-order traversal: the operator constrains exactly the gap
            # between the last item of its left subtree and the first item
            # of its right subtree, so appending between the two walks
            # keeps gaps[i] aligned with the boundary items[i] / items[i+1]
            walk(node.left)
            gaps.append(node)
            walk(node.right)
        else:
            items.append(node)

    walk(pattern)
    assert len(gaps) == max(0, len(items) - 1)
    return items, gaps


def build_chain(
    items: Sequence[Pattern],
    gaps: Sequence[BinaryPattern],
    *,
    association: Sequence[tuple[int, int]] | None = None,
) -> Pattern:
    """Rebuild a ⊙/⊳ chain from items and gap operators.

    Without ``association`` the chain is built left-deep.  With it, each
    ``(i, j)`` pair denotes combining the current items at positions ``i``
    and ``j = i+1`` (positions shift as items merge) — used by the
    optimizer to realise an arbitrary parenthesisation chosen by its DP.
    """
    if len(items) != len(gaps) + 1:
        raise ValueError("need exactly one gap operator between adjacent items")
    work = list(items)
    ops = list(gaps)
    if association is None:
        association = [(0, 1)] * len(gaps)
    for i, j in association:
        if j != i + 1:
            raise ValueError("chain merges must combine adjacent items")
        gap = ops.pop(i)
        work[i] = gap.with_children(work[i], work[j])
        del work[j]
    if len(work) != 1:
        raise ValueError("association did not reduce the chain to one pattern")
    return work[0]


def flatten_assoc(pattern: Pattern, cls: type) -> list[Pattern]:
    """Flatten nested applications of one associative operator ``cls``
    (Theorem 2) into the list of its operands, left to right."""
    if isinstance(pattern, cls):
        return flatten_assoc(pattern.left, cls) + flatten_assoc(pattern.right, cls)
    return [pattern]


def build_left_deep(cls: type, operands: Sequence[Pattern]) -> Pattern:
    """Left-deep tree of ``cls`` over ``operands``."""
    if not operands:
        raise ValueError("need at least one operand")
    result = operands[0]
    for operand in operands[1:]:
        result = cls(result, operand)
    return result


# ---------------------------------------------------------------------------
# Canonicalisation
# ---------------------------------------------------------------------------

def _sort_key(pattern: Pattern) -> str:
    """A deterministic total order on patterns (by rendered text)."""
    return repr(_canonical(pattern))


def _canonical(pattern: Pattern) -> Pattern:
    if isinstance(pattern, Atomic):
        return pattern
    assert isinstance(pattern, BinaryPattern)

    if isinstance(pattern, (Consecutive, Sequential)):
        # Normalise the whole mixed chain left-deep with canonical items.
        items, gaps = flatten_chain(pattern)
        items = [_canonical(item) for item in items]
        work = items[0]
        for gap, item in zip(gaps, items[1:]):
            work = gap.with_children(work, item)
        return work

    operands = [_canonical(p) for p in flatten_assoc(pattern, type(pattern))]
    # ⊗ and ⊕ are commutative (Theorem 3): sort operands; ⊗ is additionally
    # idempotent only set-wise per duplicate elimination in evaluation, but
    # p ⊗ p ≡ p holds (incL(p) ∪ incL(p) = incL(p)), so dedup choice
    # operands.
    operands.sort(key=_sort_key)
    if isinstance(pattern, Choice):
        deduped: list[Pattern] = []
        for operand in operands:
            if not deduped or deduped[-1] != operand:
                deduped.append(operand)
        operands = deduped
    return build_left_deep(type(pattern), operands)


def canonicalize(pattern: Pattern) -> Pattern:
    """A canonical representative of ``pattern``'s equivalence class under
    Theorems 2-4 plus choice idempotence.

    Properties: ``canonicalize(p) ≡ p`` (each step is one of the proven
    laws), and two patterns related by associativity/commutativity/⊙⊳-
    interchange map to the same output.  Distributivity (Theorem 5) is
    *not* applied — it changes pattern size and is a cost-based decision
    left to the optimizer.
    """
    return _canonical(pattern)


def choice_normal_form(pattern: Pattern) -> list[Pattern]:
    """Rewrite ``pattern`` into an equivalent list of choice-free branches.

    Licensed by Theorem 5 (every operator distributes over ⊗ in both
    directions) plus the semantics of ⊗ itself: ``incL(p)`` equals the
    union of the branches' incident sets.  The branch count is the product
    of the choice widths — exponential in the number of ⊗ operators —
    so this is a tool for baselines and analysis, not an evaluation
    strategy.  Duplicate branches (modulo Theorems 2-4) are removed.

    >>> from repro.core.parser import parse
    >>> [str(b) for b in choice_normal_form(parse("(A | B) ; C"))]
    ['A ; C', 'B ; C']
    """
    branches = list(_choice_branches(pattern))
    seen: set[Pattern] = set()
    unique: list[Pattern] = []
    for branch in branches:
        key = canonicalize(branch)
        if key not in seen:
            seen.add(key)
            unique.append(branch)
    return unique


def _choice_branches(pattern: Pattern):
    if isinstance(pattern, Atomic):
        yield pattern
        return
    if isinstance(pattern, Choice):
        yield from _choice_branches(pattern.left)
        yield from _choice_branches(pattern.right)
        return
    assert isinstance(pattern, BinaryPattern)
    for left in _choice_branches(pattern.left):
        for right in _choice_branches(pattern.right):
            yield pattern.with_children(left, right)


def provably_equivalent(p1: Pattern, p2: Pattern) -> bool:
    """Sound, incomplete equivalence: equal canonical forms."""
    return canonicalize(p1) == canonicalize(p2)


# ---------------------------------------------------------------------------
# Randomized testing of Definition 5
# ---------------------------------------------------------------------------

def random_logs(
    alphabet: Iterable[str],
    *,
    cases: int = 20,
    max_instances: int = 3,
    max_events: int = 8,
    seed: int = 0,
) -> list[Log]:
    """A battery of small random logs over ``alphabet`` for equivalence
    testing.  Deterministic for a given seed."""
    rng = random.Random(seed)
    alphabet = list(alphabet)
    logs = []
    for __ in range(cases):
        traces = {}
        for wid in range(1, rng.randint(1, max_instances) + 1):
            length = rng.randint(1, max_events)
            traces[wid] = [rng.choice(alphabet) for _ in range(length)]
        logs.append(
            Log.from_traces(traces, interleave=rng.random() < 0.5)
        )
    return logs


def randomized_equivalent(
    p1: Pattern,
    p2: Pattern,
    *,
    logs: Sequence[Log] | None = None,
    seed: int = 0,
) -> bool:
    """Test Definition 5 on a battery of random logs.

    Returns False on the first log where the incident sets differ (a sound
    refutation); True if all logs agree (equivalence is then likely but not
    certain).  The battery always draws the logs' alphabet from the
    activity names of both patterns plus one fresh name, so negated atoms
    are exercised against unmentioned activities too.
    """
    if logs is None:
        alphabet = sorted(p1.activity_names() | p2.activity_names()) or ["A"]
        alphabet.append("__fresh__")
        logs = random_logs(alphabet, seed=seed)
    for log in logs:
        if reference_incidents(log, p1) != reference_incidents(log, p2):
            return False
    return True

"""Incident-pattern algebra (Definition 3 of the paper).

An *incident pattern* is one of

* an **atomic** pattern ``t`` (positive) or ``¬t`` (negative) over an
  activity name ``t``;
* a **consecutive** pattern ``p1 ⊙ p2`` — p1 and p2 executed back to back;
* a **sequential** pattern ``p1 ⊳ p2`` — p1 executed strictly before p2;
* a **choice** pattern ``p1 ⊗ p2`` — one of p1 or p2 executed;
* a **parallel** pattern ``p1 ⊕ p2`` — both executed, sharing no records.

Patterns are immutable, hashable AST nodes.  A small Python DSL is provided
via operator overloading::

    from repro import act
    p = act("SeeDoctor") >> (act("UpdateRefer") >> act("GetReimburse"))
    q = act("A") * act("B")          # consecutive
    r = act("A") | act("B")          # choice
    s = act("A") & act("B")          # parallel
    n = ~act("A")                    # negated atom

The textual surface syntax lives in :mod:`repro.core.parser`; this module
also provides :func:`to_text`, which renders a pattern back into that
syntax (``parse(to_text(p)) == p``).
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Pattern",
    "Atomic",
    "Consecutive",
    "Sequential",
    "Choice",
    "Parallel",
    "BinaryPattern",
    "act",
    "neg",
    "consecutive",
    "sequential",
    "choice",
    "parallel",
    "to_text",
]


class Pattern:
    """Base class of all incident-pattern AST nodes.

    Provides the operator DSL, structural introspection (size, depth,
    activity multiset), and traversal helpers shared by all node types.
    """

    __slots__ = ()

    # -- DSL ------------------------------------------------------------

    def __mul__(self, other: "Pattern") -> "Consecutive":
        """``a * b`` builds the consecutive pattern ``a ⊙ b``."""
        return Consecutive(self, _as_pattern(other))

    def __rshift__(self, other: "Pattern") -> "Sequential":
        """``a >> b`` builds the sequential pattern ``a ⊳ b``."""
        return Sequential(self, _as_pattern(other))

    def __or__(self, other: "Pattern") -> "Choice":
        """``a | b`` builds the choice pattern ``a ⊗ b``."""
        return Choice(self, _as_pattern(other))

    def __and__(self, other: "Pattern") -> "Parallel":
        """``a & b`` builds the parallel pattern ``a ⊕ b``."""
        return Parallel(self, _as_pattern(other))

    # -- structural introspection ----------------------------------------

    def walk(self) -> Iterator["Pattern"]:
        """Yield this node and all descendants, pre-order."""
        stack: list[Pattern] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, BinaryPattern):
                stack.append(node.right)
                stack.append(node.left)

    def atoms(self) -> Iterator["Atomic"]:
        """Yield every atomic leaf, left to right."""
        for node in _in_order(self):
            if isinstance(node, Atomic):
                yield node

    @property
    def size(self) -> int:
        """Number of atomic leaves (``k_i`` in Lemma 1's cost analysis)."""
        return sum(1 for _ in self.atoms())

    @property
    def operator_count(self) -> int:
        """Number of binary operators (``k`` in Theorem 1)."""
        return sum(1 for node in self.walk() if isinstance(node, BinaryPattern))

    @property
    def depth(self) -> int:
        """Height of the pattern tree (an atom has depth 1)."""
        if isinstance(self, Atomic):
            return 1
        assert isinstance(self, BinaryPattern)
        return 1 + max(self.left.depth, self.right.depth)

    def activity_multiset(self) -> Counter:
        """Multiset of activity names in the pattern.

        Section 3.1 of the paper uses multiset equality to decide whether a
        choice operator needs duplicate elimination.  Negated atoms are
        counted under a distinct ``("¬", name)`` key so that ``A`` and
        ``¬A`` do not collide.
        """
        counts: Counter = Counter()
        for atom in self.atoms():
            key = ("¬", atom.name) if atom.negated else atom.name
            counts[key] += 1
        return counts

    def activity_names(self) -> frozenset[str]:
        """Set of activity names mentioned (ignoring negation)."""
        return frozenset(atom.name for atom in self.atoms())

    def __str__(self) -> str:
        return to_text(self)


def _as_pattern(value: Union["Pattern", str]) -> "Pattern":
    """Coerce strings into positive atoms so the DSL accepts bare names."""
    if isinstance(value, Pattern):
        return value
    if isinstance(value, str):
        return Atomic(value)
    raise TypeError(f"cannot use {value!r} as an incident pattern")


def _in_order(root: Pattern) -> Iterator[Pattern]:
    """In-order traversal (left subtree, node, right subtree)."""
    if isinstance(root, Atomic):
        yield root
        return
    assert isinstance(root, BinaryPattern)
    yield from _in_order(root.left)
    yield root
    yield from _in_order(root.right)


@dataclass(frozen=True, slots=True)
class Atomic(Pattern):
    """An atomic activity pattern ``t`` or ``¬t`` (Definition 3).

    A positive atom matches any single log record whose activity name is
    ``name``; a negative atom matches any single record whose activity name
    is *not* ``name`` (sentinel ``START``/``END`` records included, per
    Definition 4).
    """

    name: str
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("activity name must be nonempty")

    def __invert__(self) -> "Atomic":
        """``~a`` flips the polarity of an atomic pattern."""
        return Atomic(self.name, not self.negated)

    def matches(self, record) -> bool:
        """Whether one log record satisfies this leaf (Definition 4:
        activity name equal to ``name``, or different when negated).

        Engines dispatch leaf matching through this method so that leaf
        subclasses (e.g. the attribute-guarded atoms of
        :mod:`repro.extensions.conditions`) plug in transparently.
        """
        return (record.activity == self.name) != self.negated

    def to_query_text(self) -> str:
        """Render this leaf in the textual query syntax (:func:`to_text`
        delegates here so leaf subclasses can render their extras)."""
        name = self.name
        if not name.isidentifier():
            name = f'"{name}"'
        return f"!{name}" if self.negated else name

    def __repr__(self) -> str:
        return f"Atomic({'¬' if self.negated else ''}{self.name})"


@dataclass(frozen=True, slots=True)
class BinaryPattern(Pattern):
    """Common base of the four binary composite patterns."""

    left: Pattern
    right: Pattern

    #: Operator glyph used by the paper; overridden per subclass.
    symbol = "?"
    #: ASCII token used by the textual query syntax.
    token = "?"

    def __post_init__(self) -> None:
        if not isinstance(self.left, Pattern) or not isinstance(self.right, Pattern):
            raise TypeError("operands of a composite pattern must be Patterns")

    def with_children(self, left: Pattern, right: Pattern) -> "BinaryPattern":
        """A copy of this node with replaced operands.

        Uses :func:`dataclasses.replace`, so subclass fields (e.g. the
        ``bound`` of a windowed sequential operator) are preserved."""
        return dataclasses.replace(self, left=left, right=right)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Consecutive(BinaryPattern):
    """``p1 ⊙ p2`` — the last record of a p1-incident is immediately
    followed (by instance-specific sequence number) by the first record of a
    p2-incident in the same instance."""

    symbol = "⊙"
    token = ";"

    def gap_ok(self, last1: int, first2: int) -> bool:
        """The ⊙ gap constraint: exact adjacency (Definition 4)."""
        return last1 + 1 == first2


@dataclass(frozen=True, slots=True, repr=False)
class Sequential(BinaryPattern):
    """``p1 ⊳ p2`` — a p1-incident completes strictly before a p2-incident
    begins, in the same instance (gaps allowed)."""

    symbol = "⊳"
    token = "->"

    def gap_ok(self, last1: int, first2: int) -> bool:
        """The ⊳ gap constraint: strict precedence (Definition 4).

        Subclasses refine this (e.g. windowed sequential operators)."""
        return last1 < first2


@dataclass(frozen=True, slots=True, repr=False)
class Choice(BinaryPattern):
    """``p1 ⊗ p2`` — an incident of either operand."""

    symbol = "⊗"
    token = "|"


@dataclass(frozen=True, slots=True, repr=False)
class Parallel(BinaryPattern):
    """``p1 ⊕ p2`` — disjoint incidents of both operands in the same
    instance, interleaved arbitrarily (a shuffle)."""

    symbol = "⊕"
    token = "&"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def act(name: str) -> Atomic:
    """A positive atomic pattern matching activity ``name``."""
    return Atomic(name)


def neg(name: str) -> Atomic:
    """A negative atomic pattern ``¬name``."""
    return Atomic(name, negated=True)


def _fold(cls: type, patterns: tuple) -> Pattern:
    items = [_as_pattern(p) for p in patterns]
    if not items:
        raise ValueError("need at least one pattern")
    result = items[0]
    for item in items[1:]:
        result = cls(result, item)
    return result


def consecutive(*patterns: Pattern | str) -> Pattern:
    """Left-fold patterns with the consecutive operator ``⊙``."""
    return _fold(Consecutive, patterns)


def sequential(*patterns: Pattern | str) -> Pattern:
    """Left-fold patterns with the sequential operator ``⊳``."""
    return _fold(Sequential, patterns)


def choice(*patterns: Pattern | str) -> Pattern:
    """Left-fold patterns with the choice operator ``⊗``."""
    return _fold(Choice, patterns)


def parallel(*patterns: Pattern | str) -> Pattern:
    """Left-fold patterns with the parallel operator ``⊕``."""
    return _fold(Parallel, patterns)


# ---------------------------------------------------------------------------
# Rendering back to the textual syntax
# ---------------------------------------------------------------------------

#: Binding strength per operator: higher binds tighter.  ``⊙`` and ``⊳``
#: share a level (Theorem 4); ``⊕`` binds tighter than ``⊗``.
_PRECEDENCE = {Consecutive: 3, Sequential: 3, Parallel: 2, Choice: 1}


def precedence(pattern: Pattern) -> int:
    """Binding strength of the top-level operator (atoms bind tightest).

    Subclasses of an operator (windowed sequential, guarded atoms, ...)
    inherit its precedence via the MRO walk."""
    for cls in type(pattern).__mro__:
        if cls in _PRECEDENCE:
            return _PRECEDENCE[cls]
    return 4


def to_text(pattern: Pattern) -> str:
    """Render ``pattern`` in the textual query syntax.

    The output parses back to an equal AST: parentheses are inserted
    exactly where the default precedence and left-associativity would
    otherwise regroup the expression.
    """
    if isinstance(pattern, Atomic):
        return pattern.to_query_text()
    assert isinstance(pattern, BinaryPattern)
    here = precedence(pattern)
    left = to_text(pattern.left)
    right = to_text(pattern.right)
    # Left child needs parens when it binds looser than this operator.
    if precedence(pattern.left) < here:
        left = f"({left})"
    # Right child needs parens when it binds looser, or equally tight (the
    # grammar is left-associative, so an equal-precedence right child was
    # explicitly grouped).
    if precedence(pattern.right) <= here:
        right = f"({right})"
    return f"{left} {pattern.token} {right}"


# ---------------------------------------------------------------------------
# Random pattern generation (used by tests and benchmarks)
# ---------------------------------------------------------------------------

def random_pattern(rng, alphabet, max_depth: int = 4, allow_negation: bool = True) -> Pattern:
    """Draw a random pattern over ``alphabet`` using RNG ``rng``.

    Used by the property-based tests and the benchmark workload generators;
    depth decreases geometrically so expressions stay small.
    """
    alphabet = list(alphabet)
    if max_depth <= 1 or rng.random() < 0.4:
        name = rng.choice(alphabet)
        negated = allow_negation and rng.random() < 0.15
        return Atomic(name, negated)
    op = rng.choice([Consecutive, Sequential, Choice, Parallel])
    left = random_pattern(rng, alphabet, max_depth - 1, allow_negation)
    right = random_pattern(rng, alphabet, max_depth - 1, allow_negation)
    return op(left, right)


def enumerate_patterns(alphabet, max_operators: int) -> Iterator[Pattern]:
    """Yield every pattern over ``alphabet`` with at most ``max_operators``
    binary operators (positive atoms only).  Exponential — intended for
    exhaustive small-scope testing."""
    atoms: list[Pattern] = [Atomic(a) for a in alphabet]
    by_ops: list[list[Pattern]] = [list(atoms)]
    yield from by_ops[0]
    for k in range(1, max_operators + 1):
        level: list[Pattern] = []
        for left_ops in range(k):
            right_ops = k - 1 - left_ops
            for left, right in itertools.product(by_ops[left_ops], by_ops[right_ops]):
                for cls in (Consecutive, Sequential, Choice, Parallel):
                    level.append(cls(left, right))
        by_ops.append(level)
        yield from level

"""Unified read-access protocol over log representations.

The engines, the shard planner and the cache used to consume the
concrete :class:`~repro.core.model.Log` (a list of dataclass records)
directly, leaking the object-row layout into every layer.  This module
defines the representation-neutral surface they consume instead:

* :class:`LogView` — the structural protocol both the object-row
  :class:`~repro.core.model.Log` and the columnar
  :class:`~repro.columnar.ColumnarLog` satisfy.  Anything that only
  *reads* a log (engines, planners, statistics, caching identity)
  should accept a ``LogView``;
* :class:`RecordsView` — the immutable record sequence returned by
  ``records``.  It is a :class:`tuple` subclass, so existing callers
  that index/iterate/slice keep working, and it is *callable* (returning
  itself) so the protocol's ``records()`` method form works on both
  representations.  The historical list-mutation surface
  (``append``/``extend``/``__setitem__``/...) is shimmed to emit a
  :class:`DeprecationWarning` and raise, instead of the bare
  :class:`AttributeError` a tuple would give;
* :class:`ActivitySet` — the analogous callable :class:`frozenset` for
  ``activities``.

The protocol is deliberately small — ``records()``, ``wid_slice()``,
``activities()``, ``wids``, ``epoch`` plus the cache-provenance
attributes — so a new representation only has to answer "which records,
grouped how, from which store state".
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import LogRecord

__all__ = ["LogView", "RecordsView", "ActivitySet"]


def _deprecated_mutation(name: str) -> None:
    warnings.warn(
        f"Log.records is an immutable view; .{name}() mutation is deprecated "
        "and unsupported — build a new Log (or append through a LogStore) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )
    raise TypeError(f"RecordsView does not support {name}(); logs are immutable")


class RecordsView(tuple):
    """Immutable, callable record sequence (see module docs).

    ``view()`` returns the view itself, so ``log.records`` (legacy
    attribute style) and ``log.records()`` (the :class:`LogView`
    protocol's method style) both work on every implementation.
    """

    __slots__ = ()

    def __call__(self) -> "RecordsView":
        return self

    # -- deprecation shims for the historical list-mutation surface -----

    def append(self, *_args, **_kwargs):  # noqa: D102
        _deprecated_mutation("append")

    def extend(self, *_args, **_kwargs):  # noqa: D102
        _deprecated_mutation("extend")

    def insert(self, *_args, **_kwargs):  # noqa: D102
        _deprecated_mutation("insert")

    def remove(self, *_args, **_kwargs):  # noqa: D102
        _deprecated_mutation("remove")

    def pop(self, *_args, **_kwargs):  # noqa: D102
        _deprecated_mutation("pop")

    def clear(self, *_args, **_kwargs):  # noqa: D102
        _deprecated_mutation("clear")

    def sort(self, *_args, **_kwargs):  # noqa: D102
        _deprecated_mutation("sort")

    def __setitem__(self, *_args):
        _deprecated_mutation("__setitem__")

    def __delitem__(self, *_args):
        _deprecated_mutation("__delitem__")

    def __repr__(self) -> str:
        return f"RecordsView({len(self)} records)"


class ActivitySet(frozenset):
    """Immutable, callable activity-name set: ``log.activities`` and
    ``log.activities()`` both yield the set of names."""

    __slots__ = ()

    def __call__(self) -> "ActivitySet":
        return self


@runtime_checkable
class LogView(Protocol):
    """Read-only access protocol over one workflow log.

    Implemented by :class:`~repro.core.model.Log` (object rows) and
    :class:`~repro.columnar.ColumnarLog` (interned columns).  Engines
    and the shard planner consume this protocol only; they never reach
    into a concrete record list.

    ``records()`` and ``activities()`` are written as methods; both
    implementations expose them as properties whose values are callable
    (:class:`RecordsView` / :class:`ActivitySet`), so attribute and call
    style stay interchangeable during the migration.
    """

    # -- content ---------------------------------------------------------

    def records(self) -> Sequence["LogRecord"]:
        """All records in ascending ``lsn`` order."""
        ...

    def wid_slice(self, wid: int) -> Sequence["LogRecord"]:
        """The records of one workflow instance, in ``is_lsn`` order
        (empty when the instance is absent)."""
        ...

    def activities(self) -> frozenset[str]:
        """The set of activity names occurring in the log."""
        ...

    @property
    def wids(self) -> Sequence[int]:
        """All workflow instance ids, sorted ascending."""
        ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator["LogRecord"]: ...

    # -- provenance (cache identity, see repro.cache) --------------------

    @property
    def epoch(self) -> int:
        """Append epoch of the originating store at snapshot time."""
        ...

    @property
    def lineage(self) -> str | None:
        """Identity token of the originating store, or None."""
        ...

"""Incident membership checking and provenance.

Evaluation answers "what are the incidents of p?"; this module answers
the converse questions:

* :func:`is_incident` — is this *specific* set of records an incident of
  ``p`` (Definition 4 membership, without evaluating the whole log)?
* :func:`assignment` — if so, *why*: a mapping from each pattern leaf to
  the record it matched (a witness derivation).

Checking is a small constraint search over the pattern tree: a record
set belongs to ``incL(p)`` iff it can be split per Definition 4's
recursive cases.  Sets are tiny (pattern-sized), so the exponential
worst case of the search is irrelevant in practice.

Uses: verifying results imported from other tools, explaining matches to
analysts (the CLI's incident listing), and as an independent oracle in
the test-suite (completely different code path from the engines).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.incident import Incident
from repro.core.model import LogRecord
from repro.core.pattern import (
    Atomic,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["is_incident", "assignment", "Derivation"]

#: A witness: (leaf position in pre-order, leaf, matched record) triples.
Derivation = list[tuple[int, Atomic, LogRecord]]


def _splits(
    records: tuple[LogRecord, ...]
) -> Iterator[tuple[tuple[LogRecord, ...], tuple[LogRecord, ...]]]:
    """All two-part partitions of ``records`` into nonempty subsets.

    Records are position-sorted; subsets keep that order.  2^(n-1)-1
    candidate splits — fine for incident-sized sets.
    """
    n = len(records)
    for mask in range(1, 2**n - 1):
        left = tuple(records[i] for i in range(n) if mask & (1 << i))
        right = tuple(records[i] for i in range(n) if not mask & (1 << i))
        yield left, right


def _derive(
    pattern: Pattern,
    records: tuple[LogRecord, ...],
    leaf_offset: int,
) -> Iterator[Derivation]:
    """Yield witness derivations of ``records`` as an incident of
    ``pattern`` (possibly none)."""
    if isinstance(pattern, Atomic):
        if len(records) == 1 and pattern.matches(records[0]):
            yield [(leaf_offset, pattern, records[0])]
        return

    if isinstance(pattern, Choice):
        left_leaves = pattern.left.size
        yield from _derive(pattern.left, records, leaf_offset)
        yield from _derive(pattern.right, records, leaf_offset + left_leaves)
        return

    assert isinstance(pattern, (Consecutive, Sequential, Parallel))
    left_leaves = pattern.left.size
    for left, right in _splits(records):
        if isinstance(pattern, (Consecutive, Sequential)):
            last_left = max(r.is_lsn for r in left)
            first_right = min(r.is_lsn for r in right)
            if not pattern.gap_ok(last_left, first_right):
                continue
        # (⊕ needs only disjointness, which a partition guarantees)
        for left_derivation in _derive(pattern.left, left, leaf_offset):
            for right_derivation in _derive(
                pattern.right, right, leaf_offset + left_leaves
            ):
                yield left_derivation + right_derivation


def _as_records(
    records: Incident | Iterable[LogRecord],
) -> tuple[LogRecord, ...] | None:
    if isinstance(records, Incident):
        return records.records
    items = sorted(records, key=lambda r: r.is_lsn)
    if not items:
        return None
    wid = items[0].wid
    if any(r.wid != wid for r in items):
        return None
    if len({r.is_lsn for r in items}) != len(items):
        return None
    return tuple(items)


def is_incident(
    pattern: Pattern, records: Incident | Iterable[LogRecord]
) -> bool:
    """Definition 4 membership: is this record set an incident of
    ``pattern``?  (Record sets spanning instances are never incidents.)"""
    items = _as_records(records)
    if items is None:
        return False
    return next(_derive(pattern, items, 0), None) is not None


def assignment(
    pattern: Pattern, records: Incident | Iterable[LogRecord]
) -> Derivation | None:
    """A witness derivation, or None when the set is not an incident.

    The derivation lists ``(leaf_index, leaf, record)`` triples with
    ``leaf_index`` the leaf's left-to-right position in the pattern —
    e.g. for ``SeeDoctor -> (UpdateRefer -> GetReimburse)`` and the
    paper's incident ``{l13, l14, l20}``::

        [(0, SeeDoctor, l13), (1, UpdateRefer, l14), (2, GetReimburse, l20)]
    """
    items = _as_records(records)
    if items is None:
        return None
    derivation = next(_derive(pattern, items, 0), None)
    if derivation is None:
        return None
    return sorted(derivation, key=lambda triple: triple[0])

"""Incremental (streaming) pattern evaluation.

The paper's framework (Figure 2) has the workflow engine *continuously*
appending to the log while analysts query it, and its related-work section
criticises warehousing precisely because it cannot support "runtime
execution monitoring".  This module supplies that capability: an
:class:`IncrementalEvaluator` maintains the incident sets of a pattern's
whole incident tree while records arrive one at a time, reporting exactly
the *new* incidents each append creates.

Delta propagation follows the classic incremental-join identity.  For a
binary node ``p = p1 θ p2`` with current child incident sets ``I1, I2``
and per-append child deltas ``Δ1, Δ2``::

    Δ(p) = (Δ1 ⋈θ I2) ∪ (I1 ⋈θ Δ2) ∪ (Δ1 ⋈θ Δ2)

with the θ-specific join predicate of Definition 4 (gap constraint for
⊙/⊳, record-disjointness for ⊕; ⊗ is a deduplicated union of deltas).
A per-node seen-set keeps ``incL`` set-semantics exact.

Guarantees (differential-tested against batch evaluation):

* after appending records ``r1..rn`` the evaluator's accumulated state
  equals ``incL(p)`` of the batch log over those records;
* each append returns exactly the incidents added by that record, so a
  monitor can alert without re-scanning.

Example
-------
>>> from repro.core.parser import parse
>>> from repro.core.model import LogRecord
>>> ev = IncrementalEvaluator(parse("A -> B"))
>>> ev.append(LogRecord(lsn=1, wid=1, is_lsn=1, activity="START"))
[]
>>> ev.append(LogRecord(lsn=2, wid=1, is_lsn=2, activity="A"))
[]
>>> new = ev.append(LogRecord(lsn=3, wid=1, is_lsn=3, activity="B"))
>>> [sorted(o.lsns) for o in new]
[[2, 3]]
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.errors import BudgetExceededError, EvaluationError
from repro.core.eval.base import EvaluationStats, node_label
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log, LogRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.governor import ResourceGovernor

__all__ = ["IncrementalEvaluator"]


class _NodeState:
    """Per-(node, wid) incident store with set-semantics dedup."""

    __slots__ = ("incidents", "seen")

    def __init__(self) -> None:
        self.incidents: list[Incident] = []
        self.seen: set[Incident] = set()

    def add_new(self, candidates: Iterable[Incident]) -> list[Incident]:
        """Insert candidates not seen before; returns the true delta."""
        fresh: list[Incident] = []
        for incident in candidates:
            if incident not in self.seen:
                self.seen.add(incident)
                self.incidents.append(incident)
                fresh.append(incident)
        return fresh


class _Node:
    """One incident-tree node with its per-instance state."""

    __slots__ = ("pattern", "left", "right", "state")

    def __init__(self, pattern: Pattern):
        self.pattern = pattern
        self.left: _Node | None = None
        self.right: _Node | None = None
        if isinstance(pattern, BinaryPattern):
            self.left = _Node(pattern.left)
            self.right = _Node(pattern.right)
        self.state: dict[int, _NodeState] = {}

    def state_for(self, wid: int) -> _NodeState:
        node_state = self.state.get(wid)
        if node_state is None:
            node_state = self.state[wid] = _NodeState()
        return node_state


class IncrementalEvaluator:
    """Maintains ``incL(pattern)`` over an append-only record stream.

    Parameters
    ----------
    pattern:
        The incident pattern to monitor.
    log:
        Optional existing log to replay into the evaluator at construction.
    max_incidents:
        Optional cap on the total incidents held at the root (monitors of
        explosive patterns should always set one); exceeding it raises
        :class:`~repro.core.errors.BudgetExceededError`.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; appends accumulate
        into one span tree mirroring the incident tree, the same shape
        the batch engines trace.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` fed through
        the evaluator's :class:`EvaluationStats` adapter (``stats``).
    governor:
        Optional :class:`~repro.core.governor.ResourceGovernor` checked
        once per appended record — the stream's natural cooperative
        checkpoint.
    """

    def __init__(
        self,
        pattern: Pattern,
        log: Log | None = None,
        *,
        max_incidents: int | None = None,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        governor: "ResourceGovernor | None" = None,
    ):
        self.pattern = pattern
        self.max_incidents = max_incidents
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.governor = governor
        self.stats = EvaluationStats(registry=metrics)
        self._root = _Node(pattern)
        self._last_lsn = 0
        self._next_is_lsn: dict[int, int] = {}
        self._records_seen = 0
        if log is not None:
            self.extend(log)

    # -- feeding -------------------------------------------------------

    def append(self, record: LogRecord) -> list[Incident]:
        """Process one record; returns the incidents it completes.

        Records must arrive in ascending ``lsn`` order with per-instance
        consecutive ``is_lsn`` values (Definition 2's conditions 1 and 3,
        enforced online).
        """
        if record.lsn <= self._last_lsn:
            raise EvaluationError(
                f"records must arrive in ascending lsn order "
                f"(got {record.lsn} after {self._last_lsn})"
            )
        expected = self._next_is_lsn.get(record.wid, 1)
        if record.is_lsn != expected:
            raise EvaluationError(
                f"instance {record.wid}: expected is-lsn {expected}, "
                f"got {record.is_lsn}"
            )
        self._last_lsn = record.lsn
        self._next_is_lsn[record.wid] = expected + 1
        self._records_seen += 1

        if self.governor is not None:
            self.governor.check(self.stats)
        with self.tracer.span("evaluate", key=(), pattern=str(self.pattern)):
            delta = self._propagate(self._root, record, "root")
        if self.governor is not None:
            # re-check after propagation so one explosive append (a large
            # delta join) cannot outrun the budget until the next record
            self.governor.check(self.stats)
        if self.max_incidents is not None:
            total = sum(
                len(s.incidents) for s in self._root.state.values()
            )
            if total > self.max_incidents:
                raise BudgetExceededError(
                    f"incremental incident store exceeded "
                    f"{self.max_incidents}",
                    limit=self.max_incidents,
                )
        return delta

    def extend(self, records: Iterable[LogRecord]) -> list[Incident]:
        """Append many records; returns the concatenated deltas."""
        new: list[Incident] = []
        for record in records:
            new.extend(self.append(record))
        return new

    # -- reading ---------------------------------------------------------

    def incidents(self) -> IncidentSet:
        """The full incident set accumulated so far (= batch ``incL``)."""
        out: list[Incident] = []
        for node_state in self._root.state.values():
            out.extend(node_state.incidents)
        return IncidentSet(out)

    def incidents_for(self, wid: int) -> IncidentSet:
        """Accumulated incidents of one workflow instance."""
        node_state = self._root.state.get(wid)
        return IncidentSet(node_state.incidents if node_state else ())

    @property
    def records_seen(self) -> int:
        return self._records_seen

    def __repr__(self) -> str:
        return (
            f"IncrementalEvaluator({str(self.pattern)!r}, "
            f"{self._records_seen} records seen)"
        )

    # -- delta propagation -------------------------------------------------

    def _propagate(
        self, node: _Node, record: LogRecord, key: int | str
    ) -> list[Incident]:
        """Push one record through the subtree; returns the node's delta."""
        with self.tracer.span(node_label(node.pattern), key=key) as span:
            fresh = self._propagate_inner(node, record, span)
            span.add(incidents=len(fresh))
            self.stats.incidents_produced += len(fresh)
        return fresh

    def _propagate_inner(self, node: _Node, record: LogRecord, span) -> list[Incident]:
        wid = record.wid
        if isinstance(node.pattern, Atomic):
            if node.pattern.matches(record):
                return node.state_for(wid).add_new([Incident([record])])
            return []

        assert node.left is not None and node.right is not None
        # snapshot sizes BEFORE recursing so old1/old2 exclude the deltas
        left_state = node.left.state_for(wid)
        right_state = node.right.state_for(wid)
        n_left_before = len(left_state.incidents)
        n_right_before = len(right_state.incidents)

        delta_left = self._propagate(node.left, record, 0)
        delta_right = self._propagate(node.right, record, 1)
        if not delta_left and not delta_right:
            return []

        old_left = left_state.incidents[:n_left_before]
        old_right = right_state.incidents[:n_right_before]
        pattern = node.pattern
        stats = self.stats
        stats.note_operator(pattern.symbol)

        if isinstance(pattern, Choice):
            return node.state_for(wid).add_new(delta_left + delta_right)

        candidates: list[Incident] = []
        joins: Sequence[tuple[list[Incident], list[Incident]]] = (
            (delta_left, old_right),
            (old_left, delta_right),
            (delta_left, delta_right),
        )
        pairs = 0
        for side1, side2 in joins:
            for o1 in side1:
                for o2 in side2:
                    pairs += 1
                    if isinstance(pattern, (Consecutive, Sequential)):
                        if pattern.gap_ok(o1.last, o2.first):
                            candidates.append(o1.union(o2))
                    else:
                        assert isinstance(pattern, Parallel)
                        if o1.disjoint(o2):
                            candidates.append(o1.union(o2))
        stats.pairs_examined += pairs
        span.add(pairs=pairs)
        state = node.state_for(wid)
        added = state.add_new(candidates)
        stats.note_live(len(state.incidents))
        return added

"""Engine interface shared by all pattern-evaluation strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import BudgetExceededError
from repro.core.incident import IncidentSet
from repro.core.model import Log
from repro.core.pattern import Atomic, Pattern
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.governor import ResourceGovernor

__all__ = ["Engine", "EvaluationStats", "node_label"]

logger = get_logger("core.eval")


def node_label(pattern: Pattern) -> str:
    """Display label of one incident-tree node: the query text for leaves,
    the operator glyph (with window bound, if any) for internal nodes.

    All engines label their trace spans through this function, which is
    what makes trace trees comparable across engines.
    """
    if isinstance(pattern, Atomic):
        return pattern.to_query_text()
    bound = getattr(pattern, "bound", None)
    if bound is not None:
        return f"⊳[{bound}]"
    return pattern.symbol


@dataclass
class EvaluationStats:
    """Counters collected during one evaluation, for `explain` output and
    for the benchmark harness.

    Attributes
    ----------
    operator_evals:
        Number of binary-operator node evaluations performed.
    pairs_examined:
        Number of (o1, o2) incident pairs inspected across all operator
        evaluations — the paper's ``n1*n2`` cost driver (Lemma 1).
    incidents_produced:
        Total incidents materialised, including intermediates.
    max_live_incidents:
        Peak size of any single materialised incident set (the quantity
        an ``max_incidents`` budget actually guards, per Theorem 1).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` adapter: when
        set, the note methods mirror their counts into engine metrics, so
        existing ``EvaluationStats`` consumers keep working while metrics
        consumers see the same numbers.
    """

    operator_evals: int = 0
    pairs_examined: int = 0
    incidents_produced: int = 0
    max_live_incidents: int = 0
    per_operator: dict[str, int] = field(default_factory=dict)
    registry: MetricsRegistry | None = field(
        default=None, repr=False, compare=False
    )

    def note_operator(self, symbol: str) -> None:
        self.operator_evals += 1
        self.per_operator[symbol] = self.per_operator.get(symbol, 0) + 1
        if self.registry is not None:
            self.registry.counter("engine.operator_evals").inc()
            self.registry.counter(f"engine.operator_evals.{symbol}").inc()

    def note_live(self, size: int) -> None:
        """Record one materialised incident-set size (tracks the peak)."""
        if size > self.max_live_incidents:
            self.max_live_incidents = size

    def merge(self, other: "EvaluationStats") -> None:
        """Fold another evaluation's counters into this one.

        Counts add; ``max_live_incidents`` takes the maximum (each shard
        materialises its sets independently, so the peak is the largest
        per-shard peak).  Used by :mod:`repro.exec` to combine per-shard
        statistics into one whole-log ``EvaluationStats``.
        """
        self.operator_evals += other.operator_evals
        self.pairs_examined += other.pairs_examined
        self.incidents_produced += other.incidents_produced
        if other.max_live_incidents > self.max_live_incidents:
            self.max_live_incidents = other.max_live_incidents
        for symbol, count in other.per_operator.items():
            self.per_operator[symbol] = self.per_operator.get(symbol, 0) + count

    def publish(self) -> None:
        """Flush the whole-evaluation totals into the bound registry.

        Engines call this once per evaluation; per-pair counts are
        accumulated locally (plain int adds on the hot path) and exported
        in one shot here.
        """
        if self.registry is None:
            return
        registry = self.registry
        registry.counter("engine.evaluations").inc()
        registry.counter("engine.pairs_examined").inc(self.pairs_examined)
        registry.counter("engine.incidents_produced").inc(self.incidents_produced)
        registry.gauge("engine.max_live_incidents").set_max(self.max_live_incidents)


class Engine(ABC):
    """Evaluates incident patterns over logs.

    Parameters
    ----------
    max_incidents:
        Optional safety cap: if any intermediate or final incident set
        exceeds this size, :class:`~repro.core.errors.BudgetExceededError`
        is raised.  Incident sets can be exponential in pattern size
        (Theorem 1), so long-running services should always set a cap.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When supplied, each
        evaluation records a span tree mirroring the incident tree, with
        per-node operand cardinalities, pairs examined, incidents
        produced and elapsed time.  Defaults to the no-op
        :data:`~repro.obs.tracer.NULL_TRACER`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving the
        ``engine.*`` counter family.
    governor:
        Optional :class:`~repro.core.governor.ResourceGovernor` consulted
        at the engine's cooperative checkpoints (per workflow instance
        and per operator node).  Unlike ``max_incidents`` — which guards
        materialised set sizes — the governor bounds *work* (pairs
        examined, wall clock) and cooperative cancellation.  Queries set
        it per run; it may also be passed at construction.
    """

    name = "abstract"

    def __init__(
        self,
        *,
        max_incidents: int | None = None,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        governor: "ResourceGovernor | None" = None,
    ):
        self.max_incidents = max_incidents
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.governor = governor
        self.last_stats: EvaluationStats | None = None

    @property
    def last_trace(self) -> Span | None:
        """Root span of the most recent traced evaluation (None when the
        engine runs with the null tracer)."""
        return self.tracer.last_root

    def _new_stats(self) -> EvaluationStats:
        return EvaluationStats(registry=self.metrics)

    def _finish(self, stats: EvaluationStats) -> None:
        """Install ``stats`` as ``last_stats`` and flush it to metrics."""
        self.last_stats = stats
        stats.publish()
        if logger.isEnabledFor(10):  # logging.DEBUG
            logger.debug(
                "%s: %d operator eval(s), %d pairs, %d incidents, peak %d",
                self.name,
                stats.operator_evals,
                stats.pairs_examined,
                stats.incidents_produced,
                stats.max_live_incidents,
            )

    @abstractmethod
    def evaluate(self, log: Log, pattern: Pattern) -> IncidentSet:
        """Compute the full incident set ``incL(pattern)``."""

    def exists(self, log: Log, pattern: Pattern) -> bool:
        """Whether at least one incident of ``pattern`` occurs in ``log``.

        Subclasses may override with short-circuit strategies; the default
        materialises the full set.
        """
        return bool(self.evaluate(log, pattern))

    def count(self, log: Log, pattern: Pattern) -> int:
        """Number of incidents of ``pattern`` in ``log``."""
        return len(self.evaluate(log, pattern))

    def _checkpoint(self, stats: EvaluationStats) -> None:
        """One cooperative governor checkpoint.

        Engines call this per workflow instance and per operator node;
        when a governor is installed and a budget is blown, the typed
        :class:`~repro.core.errors.QueryGovernorError` propagates with a
        detached partial-stats snapshot.  ``stats`` is installed as
        ``last_stats`` first, so callers inspecting the engine after a
        kill still see what the evaluation had cost.
        """
        governor = self.governor
        if governor is not None:
            self.last_stats = stats
            governor.check(stats)

    def _check_budget(self, size: int) -> None:
        if self.max_incidents is not None and size > self.max_incidents:
            raise BudgetExceededError(
                f"incident set exceeded the cap of {self.max_incidents} "
                f"(reached {size}); raise max_incidents or refine the pattern",
                limit=self.max_incidents,
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_incidents={self.max_incidents})"

"""Engine interface shared by all pattern-evaluation strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.errors import BudgetExceededError
from repro.core.incident import IncidentSet
from repro.core.model import Log
from repro.core.pattern import Pattern

__all__ = ["Engine", "EvaluationStats"]


@dataclass
class EvaluationStats:
    """Counters collected during one evaluation, for `explain` output and
    for the benchmark harness.

    Attributes
    ----------
    operator_evals:
        Number of binary-operator node evaluations performed.
    pairs_examined:
        Number of (o1, o2) incident pairs inspected across all operator
        evaluations — the paper's ``n1*n2`` cost driver (Lemma 1).
    incidents_produced:
        Total incidents materialised, including intermediates.
    """

    operator_evals: int = 0
    pairs_examined: int = 0
    incidents_produced: int = 0
    per_operator: dict[str, int] = field(default_factory=dict)

    def note_operator(self, symbol: str) -> None:
        self.operator_evals += 1
        self.per_operator[symbol] = self.per_operator.get(symbol, 0) + 1


class Engine(ABC):
    """Evaluates incident patterns over logs.

    Parameters
    ----------
    max_incidents:
        Optional safety cap: if any intermediate or final incident set
        exceeds this size, :class:`~repro.core.errors.BudgetExceededError`
        is raised.  Incident sets can be exponential in pattern size
        (Theorem 1), so long-running services should always set a cap.
    """

    name = "abstract"

    def __init__(self, *, max_incidents: int | None = None):
        self.max_incidents = max_incidents
        self.last_stats: EvaluationStats | None = None

    @abstractmethod
    def evaluate(self, log: Log, pattern: Pattern) -> IncidentSet:
        """Compute the full incident set ``incL(pattern)``."""

    def exists(self, log: Log, pattern: Pattern) -> bool:
        """Whether at least one incident of ``pattern`` occurs in ``log``.

        Subclasses may override with short-circuit strategies; the default
        materialises the full set.
        """
        return bool(self.evaluate(log, pattern))

    def count(self, log: Log, pattern: Pattern) -> int:
        """Number of incidents of ``pattern`` in ``log``."""
        return len(self.evaluate(log, pattern))

    def _check_budget(self, size: int) -> None:
        if self.max_incidents is not None and size > self.max_incidents:
            raise BudgetExceededError(
                f"incident set exceeded the cap of {self.max_incidents} "
                f"(reached {size}); raise max_incidents or refine the pattern",
                limit=self.max_incidents,
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_incidents={self.max_incidents})"

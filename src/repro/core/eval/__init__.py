"""Evaluation engines for incident-pattern queries.

Three in-process engines share one semantics (Definition 4):

* :class:`~repro.core.eval.naive.NaiveEngine` — a faithful implementation
  of the paper's Algorithms 1-3 (pairwise nested-loop operator evaluation,
  post-order incident-tree traversal, per-wid record index).
* :class:`~repro.core.eval.indexed.IndexedEngine` — an optimized engine
  with sorted incident lists, binary-search joins for the sequential
  operator and hash joins for the consecutive operator.
* :class:`~repro.core.eval.vectorized.VectorizedEngine` — the indexed
  engine's join algorithms evaluated set-at-a-time over the columnar log
  core (:mod:`repro.columnar`), with position-tuple intermediates.

(A fourth, the SQL pushdown :class:`~repro.columnar.SqliteEngine`, lives
with its schema in :mod:`repro.columnar`.)  All satisfy the
:class:`~repro.core.eval.base.Engine` interface; tests differential-check
them against the Definition 4 oracle in
:func:`repro.core.incident.reference_incidents`.
"""

from repro.core.eval.base import Engine, EvaluationStats
from repro.core.eval.counting import count_incidents, supports_counting
from repro.core.eval.incremental import IncrementalEvaluator
from repro.core.eval.naive import NaiveEngine
from repro.core.eval.indexed import IndexedEngine
from repro.core.eval.tree import IncidentTreeNode, build_incident_tree, render_tree
from repro.core.eval.vectorized import VectorizedEngine

__all__ = [
    "Engine",
    "EvaluationStats",
    "NaiveEngine",
    "IndexedEngine",
    "VectorizedEngine",
    "IncrementalEvaluator",
    "count_incidents",
    "supports_counting",
    "IncidentTreeNode",
    "build_incident_tree",
    "render_tree",
]

"""Optimized pattern-evaluation engine.

The paper's Algorithm 1 inspects every pair of sub-incidents for every
operator.  This engine keeps each intermediate incident set sorted by
``first`` (per workflow instance) and exploits that order:

* **sequential** ``p1 ⊳ p2`` — for each left incident, the qualifying right
  incidents form a suffix of the ``first``-sorted right list; the suffix
  boundary is found by binary search, so no failing pair is ever examined;
* **consecutive** ``p1 ⊙ p2`` — right incidents are hashed by ``first`` and
  each left incident probes ``last+1`` (a hash join on the adjacency key);
* **parallel** ``p1 ⊕ p2`` — pairs whose is-lsn spans do not overlap are
  disjoint by construction, so the record-level disjointness test runs only
  for span-overlapping pairs;
* **choice** — a hash-set union.

The engine also provides a short-circuit :meth:`IndexedEngine.exists` for
patterns built from atoms, ``⊳`` and ``⊗`` only: a greedy earliest-match
scan over each instance trace, linear in the instance length, that never
materialises incident sets.

Output sizes are unchanged — the optimizations cut the *search*, not the
result (which Lemma 1 lower-bounds at ``n1·n2`` in the worst case).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

from repro.core.eval.base import Engine, EvaluationStats, node_label
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log, LogRecord
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["IndexedEngine"]


def _sorted_by_first(incidents: Sequence[Incident]) -> list[Incident]:
    return sorted(incidents, key=lambda o: (o.first, o.last))


class IndexedEngine(Engine):
    """Sort/hash-join evaluation of incident patterns (see module docs)."""

    name = "indexed"

    def evaluate(self, log: Log, pattern: Pattern) -> IncidentSet:
        stats = self._new_stats()
        out: list[Incident] = []
        with self.tracer.span("evaluate", key=(), engine=self.name, pattern=str(pattern)):
            for wid in log.wids:
                self._checkpoint(stats)
                out.extend(self._eval_node(log, wid, pattern, stats, "root"))
            self._check_budget(len(out))
            stats.note_live(len(out))
            stats.incidents_produced += len(out)
        self._finish(stats)
        return IncidentSet(out)

    def count(self, log: Log, pattern: Pattern) -> int:
        """Number of incidents; uses the output-free counting DP
        (:mod:`repro.core.eval.counting`) for ⊙/⊳ chains of leaves, where
        the incident set may be quadratic or worse in the log size."""
        from repro.core.eval.counting import count_incidents, supports_counting

        if supports_counting(pattern):
            return count_incidents(
                log,
                pattern,
                tracer=self.tracer,
                metrics=self.metrics,
                governor=self.governor,
            )
        return len(self.evaluate(log, pattern))

    def exists(self, log: Log, pattern: Pattern) -> bool:
        """Short-circuit existence check.

        For patterns whose operators are only ``⊳`` and ``⊗``, a greedy
        earliest-completion scan decides existence in time linear in each
        instance trace.  Other patterns fall back to full evaluation, but
        instance by instance so a hit in an early instance stops the scan.
        """
        if _greedy_safe(pattern):
            stats = self._new_stats()
            for wid in log.wids:
                self._checkpoint(stats)
                if _earliest_end(log.instance(wid), pattern, 1) is not None:
                    return True
            return False
        stats = self._new_stats()
        for wid in log.wids:
            self._checkpoint(stats)
            if self._eval_node(log, wid, pattern, stats):
                self._finish(stats)
                return True
        self._finish(stats)
        return False

    # -- node evaluation ---------------------------------------------------

    def _eval_node(
        self,
        log: Log,
        wid: int,
        pattern: Pattern,
        stats: EvaluationStats,
        key: int | str = "root",
    ) -> list[Incident]:
        """Incidents of ``pattern`` within instance ``wid``, sorted by
        ``first``."""
        with self.tracer.span(node_label(pattern), key=key) as span:
            if isinstance(pattern, Atomic):
                result = self._eval_atomic(log, wid, pattern)
            else:
                assert isinstance(pattern, BinaryPattern)
                left = self._eval_node(log, wid, pattern.left, stats, 0)
                right = self._eval_node(log, wid, pattern.right, stats, 1)
                stats.note_operator(pattern.symbol)
                pairs_before = stats.pairs_examined
                if isinstance(pattern, Sequential):
                    result = self._join_sequential(
                        left, right, stats, bound=getattr(pattern, "bound", None)
                    )
                elif isinstance(pattern, Consecutive):
                    result = self._join_consecutive(left, right, stats)
                elif isinstance(pattern, Parallel):
                    result = self._join_parallel(left, right, stats)
                else:
                    result = self._union_choice(left, right, stats)
                span.set_tag("operator", pattern.symbol)
                span.add(
                    n1=len(left),
                    n2=len(right),
                    pairs=stats.pairs_examined - pairs_before,
                )
                self._checkpoint(stats)
            self._check_budget(len(result))
            stats.note_live(len(result))
            stats.incidents_produced += len(result)
            span.add(incidents=len(result))
        return result

    def _eval_atomic(self, log: Log, wid: int, pattern: Atomic) -> list[Incident]:
        # instance() is is-lsn ordered, so the result is first-sorted;
        # matches() dispatches to leaf subclasses (attribute guards, ...).
        return [Incident([r]) for r in log.instance(wid) if pattern.matches(r)]

    def _join_sequential(
        self,
        left: list[Incident],
        right: list[Incident],
        stats: EvaluationStats,
        *,
        bound: int | None = None,
    ) -> list[Incident]:
        if not left or not right:
            return []
        right = _sorted_by_first(right)
        firsts = [o.first for o in right]
        out: list[Incident] = []
        seen: set[Incident] = set()
        for o1 in left:
            # qualifying right incidents (first > o1.last, and within the
            # window bound if one applies) form a contiguous slice of the
            # first-sorted right list
            start = bisect_right(firsts, o1.last)
            stop = (
                len(right) if bound is None else bisect_right(firsts, o1.last + bound)
            )
            for o2 in right[start:stop]:
                stats.pairs_examined += 1
                union = o1.union(o2)
                if union not in seen:
                    seen.add(union)
                    out.append(union)
        return _sorted_by_first(out)

    def _join_consecutive(
        self,
        left: list[Incident],
        right: list[Incident],
        stats: EvaluationStats,
    ) -> list[Incident]:
        if not left or not right:
            return []
        by_first: dict[int, list[Incident]] = {}
        for o2 in right:
            by_first.setdefault(o2.first, []).append(o2)
        out: list[Incident] = []
        seen: set[Incident] = set()
        for o1 in left:
            for o2 in by_first.get(o1.last + 1, ()):
                stats.pairs_examined += 1
                union = o1.union(o2)
                if union not in seen:
                    seen.add(union)
                    out.append(union)
        return _sorted_by_first(out)

    def _join_parallel(
        self,
        left: list[Incident],
        right: list[Incident],
        stats: EvaluationStats,
    ) -> list[Incident]:
        if not left or not right:
            return []
        out: list[Incident] = []
        seen: set[Incident] = set()
        for o1 in left:
            for o2 in right:
                stats.pairs_examined += 1
                # span-based quick accept: non-overlapping is-lsn spans
                # cannot share records.
                if o1.last < o2.first or o2.last < o1.first or o1.disjoint(o2):
                    union = o1.union(o2)
                    if union not in seen:
                        seen.add(union)
                        out.append(union)
        return _sorted_by_first(out)

    def _union_choice(
        self,
        left: list[Incident],
        right: list[Incident],
        stats: EvaluationStats,
    ) -> list[Incident]:
        stats.pairs_examined += len(left) + len(right)
        seen: set[Incident] = set(left)
        merged = list(left)
        merged.extend(o for o in right if o not in seen)
        return _sorted_by_first(merged)


# ---------------------------------------------------------------------------
# Greedy existence check for {atom, ⊳, ⊗} patterns.
# ---------------------------------------------------------------------------

def _greedy_safe(pattern: Pattern) -> bool:
    """Whether the greedy earliest-completion scan decides existence for
    ``pattern``.  Sound for atoms, ``⊳`` and ``⊗``: the earliest completion
    of ``p1`` never rules out a later completion that greedy would need
    (matches are unconstrained suffix-ward).  ``⊙`` (exact adjacency) and
    ``⊕`` (record disjointness) break that dominance argument."""
    if isinstance(pattern, Atomic):
        return True
    # note: *subclasses* of Sequential (windowed ⊳) are excluded — an upper
    # window bound breaks the earliest-completion dominance too.
    if type(pattern) is Sequential or isinstance(pattern, Choice):
        return _greedy_safe(pattern.left) and _greedy_safe(pattern.right)
    return False


def _earliest_end(
    trace: Sequence[LogRecord], pattern: Pattern, start: int
) -> int | None:
    """Smallest ``last`` over incidents of ``pattern`` inside ``trace``
    whose ``first`` is >= ``start`` (is-lsn positions), or None.

    ``trace`` is one instance's records in is-lsn order; position ``i`` in
    the trace has ``is_lsn == i + 1``.
    """
    if isinstance(pattern, Atomic):
        for record in trace[start - 1 :]:
            if pattern.matches(record):
                return record.is_lsn
        return None
    if isinstance(pattern, Choice):
        ends = [
            e
            for e in (
                _earliest_end(trace, pattern.left, start),
                _earliest_end(trace, pattern.right, start),
            )
            if e is not None
        ]
        return min(ends) if ends else None
    assert isinstance(pattern, Sequential)
    left_end = _earliest_end(trace, pattern.left, start)
    if left_end is None:
        return None
    return _earliest_end(trace, pattern.right, left_end + 1)

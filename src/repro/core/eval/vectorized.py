"""Vectorized pattern evaluation over the columnar log core.

Same join algorithms as :class:`~repro.core.eval.indexed.IndexedEngine`
(sorted-merge ``⊳``, hash-adjacency ``⊙``, span-filtered ``⊕``, hash-set
``⊗``), evaluated set-at-a-time over :class:`~repro.columnar.ColumnarLog`
column slices instead of object rows:

* each workflow instance is one contiguous row window ``[lo, hi)`` of the
  columnar layout — no per-instance dict probing;
* activity leaves are answered from the per-activity row index (two
  binary searches clip it to the instance window), and negated leaves
  scan the interned ``act_id`` integer column — record objects are never
  touched for plain leaves;
* intermediate incidents are plain ``(first, last, positions)`` tuples
  (``positions`` a frozenset of is-lsn values), so the quadratic join
  loops move integers and frozensets instead of allocating
  :class:`~repro.core.incident.Incident` objects;
* :class:`~repro.core.incident.Incident` objects are materialised once,
  at the root, per instance.

Because the per-operator algorithms are unchanged, the engine examines
exactly the pairs the indexed engine examines (identical
``EvaluationStats``) and its output is byte-for-byte identical — only
the constant factor per pair drops.  Attribute-guarded leaves
(subclasses of :class:`~repro.core.pattern.Atomic`) need the attribute
maps and fall back to matching the instance's record objects; everything
around them stays columnar.
"""

from __future__ import annotations

from bisect import bisect_right
from functools import partial

from repro.columnar.column_log import ColumnarLog, as_columnar
from repro.core.eval.base import Engine, EvaluationStats, node_label
from repro.core.eval.indexed import _earliest_end, _greedy_safe
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["VectorizedEngine"]

#: Intermediate incident: ``(first, last, frozenset of is-lsn positions)``.
#: Within one workflow instance is-lsn and lsn are in bijection, so the
#: position set carries exactly the identity an Incident's lsn set does.
_Span = tuple[int, int, frozenset]


def _sorted_by_first(incidents: list[_Span]) -> list[_Span]:
    incidents.sort(key=lambda o: (o[0], o[1]))
    return incidents


class VectorizedEngine(Engine):
    """Columnar set-at-a-time evaluation (see module docs)."""

    name = "vectorized"

    def evaluate(self, log: "Log | ColumnarLog", pattern: Pattern) -> IncidentSet:
        columnar = as_columnar(log)
        stats = self._new_stats()
        out: list[Incident] = []
        with self.tracer.span("evaluate", key=(), engine=self.name, pattern=str(pattern)):
            if self.tracer.enabled:
                for _, lo, hi in columnar.wid_windows():
                    self._checkpoint(stats)
                    spans = self._eval_node(columnar, lo, hi, pattern, stats, "root")
                    out.extend(self._materialize(columnar, lo, spans))
            else:
                # span bookkeeping costs a context manager + label per node
                # per instance; untraced, a compiled closure tree wins
                plan = self._compile(columnar, pattern, stats)
                for wi, (_, lo, hi) in enumerate(columnar.wid_windows()):
                    self._checkpoint(stats)
                    out.extend(self._materialize(columnar, lo, plan(wi, lo, hi)))
            self._check_budget(len(out))
            stats.note_live(len(out))
            stats.incidents_produced += len(out)
        self._finish(stats)
        return IncidentSet(out)

    def count(self, log: "Log | ColumnarLog", pattern: Pattern) -> int:
        """Number of incidents; delegates ⊙/⊳ chains of leaves to the
        output-free counting DP, exactly as the indexed engine does."""
        from repro.core.eval.counting import count_incidents, supports_counting

        if supports_counting(pattern):
            return count_incidents(
                log,
                pattern,
                tracer=self.tracer,
                metrics=self.metrics,
                governor=self.governor,
            )
        return len(self.evaluate(log, pattern))

    def exists(self, log: "Log | ColumnarLog", pattern: Pattern) -> bool:
        """Short-circuit existence check (same strategy split as the
        indexed engine: greedy scan for {atom, ⊳, ⊗}, else per-instance
        evaluation stopping at the first hit)."""
        columnar = as_columnar(log)
        if _greedy_safe(pattern):
            stats = self._new_stats()
            for wid in columnar.wids:
                self._checkpoint(stats)
                if _earliest_end(columnar.wid_slice(wid), pattern, 1) is not None:
                    return True
            return False
        stats = self._new_stats()
        if self.tracer.enabled:
            node = lambda wi, lo, hi: self._eval_node(  # noqa: E731
                columnar, lo, hi, pattern, stats, "root"
            )
        else:
            node = self._compile(columnar, pattern, stats)
        for wi, (_, lo, hi) in enumerate(columnar.wid_windows()):
            self._checkpoint(stats)
            if node(wi, lo, hi):
                self._finish(stats)
                return True
        self._finish(stats)
        return False

    # -- materialisation -----------------------------------------------------

    def _materialize(
        self, columnar: ColumnarLog, lo: int, spans: list[_Span]
    ) -> list[Incident]:
        """Root-level position tuples as :class:`Incident` objects.

        Within one instance window starting at row ``lo``, the record at
        is-lsn position ``p`` sits at row ``lo + p - 1`` (Definition 2
        condition 3: per-instance is-lsn values are consecutive from 1).
        """
        row_record = columnar.row_record
        return [
            Incident([row_record(lo + p - 1) for p in positions])
            for _, _, positions in spans
        ]

    # -- node evaluation -------------------------------------------------------

    def _eval_node(
        self,
        columnar: ColumnarLog,
        lo: int,
        hi: int,
        pattern: Pattern,
        stats: EvaluationStats,
        key: int | str = "root",
    ) -> list[_Span]:
        """Position-tuple incidents of ``pattern`` within the instance
        window ``[lo, hi)``, sorted by ``first``."""
        with self.tracer.span(node_label(pattern), key=key) as span:
            if isinstance(pattern, Atomic):
                result = self._eval_atomic(columnar, lo, hi, pattern)
            else:
                assert isinstance(pattern, BinaryPattern)
                left = self._eval_node(columnar, lo, hi, pattern.left, stats, 0)
                right = self._eval_node(columnar, lo, hi, pattern.right, stats, 1)
                stats.note_operator(pattern.symbol)
                pairs_before = stats.pairs_examined
                if isinstance(pattern, Sequential):
                    result = self._join_sequential(
                        stats, left, right, bound=getattr(pattern, "bound", None)
                    )
                elif isinstance(pattern, Consecutive):
                    result = self._join_consecutive(stats, left, right)
                elif isinstance(pattern, Parallel):
                    result = self._join_parallel(stats, left, right)
                else:
                    result = self._union_choice(stats, left, right)
                span.set_tag("operator", pattern.symbol)
                span.add(
                    n1=len(left),
                    n2=len(right),
                    pairs=stats.pairs_examined - pairs_before,
                )
                self._checkpoint(stats)
            self._check_budget(len(result))
            stats.note_live(len(result))
            stats.incidents_produced += len(result)
            span.add(incidents=len(result))
        return result

    # -- the untraced hot path: compile once, run per window -------------------

    def _compile(
        self,
        columnar: ColumnarLog,
        pattern: Pattern,
        stats: EvaluationStats,
    ):
        """Compile ``pattern`` into a window evaluator ``f(wi, lo, hi)``
        (``wi`` the window number, ``[lo, hi)`` the row range).

        The untraced twin of :meth:`_eval_node`: dispatch, leaf act-id
        resolution and join selection happen once per evaluation instead
        of once per node per instance, positive leaves read the cached
        per-window spans (:meth:`ColumnarLog.leaf_spans`), and the
        per-node stats epilogue (budget check, live peak, incidents
        produced) is inlined into the closures — in the same order as the
        traced path, so counters and governor kill snapshots stay
        identical.
        """
        if isinstance(pattern, Atomic):
            return self._compile_atomic(columnar, pattern, stats)
        assert isinstance(pattern, BinaryPattern)
        left = self._compile(columnar, pattern.left, stats)
        right = self._compile(columnar, pattern.right, stats)
        if isinstance(pattern, Sequential):
            join = partial(
                self._join_sequential,
                stats,
                bound=getattr(pattern, "bound", None),
            )
        elif isinstance(pattern, Consecutive):
            join = partial(self._join_consecutive, stats)
        elif isinstance(pattern, Parallel):
            join = partial(self._join_parallel, stats)
        else:
            join = partial(self._union_choice, stats)

        symbol = pattern.symbol
        max_incidents = self.max_incidents
        governor = self.governor
        # note_operator mirrors into the metrics registry when one is
        # bound; inline the plain-counter form otherwise
        note_operator = stats.note_operator if stats.registry is not None else None
        per_operator = stats.per_operator

        def node(wi: int, lo: int, hi: int) -> list[_Span]:
            o1 = left(wi, lo, hi)
            o2 = right(wi, lo, hi)
            if note_operator is not None:
                note_operator(symbol)
            else:
                stats.operator_evals += 1
                per_operator[symbol] = per_operator.get(symbol, 0) + 1
            result = join(o1, o2)
            if governor is not None:
                self.last_stats = stats
                governor.check(stats)
            n = len(result)
            if max_incidents is not None and n > max_incidents:
                self._check_budget(n)
            if n > stats.max_live_incidents:
                stats.max_live_incidents = n
            stats.incidents_produced += n
            return result

        return node

    def _compile_atomic(
        self, columnar: ColumnarLog, pattern: Atomic, stats: EvaluationStats
    ):
        """Window evaluator of one leaf (see :meth:`_eval_atomic` for the
        three leaf shapes)."""
        max_incidents = self.max_incidents

        def epilogue(result: list[_Span]) -> list[_Span]:
            n = len(result)
            if max_incidents is not None and n > max_incidents:
                self._check_budget(n)
            if n > stats.max_live_incidents:
                stats.max_live_incidents = n
            stats.incidents_produced += n
            return result

        if type(pattern) is not Atomic:
            all_rows = columnar._rows
            matches = pattern.matches

            def guarded_leaf(wi: int, lo: int, hi: int) -> list[_Span]:
                return epilogue(
                    [
                        (r.is_lsn, r.is_lsn, frozenset((r.is_lsn,)))
                        for r in all_rows[lo:hi]
                        if matches(r)
                    ]
                )

            return guarded_leaf
        act_id = columnar.act_id_of(pattern.name)
        if not pattern.negated:
            if act_id is None:
                # absent activity: the empty result leaves every counter
                # unchanged, so no epilogue is needed
                return lambda wi, lo, hi: []
            spans_by_window = columnar.leaf_spans(act_id)

            def positive_leaf(wi: int, lo: int, hi: int) -> list[_Span]:
                return epilogue(spans_by_window[wi])

            return positive_leaf
        act_col = columnar._act_id

        def negated_leaf(wi: int, lo: int, hi: int) -> list[_Span]:
            base = 1 - lo
            return epilogue(
                [
                    (row + base, row + base, frozenset((row + base,)))
                    for row in range(lo, hi)
                    if act_col[row] != act_id
                ]
            )

        return negated_leaf

    def _eval_atomic(
        self, columnar: ColumnarLog, lo: int, hi: int, pattern: Atomic
    ) -> list[_Span]:
        if type(pattern) is not Atomic:
            # attribute-guarded leaf subclass: needs the attribute maps, so
            # match the instance's record objects (is-lsn order = first-sorted)
            return [
                (r.is_lsn, r.is_lsn, frozenset((r.is_lsn,)))
                for r in self._rows_slice(columnar, lo, hi)
                if pattern.matches(r)
            ]
        act_id = columnar.act_id_of(pattern.name)
        # within the window the record at row ``r`` has is-lsn ``r - lo + 1``
        # (rows are is-lsn ordered, per-instance is-lsn consecutive from 1),
        # so positions come from row arithmetic — no column reads
        base = 1 - lo
        if not pattern.negated:
            if act_id is None:
                return []
            return [
                (row + base, row + base, frozenset((row + base,)))
                for row in columnar.act_rows(act_id, lo, hi)
            ]
        # negated leaf: scan the interned activity column of the window
        act_col = columnar._act_id
        return [
            (row + base, row + base, frozenset((row + base,)))
            for row in range(lo, hi)
            if act_col[row] != act_id
        ]

    @staticmethod
    def _rows_slice(columnar: ColumnarLog, lo: int, hi: int):
        return columnar._rows[lo:hi]

    # -- joins (same algorithms as IndexedEngine, over position tuples) --------

    def _join_sequential(
        self,
        stats: EvaluationStats,
        left: list[_Span],
        right: list[_Span],
        *,
        bound: int | None = None,
    ) -> list[_Span]:
        if not left or not right:
            return []
        firsts = [o[0] for o in right]
        out: list[_Span] = []
        seen: set[frozenset] = set()
        n = len(right)
        for first1, last1, pos1 in left:
            # qualifying right incidents form a contiguous first-sorted slice
            start = bisect_right(firsts, last1)
            stop = n if bound is None else bisect_right(firsts, last1 + bound)
            for i in range(start, stop):
                stats.pairs_examined += 1
                first2, last2, pos2 = right[i]
                union = pos1 | pos2
                if union not in seen:
                    seen.add(union)
                    out.append((first1, last2 if last2 > last1 else last1, union))
        return _sorted_by_first(out)

    def _join_consecutive(
        self,
        stats: EvaluationStats,
        left: list[_Span],
        right: list[_Span],
    ) -> list[_Span]:
        if not left or not right:
            return []
        by_first: dict[int, list[_Span]] = {}
        for o2 in right:
            by_first.setdefault(o2[0], []).append(o2)
        out: list[_Span] = []
        seen: set[frozenset] = set()
        for first1, last1, pos1 in left:
            for first2, last2, pos2 in by_first.get(last1 + 1, ()):
                stats.pairs_examined += 1
                union = pos1 | pos2
                if union not in seen:
                    seen.add(union)
                    out.append((first1, last2 if last2 > last1 else last1, union))
        return _sorted_by_first(out)

    def _join_parallel(
        self,
        stats: EvaluationStats,
        left: list[_Span],
        right: list[_Span],
    ) -> list[_Span]:
        if not left or not right:
            return []
        out: list[_Span] = []
        seen: set[frozenset] = set()
        for first1, last1, pos1 in left:
            for first2, last2, pos2 in right:
                stats.pairs_examined += 1
                # span-based quick accept: non-overlapping is-lsn spans
                # cannot share records
                if last1 < first2 or last2 < first1 or pos1.isdisjoint(pos2):
                    union = pos1 | pos2
                    if union not in seen:
                        seen.add(union)
                        out.append(
                            (
                                first1 if first1 < first2 else first2,
                                last1 if last1 > last2 else last2,
                                union,
                            )
                        )
        return _sorted_by_first(out)

    def _union_choice(
        self,
        stats: EvaluationStats,
        left: list[_Span],
        right: list[_Span],
    ) -> list[_Span]:
        stats.pairs_examined += len(left) + len(right)
        seen: set[frozenset] = {o[2] for o in left}
        merged = list(left)
        merged.extend(o for o in right if o[2] not in seen)
        return _sorted_by_first(merged)

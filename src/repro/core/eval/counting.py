"""Incident counting without materialisation.

``|incL(p)|`` for a *chain* pattern — leaves composed with ⊙, ⊳ and
windowed ⊳ only — can be computed by dynamic programming in
``O(k · m log m)`` per instance instead of materialising the up-to
``O(m^k)`` incident set (Lemma 1 / Theorem 1 sizes):

For leaves ``a1 … ak`` at candidate positions ``P1 … Pk`` (per instance),
count the tuples ``p1 < p2 < … < pk`` with ``pi ∈ Pi`` that satisfy each
gap's constraint.  Because positions strictly increase, each qualifying
tuple *is* the sorted record set of exactly one incident, so the count
equals ``|incL|`` exactly.  Processing leaves right to left,

    g_k(p)  = 1                                   for p ∈ P_k
    g_j(p)  = Σ { g_{j+1}(q) : q ∈ P_{j+1}, gap_j(p, q) }

and each gap sum is a suffix (⊳), point (⊙) or range (⊳[w]) lookup over
prefix sums of ``g_{j+1}`` — no pair enumeration.

``count_incidents`` applies the DP where it is sound (see
:func:`supports_counting`) and raises otherwise; the engines fall back to
materialisation automatically.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from repro.core.errors import EvaluationError
from repro.core.algebra import flatten_chain
from repro.core.model import Log
from repro.core.pattern import Atomic, Consecutive, Pattern, Sequential
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.governor import ResourceGovernor

__all__ = ["supports_counting", "count_incidents"]


def supports_counting(pattern: Pattern) -> bool:
    """Whether the counting DP applies: a chain of *leaves* joined by
    ⊙ / ⊳ / windowed ⊳ (no ⊗ — branches can overlap, making the count
    non-additive — and no ⊕)."""
    items, gaps = flatten_chain(pattern)
    return all(isinstance(item, Atomic) for item in items)


def count_incidents(
    log: Log,
    pattern: Pattern,
    *,
    tracer: Tracer | NullTracer = NULL_TRACER,
    metrics: MetricsRegistry | None = None,
    governor: "ResourceGovernor | None" = None,
) -> int:
    """Exact ``|incL(pattern)|`` for a supported chain pattern.

    The counting DP never materialises incident sets, so its trace is a
    single ``count`` span (chain length and instance count as metrics)
    rather than a per-node tree.  The DP examines positions, not pairs,
    so a governor's ``max_pairs`` budget is charged one unit per scanned
    candidate position (the DP's own cost driver) at the per-instance
    checkpoint.
    """
    if not supports_counting(pattern):
        raise EvaluationError(
            "counting DP supports chains of atomic leaves joined by "
            "consecutive/sequential operators only"
        )
    items, gaps = flatten_chain(pattern)
    total = 0
    with tracer.span("count", key=(), pattern=str(pattern)) as span:
        for wid in log.wids:
            if governor is not None:
                governor.check()
            count, scanned = _count_instance(log, wid, items, gaps)
            total += count
            if governor is not None:
                governor.charge(scanned)
                governor.check()
        span.add(instances=len(log.wids), chain_length=len(items), incidents=total)
    if metrics is not None:
        metrics.counter("engine.counting_evals").inc()
        metrics.counter("engine.counted_incidents").inc(total)
    return total


def _count_instance(log: Log, wid: int, items, gaps) -> tuple[int, int]:
    """(incident count, candidate positions scanned) for one instance."""
    trace = log.instance(wid)
    scanned = 0
    # candidate positions per leaf, ascending
    position_lists: list[list[int]] = []
    for leaf in items:
        positions = [r.is_lsn for r in trace if leaf.matches(r)]
        if not positions:
            return 0, scanned
        scanned += len(positions)
        position_lists.append(positions)

    # g for the last leaf: one incident per candidate
    positions = position_lists[-1]
    weights = [1] * len(positions)

    for j in range(len(gaps) - 1, -1, -1):
        gap = gaps[j]
        next_positions = positions
        # prefix sums of the next level's weights
        prefix = [0]
        for weight in weights:
            prefix.append(prefix[-1] + weight)

        positions = position_lists[j]
        new_weights = []
        window = getattr(gap, "bound", None)
        for p in positions:
            if isinstance(gap, Consecutive):
                index = bisect_left(next_positions, p + 1)
                hit = (
                    index < len(next_positions)
                    and next_positions[index] == p + 1
                )
                new_weights.append(weights[index] if hit else 0)
            elif window is not None:
                low = bisect_right(next_positions, p)
                high = bisect_right(next_positions, p + window)
                new_weights.append(prefix[high] - prefix[low])
            else:
                assert isinstance(gap, Sequential)
                low = bisect_right(next_positions, p)
                new_weights.append(prefix[-1] - prefix[low])
        weights = new_weights

    return sum(weights), scanned

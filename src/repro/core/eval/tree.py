"""Incident trees (Definition 6, Algorithm 3, Figure 4 of the paper).

The paper evaluates queries over an explicit binary *incident tree* whose
internal nodes carry pattern operators and whose leaves carry (possibly
negated) activity names.  Our :class:`~repro.core.pattern.Pattern` AST is
already isomorphic to that tree; this module provides the explicit tagged
form used by the paper's pseudo-code (node ``type`` in ``{ATOMIC, CONS,
SEQU, CHOICE, PARA}``), conversion in both directions, and an ASCII
renderer that regenerates Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = [
    "ATOMIC",
    "CONS",
    "SEQU",
    "CHOICE",
    "PARA",
    "IncidentTreeNode",
    "build_incident_tree",
    "tree_to_pattern",
    "render_tree",
]

# Node type tags, matching Algorithm 3's operator_type domain.
ATOMIC = "ATOMIC"
CONS = "CONS"
SEQU = "SEQU"
CHOICE = "CHOICE"
PARA = "PARA"

_TYPE_OF: dict[type, str] = {
    Consecutive: CONS,
    Sequential: SEQU,
    Choice: CHOICE,
    Parallel: PARA,
}

_CLASS_OF: dict[str, type] = {v: k for k, v in _TYPE_OF.items()}

_SYMBOL_OF: dict[str, str] = {CONS: "⊙", SEQU: "⊳", CHOICE: "⊗", PARA: "⊕"}


@dataclass(slots=True)
class IncidentTreeNode:
    """One node of an incident tree (Definition 6).

    ``type`` is ``ATOMIC`` for leaves (then ``activity_name``/``negated``
    are set) or an operator tag (then ``left``/``right`` are set).
    ``label_override`` carries the display form of extended nodes
    (guarded leaves, windowed operators) — the base ``type`` tags stay
    within Definition 6's vocabulary.
    """

    type: str
    activity_name: str | None = None
    negated: bool = False
    left: "IncidentTreeNode | None" = None
    right: "IncidentTreeNode | None" = None
    label_override: str | None = None

    @property
    def is_leaf(self) -> bool:
        return self.type == ATOMIC

    @property
    def label(self) -> str:
        """Display label: the activity name (possibly ¬-prefixed) for
        leaves, the operator glyph for internal nodes."""
        if self.label_override is not None:
            return self.label_override
        if self.is_leaf:
            assert self.activity_name is not None
            return ("¬" if self.negated else "") + self.activity_name
        return _SYMBOL_OF[self.type]

    def post_order(self):
        """Yield nodes in post-order — the paper's evaluation order."""
        if self.left is not None:
            yield from self.left.post_order()
        if self.right is not None:
            yield from self.right.post_order()
        yield self

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"IncidentTreeNode({self.label})"
        return f"IncidentTreeNode({self.type}, {self.left!r}, {self.right!r})"


def _tag_of(pattern: BinaryPattern) -> str:
    """Operator tag, honouring subclasses (windowed ⊳ tags as SEQU)."""
    for cls in type(pattern).__mro__:
        if cls in _TYPE_OF:
            return _TYPE_OF[cls]
    raise TypeError(f"unknown operator {type(pattern).__name__}")


def build_incident_tree(pattern: Pattern) -> IncidentTreeNode:
    """Convert a pattern AST into the explicit incident-tree form
    (the output of the paper's Algorithm 3).

    Extended nodes keep their base tag but carry a display label: a
    guarded leaf shows its guard, a windowed ⊳ its bound.  (The reverse
    direction, :func:`tree_to_pattern`, is exact for the paper's core
    algebra only.)"""
    if isinstance(pattern, Atomic):
        override = None
        if type(pattern) is not Atomic:
            override = pattern.to_query_text()
        return IncidentTreeNode(
            ATOMIC,
            activity_name=pattern.name,
            negated=pattern.negated,
            label_override=override,
        )
    assert isinstance(pattern, BinaryPattern)
    override = None
    if type(pattern) not in _TYPE_OF:
        override = pattern.symbol
        if getattr(pattern, "bound", None) is not None:
            override = f"⊳[{pattern.bound}]"
    return IncidentTreeNode(
        _tag_of(pattern),
        left=build_incident_tree(pattern.left),
        right=build_incident_tree(pattern.right),
        label_override=override,
    )


def tree_to_pattern(node: IncidentTreeNode) -> Pattern:
    """Inverse of :func:`build_incident_tree`."""
    if node.is_leaf:
        assert node.activity_name is not None
        return Atomic(node.activity_name, negated=node.negated)
    assert node.left is not None and node.right is not None
    cls = _CLASS_OF[node.type]
    return cls(tree_to_pattern(node.left), tree_to_pattern(node.right))


def render_tree(node: IncidentTreeNode | Pattern, *, indent: str = "") -> str:
    """Render an incident tree as ASCII art (Figure 4 regeneration).

    >>> from repro.core.parser import parse
    >>> print(render_tree(parse("SeeDoctor -> (UpdateRefer -> GetReimburse)")))
    ⊳
    ├── SeeDoctor
    └── ⊳
        ├── UpdateRefer
        └── GetReimburse
    """
    if isinstance(node, Pattern):
        node = build_incident_tree(node)
    lines: list[str] = [node.label]
    _render_children(node, "", lines)
    return "\n".join(lines)


def _render_children(node: IncidentTreeNode, prefix: str, lines: list[str]) -> None:
    if node.is_leaf:
        return
    assert node.left is not None and node.right is not None
    for child, connector, extension in (
        (node.left, "├── ", "│   "),
        (node.right, "└── ", "    "),
    ):
        lines.append(prefix + connector + child.label)
        _render_children(child, prefix + extension, lines)

"""The paper's published evaluation algorithm (Algorithms 1 and 2).

This engine is a faithful transcription of Section 3:

* each of the four operators is evaluated by pairwise iteration over the
  two input incident sets (Algorithm 1) — ``O(n1*n2)`` pairs per operator;
* a query is evaluated by post-order traversal of its incident tree
  (Algorithm 2), evaluating each workflow instance separately against a
  per-``wid`` record dictionary built in one pass over the log
  (Algorithm 3's ``LogRecordsDict``);
* atomic leaves use the per-activity index, so generating the incidents of
  an activity node is proportional to its output size.

It exists both as the baseline whose measured complexity the benchmark
harness compares against Lemma 1/Theorem 1 and as a second implementation
for differential testing against the optimized engine.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.eval.base import Engine, EvaluationStats, node_label
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = [
    "NaiveEngine",
    "consecutive_eval",
    "sequential_eval",
    "choice_eval",
    "parallel_eval",
]


def consecutive_eval(
    inc1: Sequence[Incident],
    inc2: Sequence[Incident],
    stats: EvaluationStats | None = None,
    gap_ok: Callable[[int, int], bool] | None = None,
) -> list[Incident]:
    """CONSECUTIVE-EVAL of Algorithm 1: keep pairs with
    ``last(o1) + 1 == first(o2)`` (operands must share a wid)."""
    if gap_ok is None:
        gap_ok = lambda last1, first2: last1 + 1 == first2  # noqa: E731
    out: list[Incident] = []
    for o1 in inc1:
        for o2 in inc2:
            if stats is not None:
                stats.pairs_examined += 1
            if o1.wid == o2.wid and gap_ok(o1.last, o2.first):
                out.append(o1.union(o2))
    return out


def sequential_eval(
    inc1: Sequence[Incident],
    inc2: Sequence[Incident],
    stats: EvaluationStats | None = None,
    gap_ok: Callable[[int, int], bool] | None = None,
) -> list[Incident]:
    """SEQUENTIAL-EVAL of Algorithm 1: keep pairs with
    ``last(o1) < first(o2)`` (or the operator's refined gap constraint,
    e.g. a windowed ⊳)."""
    if gap_ok is None:
        gap_ok = lambda last1, first2: last1 < first2  # noqa: E731
    out: list[Incident] = []
    for o1 in inc1:
        for o2 in inc2:
            if stats is not None:
                stats.pairs_examined += 1
            if o1.wid == o2.wid and gap_ok(o1.last, o2.first):
                out.append(o1.union(o2))
    return out


def choice_eval(
    inc1: Sequence[Incident],
    inc2: Sequence[Incident],
    stats: EvaluationStats | None = None,
) -> list[Incident]:
    """CHOICE-EVAL of Algorithm 1: the union of the two incident sets with
    duplicates (identical record sets) eliminated.

    The paper's pseudo-code compares candidate incidents element-wise;
    :class:`~repro.core.incident.Incident` hashes by its record set, so the
    same comparison is expressed through set membership here (the per-pair
    cost remains linear in the incident length, exactly as analysed in
    Section 3.1).
    """
    if stats is not None:
        stats.pairs_examined += len(inc1) + len(inc2)
    seen: set[Incident] = set()
    out: list[Incident] = []
    for o in list(inc1) + list(inc2):
        if o not in seen:
            seen.add(o)
            out.append(o)
    return out


def parallel_eval(
    inc1: Sequence[Incident],
    inc2: Sequence[Incident],
    stats: EvaluationStats | None = None,
) -> list[Incident]:
    """PARALLEL-EVAL of Algorithm 1: keep pairs of disjoint incidents.

    As in the paper the result can contain duplicate record sets produced
    by different pairs (e.g. ``A ⊕ A`` on two A-records produces the same
    union twice); the output is deduplicated because ``incL`` is a set.
    """
    seen: set[Incident] = set()
    out: list[Incident] = []
    for o1 in inc1:
        for o2 in inc2:
            if stats is not None:
                stats.pairs_examined += 1
            if o1.wid == o2.wid and o1.disjoint(o2):
                union = o1.union(o2)
                if union not in seen:
                    seen.add(union)
                    out.append(union)
    return out


class NaiveEngine(Engine):
    """Algorithm 2: post-order incident-tree evaluation with the pairwise
    operator algorithms of Algorithm 1.

    The log's per-activity/per-instance indices play the role of
    ``LogRecordsDict``; each workflow instance is evaluated independently
    (incidents never span instances), matching lines 13-14 of Algorithm 2.
    """

    name = "naive"

    def evaluate(self, log: Log, pattern: Pattern) -> IncidentSet:
        stats = self._new_stats()
        incidents: list[Incident] = []
        with self.tracer.span("evaluate", key=(), engine=self.name, pattern=str(pattern)):
            for wid in log.wids:
                self._checkpoint(stats)
                incidents.extend(self._eval_node(log, wid, pattern, stats, "root"))
            self._check_budget(len(incidents))
            stats.note_live(len(incidents))
            stats.incidents_produced += len(incidents)
        self._finish(stats)
        return IncidentSet(incidents)

    def _eval_node(
        self,
        log: Log,
        wid: int,
        pattern: Pattern,
        stats: EvaluationStats,
        key: int | str = "root",
    ) -> list[Incident]:
        with self.tracer.span(node_label(pattern), key=key) as span:
            if isinstance(pattern, Atomic):
                if pattern.negated:
                    candidates = log.instance(wid)
                else:
                    # per-activity index lookup ("constant time" per Section 3.2)
                    candidates = [
                        r for r in log.with_activity(pattern.name) if r.wid == wid
                    ]
                result = [Incident([r]) for r in candidates if pattern.matches(r)]
            else:
                assert isinstance(pattern, BinaryPattern)
                left = self._eval_node(log, wid, pattern.left, stats, 0)
                right = self._eval_node(log, wid, pattern.right, stats, 1)
                stats.note_operator(pattern.symbol)
                pairs_before = stats.pairs_examined
                if isinstance(pattern, Consecutive):
                    result = consecutive_eval(left, right, stats, pattern.gap_ok)
                elif isinstance(pattern, Sequential):
                    result = sequential_eval(left, right, stats, pattern.gap_ok)
                elif isinstance(pattern, Choice):
                    result = choice_eval(left, right, stats)
                elif isinstance(pattern, Parallel):
                    result = parallel_eval(left, right, stats)
                else:  # pragma: no cover
                    raise TypeError(f"unknown operator {type(pattern).__name__}")
                span.set_tag("operator", pattern.symbol)
                span.add(
                    n1=len(left),
                    n2=len(right),
                    pairs=stats.pairs_examined - pairs_before,
                )
                self._checkpoint(stats)
            self._check_budget(len(result))
            stats.note_live(len(result))
            stats.incidents_produced += len(result)
            span.add(incidents=len(result))
        return result

"""Per-query resource governor: budgets, deadlines, cancellation.

The paper's evaluation model runs every query to completion, but the
ROADMAP's long-running service cannot: incident sets are worst-case
exponential (Theorem 1) and pairwise operators quadratic (Lemma 1), so
one pathological pattern can starve a whole worker.  This module is the
admission-control half of the observability journal (PR 7):

* :class:`QueryContext` — the frozen, picklable identity + budget record
  that travels with a query across thread *and* process backends.  The
  deadline is stored as an **absolute** wall-clock instant
  (``deadline_unix``) precisely so that process workers, which cannot
  share a monotonic clock with the parent, all observe the same cutoff.
* :class:`ResourceGovernor` — the per-process enforcement object.
  Engines call :meth:`ResourceGovernor.check` at cooperative checkpoints
  (per workflow instance and per operator node); the governor raises the
  typed :class:`~repro.core.errors.QueryTimeout` /
  :class:`~repro.core.errors.QueryBudgetExceeded` /
  :class:`~repro.core.errors.QueryCancelled` carrying a detached partial
  :class:`~repro.core.eval.base.EvaluationStats` snapshot.
* :class:`CancelToken` — a shared flag for in-process sibling shards.
  It wraps :class:`threading.Event` and is deliberately **not** sent to
  process workers (events do not pickle); process shards self-enforce
  via the absolute deadline instead, and the executor cancels their
  queued siblings with ``cancel_futures``.

Checkpoints are cooperative by design: no signals, no threads killed
mid-operation, so partially built incident sets are simply dropped and
every engine invariant holds on the unwind path.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.errors import QueryBudgetExceeded, QueryCancelled, QueryTimeout, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eval.base import EvaluationStats

__all__ = ["QueryContext", "ResourceGovernor", "CancelToken", "new_query_id", "new_trace_id"]


def new_query_id() -> str:
    """A fresh query identifier (``q-`` + 16 hex chars)."""
    return "q-" + uuid.uuid4().hex[:16]


def new_trace_id() -> str:
    """A fresh trace identifier (``t-`` + 16 hex chars)."""
    return "t-" + uuid.uuid4().hex[:16]


class CancelToken:
    """A cooperative cancellation flag shared by in-process shards.

    Not picklable on purpose — see the module docstring for how process
    backends achieve promptness without one.  ``reason`` (optional,
    recorded by the first :meth:`set`) travels into the
    :class:`~repro.core.errors.QueryCancelled` message, so an admin kill
    reads as an admin kill rather than a sibling budget trip.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    def set(self, reason: str | None = None) -> None:
        if reason is not None and self.reason is None:
            self.reason = reason
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CancelToken(set={self.is_set()})"


@dataclass(frozen=True)
class QueryContext:
    """Identity and budgets of one query, picklable across backends.

    ``query_id`` names the query submission; ``trace_id`` names the
    execution attempt.  Both are stamped on every journal event emitted
    for this query — including per-shard worker events — which is what
    lets :mod:`repro.obs.journal` stitch a parallel run back into one
    lifecycle record.
    """

    query_id: str
    trace_id: str
    deadline_unix: float | None = None
    deadline_ms: float | None = None
    max_pairs: int | None = None
    journal: bool = False

    @classmethod
    def new(
        cls,
        *,
        deadline_ms: float | None = None,
        max_pairs: int | None = None,
        journal: bool = False,
        clock: Callable[[], float] = time.time,
    ) -> "QueryContext":
        """Mint a context at submission time.

        The relative ``deadline_ms`` budget is converted to an absolute
        ``deadline_unix`` here, once, so every worker — thread or process
        — measures against the same instant.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ReproError(f"deadline_ms must be > 0, got {deadline_ms}")
        if max_pairs is not None and max_pairs < 1:
            raise ReproError(f"max_pairs must be >= 1, got {max_pairs}")
        deadline_unix = None if deadline_ms is None else clock() + deadline_ms / 1000.0
        return cls(
            query_id=new_query_id(),
            trace_id=new_trace_id(),
            deadline_unix=deadline_unix,
            deadline_ms=deadline_ms,
            max_pairs=max_pairs,
            journal=journal,
        )

    @property
    def governed(self) -> bool:
        """Whether any budget is set (a governor is worth building)."""
        return self.deadline_unix is not None or self.max_pairs is not None


class ResourceGovernor:
    """Enforces one query's budgets at cooperative checkpoints.

    Parameters
    ----------
    deadline_unix:
        Absolute wall-clock cutoff (``time.time()`` scale), or None.
    deadline_ms:
        The original relative budget, kept for error messages only.
    max_pairs:
        Cap on ``EvaluationStats.pairs_examined`` (plus any abstract
        work units charged via :meth:`charge`), or None.
    cancel:
        Optional shared :class:`CancelToken`; when set, the next
        checkpoint raises :class:`~repro.core.errors.QueryCancelled`.
    clock:
        Injectable time source for tests.
    """

    def __init__(
        self,
        *,
        deadline_unix: float | None = None,
        deadline_ms: float | None = None,
        max_pairs: int | None = None,
        cancel: CancelToken | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.deadline_unix = deadline_unix
        self.deadline_ms = deadline_ms
        self.max_pairs = max_pairs
        self.cancel = cancel
        self._clock = clock
        self._started = clock()
        self._charged = 0
        #: live progress, refreshed at every checkpoint — the inflight
        #: introspection surface (``/v1/admin/inflight``) reads these
        #: without any locking (single int/float writes are atomic).
        self.checkpoints = 0
        self.pairs_seen = 0

    @classmethod
    def from_context(
        cls,
        ctx: QueryContext,
        *,
        cancel: CancelToken | None = None,
        clock: Callable[[], float] = time.time,
    ) -> "ResourceGovernor | None":
        """The governor for ``ctx``, or None when nothing is budgeted."""
        if not ctx.governed and cancel is None:
            return None
        return cls(
            deadline_unix=ctx.deadline_unix,
            deadline_ms=ctx.deadline_ms,
            max_pairs=ctx.max_pairs,
            cancel=cancel,
            clock=clock,
        )

    def charge(self, units: int) -> None:
        """Charge abstract work units against the ``max_pairs`` budget.

        Used by code paths with no pairwise statistics (the counting DP
        scans positions, never pairs); the units count toward the same
        budget so ``max_pairs`` bounds *work*, not just materialisation.
        """
        self._charged += units

    def check(self, stats: "EvaluationStats | None" = None) -> None:
        """One cooperative checkpoint; raises a typed governor error.

        Order matters: cancellation first (a sibling already tripped, so
        report the cooperative kill, not a coincidental local budget),
        then the pairs budget, then the deadline.
        """
        self.checkpoints += 1
        if stats is not None:
            self.pairs_seen = self._charged + stats.pairs_examined
        if self.cancel is not None and self.cancel.is_set():
            reason = self.cancel.reason or "a sibling shard exhausted the budget"
            raise QueryCancelled(
                f"query cancelled: {reason}",
                partial_stats=_detach(stats),
            )
        if self.max_pairs is not None:
            examined = self._charged + (0 if stats is None else stats.pairs_examined)
            if examined > self.max_pairs:
                raise QueryBudgetExceeded(
                    f"query exceeded max_pairs={self.max_pairs} "
                    f"(examined {examined}); raise the budget or refine "
                    f"the pattern",
                    limit=self.max_pairs,
                    examined=examined,
                    partial_stats=_detach(stats),
                )
        if self.deadline_unix is not None:
            now = self._clock()
            if now >= self.deadline_unix:
                elapsed_ms = (now - self._started) * 1000.0
                budget = (
                    f"{self.deadline_ms:g}ms"
                    if self.deadline_ms is not None
                    else "the absolute deadline"
                )
                raise QueryTimeout(
                    f"query exceeded its deadline of {budget} "
                    f"(ran {elapsed_ms:.1f}ms in this process)",
                    deadline_ms=self.deadline_ms,
                    elapsed_ms=elapsed_ms,
                    partial_stats=_detach(stats),
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourceGovernor(deadline_unix={self.deadline_unix}, "
            f"max_pairs={self.max_pairs}, cancel={self.cancel!r})"
        )


def _detach(stats: "EvaluationStats | None") -> "EvaluationStats | None":
    """A registry-free snapshot of ``stats`` safe to carry in an error.

    Detaching prevents double-publishing when the partial stats object
    outlives the evaluation, and keeps the error picklable (registries
    hold locks).
    """
    if stats is None:
        return None
    from repro.core.eval.base import EvaluationStats

    return EvaluationStats(
        operator_evals=stats.operator_evals,
        pairs_examined=stats.pairs_examined,
        incidents_produced=stats.incidents_produced,
        max_live_incidents=stats.max_live_incidents,
        per_operator=dict(stats.per_operator),
    )

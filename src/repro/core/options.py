"""One immutable options object for the query facade.

:class:`EngineOptions` consolidates the per-query knobs that used to
sprawl across ``Query.__init__`` keyword arguments (engine, optimize,
max_incidents, tracer, metrics, jobs, parallel, progress) plus the cache
policy into a single frozen dataclass.  One options value fully
determines how a query executes, can be shared between queries, and
travels unchanged into the parallel executor and the CLI::

    from repro import EngineOptions, Query

    opts = EngineOptions(jobs=4, backend="process", cache=True)
    q = Query("UpdateRefer -> GetReimburse", opts)

The legacy keyword arguments still work on :class:`~repro.core.query.Query`
through a :class:`DeprecationWarning` shim; see ``README.md`` for the
migration snippet.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.core.backend import Backend
from repro.core.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.manager import QueryCache
    from repro.cache.policy import CachePolicy
    from repro.core.eval.base import Engine
    from repro.core.governor import CancelToken
    from repro.obs.journal import QueryJournal
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

__all__ = ["EngineOptions", "BACKENDS"]

#: Execution backends accepted by :attr:`EngineOptions.backend` — the
#: string values of :meth:`repro.core.backend.Backend.requestable`.
#: Kept as a plain string tuple for backwards compatibility; prefer the
#: :class:`~repro.core.backend.Backend` members.
BACKENDS: tuple[str, ...] = tuple(m.value for m in Backend.requestable())


@dataclass(frozen=True)
class EngineOptions:
    """How a query executes: engine, optimizer, parallelism, caching and
    observability, as one immutable value.

    Attributes
    ----------
    engine:
        Engine name (``"naive"``/``"indexed"``), an
        :class:`~repro.core.eval.base.Engine` instance, or None for the
        default indexed engine.
    optimize:
        Rewrite the pattern per log with the cost-based optimizer before
        evaluation (default True).
    max_incidents:
        Optional cap on materialised incident-set sizes
        (:class:`~repro.core.errors.BudgetExceededError` past it).
    tracer / metrics:
        Observability hooks (:mod:`repro.obs`) forwarded to the engine,
        the parallel executor and the cache.
    jobs:
        Worker count for sharded parallel evaluation; None keeps the
        query serial unless ``backend`` is set (then one worker per CPU).
    backend:
        Execution backend — a :class:`~repro.core.backend.Backend` member
        or its string value (one of :data:`BACKENDS`); None means serial
        evaluation (``"auto"`` when only ``jobs`` is given).  The
        sharded-executor members fan evaluation out over wid shards;
        ``Backend.SQLITE`` pushes the pattern down to SQL over the
        columnar schema instead.  Replaces the legacy ``parallel=``
        keyword; strings are coerced to members at construction.
    strategy:
        Shard-partitioning strategy for parallel runs (``"hash"`` or
        ``"range"``).
    progress:
        Optional ``progress(done, total)`` callback fired per completed
        shard on parallel runs.
    cache:
        Caching behaviour: None/False — off; True — the process-wide
        shared :func:`~repro.cache.manager.get_default_cache`; a
        :class:`~repro.cache.policy.CachePolicy` — a private cache under
        that policy; a :class:`~repro.cache.manager.QueryCache` — that
        cache, shared with whoever else holds it.  See
        ``docs/CACHING.md``.
    deadline_ms:
        Wall-clock budget per run, in milliseconds.  Converted to an
        absolute deadline at submission and enforced cooperatively in
        every engine (:class:`~repro.core.errors.QueryTimeout` past it).
    max_pairs:
        Budget on pairs examined (Lemma 1's cost driver) per run;
        :class:`~repro.core.errors.QueryBudgetExceeded` past it.
    journal:
        Optional :class:`~repro.obs.journal.QueryJournal` receiving the
        query's lifecycle events (submit/plan/cache/shard/evaluate and a
        terminal finish or killed record).  See ``docs/OBSERVABILITY.md``.
    cancel:
        Optional shared :class:`~repro.core.governor.CancelToken`; when
        an external party sets it, the run raises
        :class:`~repro.core.errors.QueryCancelled` at its next
        cooperative checkpoint (the admin-kill hook behind
        ``DELETE /v1/admin/inflight/{query_id}``).  Serial and thread
        backends only — the token does not pickle.
    """

    engine: "str | Engine | None" = None
    optimize: bool = True
    max_incidents: int | None = None
    tracer: "Tracer | None" = field(default=None, compare=False)
    metrics: "MetricsRegistry | None" = field(default=None, compare=False)
    jobs: int | None = None
    backend: "Backend | str | None" = None
    strategy: str = "hash"
    progress: Callable[[int, int], None] | None = field(
        default=None, compare=False
    )
    cache: "QueryCache | CachePolicy | bool | None" = None
    deadline_ms: float | None = None
    max_pairs: int | None = None
    journal: "QueryJournal | None" = field(default=None, compare=False)
    cancel: "CancelToken | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.backend is not None:
            object.__setattr__(self, "backend", Backend.coerce(self.backend))
        if self.backend is Backend.SQLITE:
            if self.engine is not None and self.engine != "sqlite":
                raise ReproError(
                    f"backend='sqlite' selects the SQL pushdown engine; "
                    f"it cannot be combined with engine={self.engine!r}"
                )
            if self.jobs is not None:
                raise ReproError(
                    "backend='sqlite' evaluates in-database; "
                    "it cannot be combined with jobs"
                )
        if self.jobs is not None and self.jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {self.jobs}")
        if self.strategy not in ("hash", "range"):
            raise ReproError(
                f"unknown shard strategy {self.strategy!r}; "
                f"available: ('hash', 'range')"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.max_pairs is not None and self.max_pairs < 1:
            raise ReproError(f"max_pairs must be >= 1, got {self.max_pairs}")

    @property
    def governed(self) -> bool:
        """Whether any per-run resource budget is configured."""
        return self.deadline_ms is not None or self.max_pairs is not None

    @property
    def is_parallel(self) -> bool:
        """Whether these options route evaluation through the sharded
        parallel executor.  ``Backend.SQLITE`` is *not* parallel — it
        pushes evaluation into the database instead of sharding."""
        if self.backend is Backend.SQLITE:
            return False
        return self.jobs is not None or self.backend is not None

    def replace(self, **changes: Any) -> "EngineOptions":
        """A copy with the given fields changed (``dataclasses.replace``)."""
        return replace(self, **changes)

    def __repr__(self) -> str:
        shown = []
        for name in (
            "engine",
            "max_incidents",
            "jobs",
            "backend",
            "cache",
            "deadline_ms",
            "max_pairs",
        ):
            value = getattr(self, name)
            if value is not None:
                shown.append(f"{name}={value!r}")
        if not self.optimize:
            shown.append("optimize=False")
        return f"EngineOptions({', '.join(shown)})"

"""Core of the reproduction: the paper's formal model, pattern algebra,
semantics, parser, evaluation engines, algebraic laws and optimizer."""

from repro.core.errors import (
    BudgetExceededError,
    EvaluationError,
    LogValidationError,
    OptimizerError,
    PatternSyntaxError,
    ReproError,
)
from repro.core.check import assignment, is_incident
from repro.core.incident import Incident, IncidentSet, reference_incidents
from repro.core.lint import Diagnostic, Linter, Severity, lint_pattern
from repro.core.model import END, START, Log, LogRecord
from repro.core.parser import ParseResult, SourceSpan, parse, parse_with_spans
from repro.core.pattern import (
    Atomic,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
    act,
    choice,
    consecutive,
    neg,
    parallel,
    sequential,
)
from repro.core.backend import Backend
from repro.core.options import BACKENDS, EngineOptions
from repro.core.query import ENGINES, Query
from repro.core.view import LogView, RecordsView

__all__ = [
    "EngineOptions",
    "Backend",
    "BACKENDS",
    "LogView",
    "RecordsView",
    "ReproError",
    "LogValidationError",
    "PatternSyntaxError",
    "EvaluationError",
    "BudgetExceededError",
    "OptimizerError",
    "Incident",
    "IncidentSet",
    "reference_incidents",
    "is_incident",
    "assignment",
    "Log",
    "LogRecord",
    "START",
    "END",
    "parse",
    "parse_with_spans",
    "ParseResult",
    "SourceSpan",
    "Diagnostic",
    "Linter",
    "Severity",
    "lint_pattern",
    "Pattern",
    "Atomic",
    "Consecutive",
    "Sequential",
    "Choice",
    "Parallel",
    "act",
    "neg",
    "consecutive",
    "sequential",
    "choice",
    "parallel",
    "Query",
    "ENGINES",
]

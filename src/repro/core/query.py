"""High-level query API.

:class:`Query` bundles pattern, engine, optimizer, cache and executor
behind the interface a downstream application uses::

    from repro import EngineOptions, Query

    q = Query("UpdateRefer -> GetReimburse")
    result = q.run(log)              # IncidentSet
    q.exists(log)                    # short-circuit boolean
    q.count(log)                     # number of incidents
    print(q.explain(log))            # chosen plan + cost estimates

Execution behaviour is configured with one immutable
:class:`~repro.core.options.EngineOptions` value::

    q = Query(pattern, EngineOptions(jobs=4, cache=True))

The pre-redesign keyword arguments (``engine=``, ``optimize=``,
``max_incidents=``, ``tracer=``, ``metrics=``, ``jobs=``, ``parallel=``,
``progress=``) still work but emit a :class:`DeprecationWarning`; they
are assembled into an equivalent ``EngineOptions`` internally.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.core.backend import Backend
from repro.core.errors import QueryGovernorError, ReproError
from repro.core.eval.base import Engine
from repro.core.eval.indexed import IndexedEngine
from repro.core.eval.naive import NaiveEngine
from repro.core.eval.tree import render_tree
from repro.core.eval.vectorized import VectorizedEngine
from repro.core.governor import QueryContext, ResourceGovernor
from repro.core.incident import IncidentSet
from repro.core.model import Log
from repro.core.optimizer.planner import OptimizedPlan, Optimizer
from repro.core.options import EngineOptions
from repro.core.parser import parse
from repro.core.pattern import Pattern
from repro.columnar.sqlite import SqliteEngine
from repro.obs.tracer import NULL_TRACER

__all__ = ["Query", "ENGINES"]

#: Registry of engine constructors, keyed by engine name.
ENGINES: dict[str, type[Engine]] = {
    NaiveEngine.name: NaiveEngine,
    IndexedEngine.name: IndexedEngine,
    VectorizedEngine.name: VectorizedEngine,
    SqliteEngine.name: SqliteEngine,
}

#: Sentinel distinguishing "not passed" from an explicit None.
_UNSET: Any = object()

#: Legacy Query keyword arguments and the EngineOptions field each maps to.
_LEGACY_FIELDS = {
    "engine": "engine",
    "optimize": "optimize",
    "max_incidents": "max_incidents",
    "tracer": "tracer",
    "metrics": "metrics",
    "jobs": "jobs",
    "parallel": "backend",
    "progress": "progress",
}


def _resolve_engine(
    engine: str | Engine | None,
    max_incidents: int | None,
    tracer=None,
    metrics=None,
) -> Engine:
    if isinstance(engine, Engine):
        return engine
    if engine is None:
        return IndexedEngine(
            max_incidents=max_incidents, tracer=tracer, metrics=metrics
        )
    try:
        return ENGINES[engine](
            max_incidents=max_incidents, tracer=tracer, metrics=metrics
        )
    except KeyError:
        raise ReproError(
            f"unknown engine {engine!r}; available: {sorted(ENGINES)}"
        ) from None


class Query:
    """A compiled incident-pattern query.

    Parameters
    ----------
    pattern:
        A :class:`~repro.core.pattern.Pattern` or a textual expression in
        the query syntax of :mod:`repro.core.parser`.
    options:
        An :class:`~repro.core.options.EngineOptions` value; None for the
        defaults (indexed engine, optimizer on, serial, no cache).
    **legacy:
        The pre-``EngineOptions`` keyword arguments, accepted with a
        :class:`DeprecationWarning` and merged into ``options``
        (``parallel=`` maps to ``EngineOptions.backend``).  Passing both
        ``options`` and a legacy keyword is an error.

    Attributes
    ----------
    options:
        The resolved :class:`~repro.core.options.EngineOptions`.
    engine:
        The live :class:`~repro.core.eval.base.Engine`.  With the memo
        cache layer active, serial execution, and a default/indexed
        engine, this is a memo-backed shared-scan engine whose
        per-``(wid, subpattern)`` results persist across runs (see
        ``docs/CACHING.md``).  Parallel runs use the result layer only:
        workers rebuild engines by name per shard.
    cache:
        The resolved :class:`~repro.cache.manager.QueryCache`, or None
        when caching is off.
    last_cache_layer:
        Which cache layer served the most recent :meth:`run` —
        ``"result"``, ``"memo"`` or None (cold).  Reported by
        :meth:`explain` and the CLI.
    """

    def __init__(
        self,
        pattern: Pattern | str,
        options: EngineOptions | None = None,
        *,
        engine: str | Engine | None = _UNSET,
        optimize: bool = _UNSET,
        max_incidents: int | None = _UNSET,
        tracer=_UNSET,
        metrics=_UNSET,
        jobs: int | None = _UNSET,
        parallel: str | None = _UNSET,
        progress=_UNSET,
    ):
        if isinstance(pattern, str):
            pattern = parse(pattern)
        if not isinstance(pattern, Pattern):
            raise TypeError(f"expected Pattern or str, got {type(pattern).__name__}")
        self.pattern = pattern

        legacy = {
            name: value
            for name, value in (
                ("engine", engine),
                ("optimize", optimize),
                ("max_incidents", max_incidents),
                ("tracer", tracer),
                ("metrics", metrics),
                ("jobs", jobs),
                ("parallel", parallel),
                ("progress", progress),
            )
            if value is not _UNSET
        }
        if legacy:
            if options is not None:
                raise TypeError(
                    "pass either an EngineOptions or the legacy keyword "
                    f"arguments, not both (got options and {sorted(legacy)})"
                )
            warnings.warn(
                f"Query keyword arguments {sorted(legacy)} are deprecated; "
                "pass an EngineOptions instead, e.g. "
                "Query(pattern, EngineOptions(jobs=4)) — note parallel= "
                "is now EngineOptions.backend",
                DeprecationWarning,
                stacklevel=2,
            )
            options = EngineOptions(
                **{_LEGACY_FIELDS[name]: value for name, value in legacy.items()}
            )
        self.options = options if options is not None else EngineOptions()

        from repro.cache.manager import resolve_cache

        self.cache = resolve_cache(self.options.cache)
        self.engine = self._build_engine()
        self.last_cache_layer: str | None = None
        self._last_plan: OptimizedPlan | None = None

    def _build_engine(self) -> Engine:
        opts = self.options
        if opts.backend is Backend.SQLITE:
            # the SQL pushdown backend *is* an engine: patterns compile to
            # SQL over the columnar schema, so there is nothing to shard
            return SqliteEngine(
                max_incidents=opts.max_incidents,
                tracer=opts.tracer,
                metrics=opts.metrics,
            )
        if (
            self.cache is not None
            and self.cache.policy.caches_memo
            and not opts.is_parallel
            and (opts.engine is None or opts.engine == IndexedEngine.name)
        ):
            # memo-backed indexed engine: per-(wid, subpattern) results
            # persist in the shared cache across runs and across queries
            from repro.exec.batch import SharedScanEngine

            return SharedScanEngine(
                max_incidents=opts.max_incidents,
                tracer=opts.tracer,
                metrics=opts.metrics,
                cache=self.cache,
            )
        return _resolve_engine(
            opts.engine, opts.max_incidents, opts.tracer, opts.metrics
        )

    # -- legacy attribute surface ------------------------------------------

    @property
    def optimize(self) -> bool:
        return self.options.optimize

    @property
    def jobs(self) -> int | None:
        return self.options.jobs

    @property
    def parallel(self) -> str | None:
        """Legacy alias of :attr:`EngineOptions.backend`."""
        return self.options.backend

    @property
    def progress(self):
        return self.options.progress

    # -- execution -------------------------------------------------------

    def plan(self, log: Log) -> OptimizedPlan:
        """The (possibly identity) plan chosen for ``log``."""
        if self.options.optimize:
            plan = Optimizer.for_log(log).optimize(self.pattern)
        else:
            plan = OptimizedPlan(
                original=self.pattern,
                optimized=self.pattern,
                original_cost=float("nan"),
                optimized_cost=float("nan"),
                transformations=["optimization disabled"],
            )
        self._last_plan = plan
        return plan

    @property
    def is_parallel(self) -> bool:
        """Whether :meth:`run`/:meth:`count` go through the sharded
        parallel executor."""
        return self.options.is_parallel

    def _executor(self, ctx: QueryContext | None = None):
        """Build the parallel executor for this query's configuration
        (imported lazily — :mod:`repro.exec` is optional machinery).

        The executor runs cache-less: the result layer is consulted and
        filled here in :meth:`run`, under the key of the *original*
        pattern (the executor only ever sees the optimized one)."""
        from repro.exec.parallel import ParallelExecutor

        opts = self.options
        tracer = opts.tracer
        if tracer is None and getattr(self.engine.tracer, "enabled", False):
            tracer = self.engine.tracer
        return ParallelExecutor(
            jobs=opts.jobs,
            backend=opts.backend if opts.backend is not None else "auto",
            strategy=opts.strategy,
            engine=self.engine,
            tracer=tracer,
            metrics=opts.metrics,
            progress=opts.progress,
            ctx=ctx,
            journal=opts.journal,
        )

    def _begin_run(self, op: str):
        """Mint the per-run query context, recorder and governor.

        One context per ``run``/``exists``/``count`` call: budgets are
        measured from submission (the deadline is converted to an
        absolute wall-clock cutoff here), and the ``query_id``/
        ``trace_id`` stamped on every journal event are fresh per run.
        Serial runs attach the governor to the live engine; parallel
        runs ship the context instead and let each worker build its own.
        """
        opts = self.options
        ctx: QueryContext | None = None
        recorder = None
        if opts.journal is not None or opts.governed or opts.cancel is not None:
            ctx = QueryContext.new(
                deadline_ms=opts.deadline_ms,
                max_pairs=opts.max_pairs,
                journal=opts.journal is not None,
            )
        if opts.journal is not None and ctx is not None:
            from repro.obs.journal import RunRecorder

            recorder = RunRecorder(
                opts.journal, ctx, pattern=str(self.pattern), op=op
            )
            recorder.submit()
        governor = None
        if ctx is not None and not self.is_parallel:
            # a bare cancel token still builds a governor (from_context
            # handles the budget-free case), so external cancellation
            # works even on unbudgeted runs
            governor = ResourceGovernor.from_context(ctx, cancel=opts.cancel)
        self.engine.governor = governor
        return ctx, recorder

    def _finish_run(self, recorder, *, stats, incidents, cache_before, **payload):
        """Emit the terminal ``finish`` event with cache attribution."""
        if recorder is None:
            return
        if cache_before is not None and self.cache is not None:
            delta = self.cache.attribution(cache_before)
            payload.setdefault("cache_result_hits", delta["result_hits"])
            payload.setdefault("cache_memo_hits", delta["memo_hits"])
        if self.last_cache_layer is not None:
            payload.setdefault("cache_layer", self.last_cache_layer)
        recorder.finish(stats=stats, incidents=incidents, **payload)

    def _result_key(self, log: Log):
        """The result-layer key for this query over ``log``, or None when
        the result layer is off.  Keyed on the *original* pattern: the
        cost-based plan may differ per log, but the result it computes
        does not (that is the optimizer's correctness contract)."""
        if self.cache is None or not self.cache.policy.caches_results:
            return None
        return self.cache.result_key(
            log, self.pattern, max_incidents=self.options.max_incidents
        )

    def _cached_result(self, key):
        if key is None:
            return None
        tracer = self.options.tracer if self.options.tracer is not None else NULL_TRACER
        return self.cache.get_result(key, tracer=tracer)

    def run(self, log: Log) -> IncidentSet:
        """Evaluate the query, returning the full incident set.

        With caching on, a warm result-layer hit returns before the
        optimizer even plans; a cold run is evaluated, stored, and
        reported through :attr:`last_cache_layer`.

        With budgets configured (``deadline_ms``/``max_pairs``) the run
        is governed: the typed
        :class:`~repro.core.errors.QueryTimeout` /
        :class:`~repro.core.errors.QueryBudgetExceeded` carries the
        partial stats, and a configured journal records the lifecycle
        ending in a terminal ``finish`` or ``killed`` event.
        """
        self.last_cache_layer = None
        ctx, recorder = self._begin_run("run")
        cache_before = (
            self.cache.attribution()
            if recorder is not None and self.cache is not None
            else None
        )
        try:
            key = self._result_key(log)
            hit = self._cached_result(key)
            if recorder is not None and key is not None:
                recorder.cache_probe(probe="result", hit=hit is not None)
            if hit is not None:
                self.last_cache_layer = "result"
                self.engine.last_stats = hit.stats
                self._finish_run(
                    recorder,
                    stats=hit.stats,
                    incidents=len(hit.incidents),
                    cache_before=cache_before,
                )
                return hit.incidents

            optimized = self.plan(log).optimized
            if recorder is not None:
                recorder.plan(
                    optimized=str(optimized), changed=optimized != self.pattern
                )
            if self.is_parallel:
                outcome = self._executor(ctx).evaluate(log, optimized)
                self.engine.last_stats = outcome.stats
                assert outcome.incidents is not None
                result = outcome.incidents
            else:
                memo_before = getattr(self.engine, "memo_hits", 0)
                result = self.engine.evaluate(log, optimized)
                if getattr(self.engine, "memo_hits", 0) > memo_before:
                    self.last_cache_layer = "memo"
                if recorder is not None:
                    stats = self.engine.last_stats
                    recorder.evaluate(
                        pairs=0 if stats is None else stats.pairs_examined,
                        incidents=len(result),
                    )
            if key is not None:
                self.cache.put_result(key, result, self.engine.last_stats)
            self._finish_run(
                recorder,
                stats=self.engine.last_stats,
                incidents=len(result),
                cache_before=cache_before,
            )
            return result
        except QueryGovernorError as exc:
            if recorder is not None:
                recorder.killed(exc)
            raise
        finally:
            self.engine.governor = None

    def exists(self, log: Log) -> bool:
        """Whether at least one incident exists (short-circuits when the
        engine supports it).  Always serial: the greedy short-circuit
        scan typically finishes before a worker pool even starts."""
        _, recorder = self._begin_run("exists")
        try:
            hit = self._cached_result(self._result_key(log))
            if hit is not None:
                self.last_cache_layer = "result"
                found = bool(hit.incidents)
            else:
                self.last_cache_layer = None
                found = self.engine.exists(log, self.plan(log).optimized)
            self._finish_run(
                recorder,
                stats=None if hit is not None else self.engine.last_stats,
                incidents=int(found),
                cache_before=None,
            )
            return found
        except QueryGovernorError as exc:
            if recorder is not None:
                recorder.killed(exc)
            raise
        finally:
            self.engine.governor = None

    def count(self, log: Log) -> int:
        """Number of incidents in ``log``.

        Delegates to the engine, which may use the output-free counting
        DP for ⊙/⊳ chains instead of materialising the incident set.
        With ``jobs``/``backend`` set, per-shard counts are summed."""
        ctx, recorder = self._begin_run("count")
        try:
            hit = self._cached_result(self._result_key(log))
            if hit is not None:
                self.last_cache_layer = "result"
                n = len(hit.incidents)
            else:
                self.last_cache_layer = None
                optimized = self.plan(log).optimized
                if recorder is not None:
                    recorder.plan(
                        optimized=str(optimized), changed=optimized != self.pattern
                    )
                if self.is_parallel:
                    n = self._executor(ctx).count(log, optimized)
                else:
                    n = self.engine.count(log, optimized)
            self._finish_run(
                recorder,
                stats=None if hit is not None else self.engine.last_stats,
                incidents=n,
                cache_before=None,
            )
            return n
        except QueryGovernorError as exc:
            if recorder is not None:
                recorder.killed(exc)
            raise
        finally:
            self.engine.governor = None

    @staticmethod
    def evaluate_batch(log: Log, patterns, **kwargs):
        """Evaluate many queries over one log with shared subpattern
        scans — see :func:`repro.exec.batch.evaluate_batch`, of which
        this is a convenience re-export.

        >>> # doctest: +SKIP
        >>> batch = Query.evaluate_batch(log, ["A -> B", "A -> B -> C"])
        >>> batch.results[0]                    # incidents of "A -> B"
        """
        from repro.exec.batch import evaluate_batch

        return evaluate_batch(log, patterns, **kwargs)

    def matching_instances(self, log: Log) -> tuple[int, ...]:
        """The workflow instance ids containing at least one incident."""
        return self.run(log).wids()

    # -- introspection -----------------------------------------------------

    def explain(self, log: Log) -> str:
        """Human-readable execution plan for ``log``: the incident tree of
        the optimized pattern, cost estimates, and — after a cached run —
        which cache layer served it."""
        plan = self.plan(log)
        lines = [
            plan.explain(),
            "incident tree:",
            render_tree(plan.optimized),
            f"engine: {self.engine.name}",
        ]
        if self.cache is not None:
            served = self.last_cache_layer or "none (cold)"
            lines.append(f"cache: {served}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Query({str(self.pattern)!r}, engine={self.engine.name})"

"""High-level query API.

:class:`Query` bundles pattern, engine and optimizer behind the interface a
downstream application uses::

    from repro import Query, Log

    q = Query("UpdateRefer -> GetReimburse")
    result = q.run(log)              # IncidentSet
    q.exists(log)                    # short-circuit boolean
    q.count(log)                     # number of incidents
    print(q.explain(log))            # chosen plan + cost estimates

Engines are pluggable by name (``"naive"``, ``"indexed"``) or instance;
optimization can be disabled per query for A/B benchmarking.
"""

from __future__ import annotations

from repro.core.errors import ReproError
from repro.core.eval.base import Engine
from repro.core.eval.indexed import IndexedEngine
from repro.core.eval.naive import NaiveEngine
from repro.core.eval.tree import render_tree
from repro.core.incident import IncidentSet
from repro.core.model import Log
from repro.core.optimizer.planner import OptimizedPlan, Optimizer
from repro.core.parser import parse
from repro.core.pattern import Pattern

__all__ = ["Query", "ENGINES"]

#: Registry of engine constructors, keyed by engine name.
ENGINES: dict[str, type[Engine]] = {
    NaiveEngine.name: NaiveEngine,
    IndexedEngine.name: IndexedEngine,
}


def _resolve_engine(
    engine: str | Engine | None,
    max_incidents: int | None,
    tracer=None,
    metrics=None,
) -> Engine:
    if isinstance(engine, Engine):
        return engine
    if engine is None:
        return IndexedEngine(
            max_incidents=max_incidents, tracer=tracer, metrics=metrics
        )
    try:
        return ENGINES[engine](
            max_incidents=max_incidents, tracer=tracer, metrics=metrics
        )
    except KeyError:
        raise ReproError(
            f"unknown engine {engine!r}; available: {sorted(ENGINES)}"
        ) from None


class Query:
    """A compiled incident-pattern query.

    Parameters
    ----------
    pattern:
        A :class:`~repro.core.pattern.Pattern` or a textual expression in
        the query syntax of :mod:`repro.core.parser`.
    engine:
        Engine name (``"naive"``/``"indexed"``), engine instance, or None
        for the default indexed engine.
    optimize:
        When True (default) the pattern is rewritten per log by the
        cost-based optimizer before evaluation.
    max_incidents:
        Optional cap on materialised incidents (see
        :class:`~repro.core.eval.base.Engine`).
    tracer / metrics:
        Optional observability hooks forwarded to the engine when it is
        constructed here (ignored when an engine *instance* is passed —
        configure that engine directly).  See :mod:`repro.obs`.
    jobs:
        Worker count for parallel evaluation.  Setting it routes
        :meth:`run` and :meth:`count` through the sharded
        :class:`~repro.exec.parallel.ParallelExecutor`; results are
        byte-for-byte identical to serial evaluation (see
        ``docs/PARALLELISM.md``).
    parallel:
        Execution backend for the parallel path: ``"auto"`` (default when
        only ``jobs`` is given — a cost model keeps cheap queries
        serial), ``"serial"``, ``"thread"`` or ``"process"``.  Setting it
        without ``jobs`` uses one worker per CPU.
    progress:
        Optional ``progress(done, total)`` callback fired per completed
        shard on parallel runs (see
        :class:`~repro.exec.parallel.ParallelExecutor`); ignored on
        serial evaluation, which has no shards to report.
    """

    def __init__(
        self,
        pattern: Pattern | str,
        *,
        engine: str | Engine | None = None,
        optimize: bool = True,
        max_incidents: int | None = None,
        tracer=None,
        metrics=None,
        jobs: int | None = None,
        parallel: str | None = None,
        progress=None,
    ):
        if isinstance(pattern, str):
            pattern = parse(pattern)
        if not isinstance(pattern, Pattern):
            raise TypeError(f"expected Pattern or str, got {type(pattern).__name__}")
        self.pattern = pattern
        self.engine = _resolve_engine(engine, max_incidents, tracer, metrics)
        self.optimize = optimize
        self.jobs = jobs
        self.parallel = parallel
        self.progress = progress
        self._tracer = tracer
        self._metrics = metrics
        self._last_plan: OptimizedPlan | None = None

    # -- execution -------------------------------------------------------

    def plan(self, log: Log) -> OptimizedPlan:
        """The (possibly identity) plan chosen for ``log``."""
        if self.optimize:
            plan = Optimizer.for_log(log).optimize(self.pattern)
        else:
            plan = OptimizedPlan(
                original=self.pattern,
                optimized=self.pattern,
                original_cost=float("nan"),
                optimized_cost=float("nan"),
                transformations=["optimization disabled"],
            )
        self._last_plan = plan
        return plan

    @property
    def is_parallel(self) -> bool:
        """Whether :meth:`run`/:meth:`count` go through the sharded
        parallel executor."""
        return self.jobs is not None or self.parallel is not None

    def _executor(self):
        """Build the parallel executor for this query's configuration
        (imported lazily — :mod:`repro.exec` is optional machinery)."""
        from repro.exec.parallel import ParallelExecutor

        tracer = self._tracer
        if tracer is None and getattr(self.engine.tracer, "enabled", False):
            tracer = self.engine.tracer
        return ParallelExecutor(
            jobs=self.jobs,
            backend=self.parallel if self.parallel is not None else "auto",
            engine=self.engine,
            tracer=tracer,
            metrics=self._metrics,
            progress=self.progress,
        )

    def run(self, log: Log) -> IncidentSet:
        """Evaluate the query, returning the full incident set."""
        optimized = self.plan(log).optimized
        if self.is_parallel:
            result = self._executor().evaluate(log, optimized)
            self.engine.last_stats = result.stats
            assert result.incidents is not None
            return result.incidents
        return self.engine.evaluate(log, optimized)

    def exists(self, log: Log) -> bool:
        """Whether at least one incident exists (short-circuits when the
        engine supports it).  Always serial: the greedy short-circuit
        scan typically finishes before a worker pool even starts."""
        return self.engine.exists(log, self.plan(log).optimized)

    def count(self, log: Log) -> int:
        """Number of incidents in ``log``.

        Delegates to the engine, which may use the output-free counting
        DP for ⊙/⊳ chains instead of materialising the incident set.
        With ``jobs``/``parallel`` set, per-shard counts are summed."""
        optimized = self.plan(log).optimized
        if self.is_parallel:
            return self._executor().count(log, optimized)
        return self.engine.count(log, optimized)

    @staticmethod
    def evaluate_batch(log: Log, patterns, **kwargs):
        """Evaluate many queries over one log with shared subpattern
        scans — see :func:`repro.exec.batch.evaluate_batch`, of which
        this is a convenience re-export.

        >>> # doctest: +SKIP
        >>> batch = Query.evaluate_batch(log, ["A -> B", "A -> B -> C"])
        >>> batch.results[0]                    # incidents of "A -> B"
        """
        from repro.exec.batch import evaluate_batch

        return evaluate_batch(log, patterns, **kwargs)

    def matching_instances(self, log: Log) -> tuple[int, ...]:
        """The workflow instance ids containing at least one incident."""
        return self.run(log).wids()

    # -- introspection -----------------------------------------------------

    def explain(self, log: Log) -> str:
        """Human-readable execution plan for ``log``: the incident tree of
        the optimized pattern plus cost estimates."""
        plan = self.plan(log)
        return "\n".join(
            [
                plan.explain(),
                "incident tree:",
                render_tree(plan.optimized),
                f"engine: {self.engine.name}",
            ]
        )

    def __repr__(self) -> str:
        return f"Query({str(self.pattern)!r}, engine={self.engine.name})"

"""Workflow-execution substrate.

The paper's framework (its Figure 2) has a *workflow execution engine*
advancing many instances concurrently while appending their activity
executions — with input/output attribute maps — to a shared log.  This
package simulates that engine:

* :mod:`repro.workflow.spec` — block-structured process specifications
  (tasks, sequence, exclusive/parallel gateways, loops, optional blocks)
  with attribute read/write effects;
* :mod:`repro.workflow.engine` — a multi-instance interpreter that
  interleaves instances under a pluggable scheduler and emits well-formed
  logs (Definition 2 by construction);
* :mod:`repro.workflow.scheduler` — interleaving policies;
* :mod:`repro.workflow.models` — ready-made processes, including the
  medical-clinic referral workflow of the paper's Example 2 which
  regenerates logs shaped like Figure 3;
* :mod:`repro.workflow.analysis` — static may-analysis of specs and
  sound refutation of unsatisfiable incident queries (`may_match`).
"""

from repro.workflow.analysis import (
    ModelProfile,
    analyze,
    explain_mismatch,
    may_match,
)
from repro.workflow.engine import SimulationConfig, WorkflowEngine
from repro.workflow.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    WeightedScheduler,
)
from repro.workflow.spec import (
    ActivityDef,
    Block,
    Loop,
    Maybe,
    Par,
    Sequence,
    Step,
    WorkflowSpec,
    Xor,
)

__all__ = [
    "ModelProfile",
    "analyze",
    "may_match",
    "explain_mismatch",
    "WorkflowSpec",
    "ActivityDef",
    "Block",
    "Step",
    "Sequence",
    "Xor",
    "Par",
    "Loop",
    "Maybe",
    "WorkflowEngine",
    "SimulationConfig",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "WeightedScheduler",
]

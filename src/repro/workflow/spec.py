"""Block-structured workflow specifications.

A workflow is described by a tree of control-flow *blocks* — the
structured fragment of BPMN that also motivates the paper's four pattern
operators:

* :class:`Step` — execute one activity (→ atomic patterns);
* :class:`Sequence` — blocks one after another (→ ⊙ / ⊳);
* :class:`Xor` — exclusive gateway: exactly one branch runs (→ ⊗);
* :class:`Par` — parallel gateway: all branches run, interleaved (→ ⊕);
* :class:`Loop` — structured loop with a continuation probability;
* :class:`Maybe` — optional block.

Activities are declared once per workflow as :class:`ActivityDef` with the
attributes they read/write and an *effect* function computing the written
values from the instance's current attribute state — this is what
populates the ``αin``/``αout`` maps of the log records (Definition 1).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator, Mapping, Sequence as Seq
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import WorkflowDefinitionError
from repro.core.model import END, START

__all__ = [
    "Effect",
    "ActivityDef",
    "Block",
    "Step",
    "Sequence",
    "Xor",
    "Par",
    "Loop",
    "Maybe",
    "WorkflowSpec",
]

#: An effect computes the attribute values an activity writes, given the
#: instance's current attribute state and the simulation RNG.
Effect = Callable[[Mapping[str, Any], random.Random], Mapping[str, Any]]


def _no_effect(state: Mapping[str, Any], rng: random.Random) -> Mapping[str, Any]:
    return {}


@dataclass(frozen=True)
class ActivityDef:
    """Declaration of one workflow activity.

    Parameters
    ----------
    name:
        The activity name recorded in log records.
    reads:
        Attribute names the activity reads; their current values populate
        the record's ``αin`` map.
    writes:
        Attribute names the activity may write.  The effect's returned map
        must stay within this set.
    effect:
        Computes the written values from the current state.  Defaults to
        writing nothing.
    """

    name: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    effect: Effect = _no_effect

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowDefinitionError("activity name must be nonempty")
        if self.name in (START, END):
            raise WorkflowDefinitionError(
                f"{self.name} is a reserved sentinel activity name"
            )


class Block:
    """Base class of control-flow blocks.

    A block *unfolds*, under an RNG, into a lazy sequence of activity
    names; the engine interleaves unfoldings of many instances into one
    log.  ``unfold`` resolves gateways (Xor choice, Loop continuation,
    Par interleaving) at unfold time, so each call is one simulated run of
    the block.
    """

    def unfold(self, rng: random.Random) -> Iterator[str]:
        """Yield the activity names of one randomly resolved run."""
        raise NotImplementedError

    def activities(self) -> frozenset[str]:
        """All activity names that can occur in some run of the block."""
        raise NotImplementedError


@dataclass(frozen=True)
class Step(Block):
    """Execute one activity."""

    activity: str

    def unfold(self, rng: random.Random) -> Iterator[str]:
        yield self.activity

    def activities(self) -> frozenset[str]:
        return frozenset((self.activity,))


@dataclass(frozen=True)
class Sequence(Block):
    """Run blocks one after another."""

    blocks: tuple[Block, ...]

    def __init__(self, *blocks: Block | str):
        object.__setattr__(self, "blocks", tuple(_coerce(b) for b in blocks))
        if not self.blocks:
            raise WorkflowDefinitionError("Sequence needs at least one block")

    def unfold(self, rng: random.Random) -> Iterator[str]:
        for block in self.blocks:
            yield from block.unfold(rng)

    def activities(self) -> frozenset[str]:
        return frozenset().union(*(b.activities() for b in self.blocks))


@dataclass(frozen=True)
class Xor(Block):
    """Exclusive (XOR) gateway: exactly one branch runs.

    ``weights`` are relative branch probabilities (uniform by default).
    """

    branches: tuple[Block, ...]
    weights: tuple[float, ...]

    def __init__(self, *branches: Block | str, weights: Seq[float] | None = None):
        blocks = tuple(_coerce(b) for b in branches)
        if len(blocks) < 2:
            raise WorkflowDefinitionError("Xor needs at least two branches")
        if weights is None:
            weights = tuple(1.0 for _ in blocks)
        else:
            weights = tuple(float(w) for w in weights)
        if len(weights) != len(blocks):
            raise WorkflowDefinitionError("one weight per Xor branch required")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise WorkflowDefinitionError("Xor weights must be nonnegative, sum > 0")
        object.__setattr__(self, "branches", blocks)
        object.__setattr__(self, "weights", weights)

    def unfold(self, rng: random.Random) -> Iterator[str]:
        branch = rng.choices(self.branches, weights=self.weights, k=1)[0]
        yield from branch.unfold(rng)

    def activities(self) -> frozenset[str]:
        return frozenset().union(*(b.activities() for b in self.branches))


@dataclass(frozen=True)
class Par(Block):
    """Parallel (AND) gateway: all branches run, randomly interleaved.

    The interleaving preserves each branch's internal order — exactly the
    "shuffle" the paper's ⊕ operator matches.
    """

    branches: tuple[Block, ...]

    def __init__(self, *branches: Block | str):
        blocks = tuple(_coerce(b) for b in branches)
        if len(blocks) < 2:
            raise WorkflowDefinitionError("Par needs at least two branches")
        object.__setattr__(self, "branches", blocks)

    def unfold(self, rng: random.Random) -> Iterator[str]:
        queues = [list(b.unfold(rng)) for b in self.branches]
        cursors = [0] * len(queues)
        live = [i for i, q in enumerate(queues) if q]
        while live:
            i = rng.choice(live)
            yield queues[i][cursors[i]]
            cursors[i] += 1
            if cursors[i] >= len(queues[i]):
                live.remove(i)

    def activities(self) -> frozenset[str]:
        return frozenset().union(*(b.activities() for b in self.branches))


@dataclass(frozen=True)
class Loop(Block):
    """Structured loop: run ``body``, then repeat with probability
    ``again`` up to ``max_iterations`` total runs."""

    body: Block
    again: float = 0.5
    max_iterations: int = 10

    def __init__(self, body: Block | str, again: float = 0.5, max_iterations: int = 10):
        if not 0.0 <= again < 1.0:
            raise WorkflowDefinitionError("Loop continuation must be in [0, 1)")
        if max_iterations < 1:
            raise WorkflowDefinitionError("Loop needs at least one iteration")
        object.__setattr__(self, "body", _coerce(body))
        object.__setattr__(self, "again", again)
        object.__setattr__(self, "max_iterations", max_iterations)

    def unfold(self, rng: random.Random) -> Iterator[str]:
        for iteration in range(self.max_iterations):
            yield from self.body.unfold(rng)
            if rng.random() >= self.again:
                break

    def activities(self) -> frozenset[str]:
        return self.body.activities()


@dataclass(frozen=True)
class Maybe(Block):
    """Optional block: runs with probability ``prob``."""

    block: Block
    prob: float = 0.5

    def __init__(self, block: Block | str, prob: float = 0.5):
        if not 0.0 <= prob <= 1.0:
            raise WorkflowDefinitionError("Maybe probability must be in [0, 1]")
        object.__setattr__(self, "block", _coerce(block))
        object.__setattr__(self, "prob", prob)

    def unfold(self, rng: random.Random) -> Iterator[str]:
        if rng.random() < self.prob:
            yield from self.block.unfold(rng)

    def activities(self) -> frozenset[str]:
        return self.block.activities()


def _coerce(block: Block | str) -> Block:
    """Allow bare activity names wherever a block is expected."""
    if isinstance(block, Block):
        return block
    if isinstance(block, str):
        return Step(block)
    raise WorkflowDefinitionError(f"cannot use {block!r} as a workflow block")


@dataclass(frozen=True)
class WorkflowSpec:
    """A complete workflow model.

    Parameters
    ----------
    name:
        Model name (metadata only).
    root:
        The top-level control-flow block.
    activities:
        Declarations for (at least) every activity the root block can
        reach.  Undeclared activities get an empty declaration (no
        reads/writes) when ``strict`` is False.
    initial_attrs:
        Factory producing each new instance's initial attribute state.
    """

    name: str
    root: Block
    activities: Mapping[str, ActivityDef] = field(default_factory=dict)
    initial_attrs: Callable[[], dict[str, Any]] = dict
    strict: bool = True

    def __post_init__(self) -> None:
        declared = set(self.activities)
        for activity_def in self.activities.values():
            if not isinstance(activity_def, ActivityDef):
                raise WorkflowDefinitionError(
                    f"activity declarations must be ActivityDef, got "
                    f"{type(activity_def).__name__}"
                )
        reachable = self.root.activities()
        missing = reachable - declared
        if missing and self.strict:
            raise WorkflowDefinitionError(
                f"workflow {self.name!r}: activities used in control flow but "
                f"not declared: {sorted(missing)}"
            )

    @classmethod
    def from_definitions(
        cls,
        name: str,
        root: Block,
        definitions: Seq[ActivityDef],
        *,
        initial_attrs: Callable[[], dict[str, Any]] = dict,
    ) -> "WorkflowSpec":
        """Convenience constructor from a list of :class:`ActivityDef`."""
        return cls(
            name=name,
            root=root,
            activities={d.name: d for d in definitions},
            initial_attrs=initial_attrs,
        )

    def definition(self, activity: str) -> ActivityDef:
        """The declaration for ``activity`` (empty declaration when not
        declared and ``strict`` is off)."""
        try:
            return self.activities[activity]
        except KeyError:
            if self.strict:
                raise WorkflowDefinitionError(
                    f"undeclared activity {activity!r} in workflow {self.name!r}"
                ) from None
            return ActivityDef(activity)

    def activity_names(self) -> frozenset[str]:
        """All activity names reachable from the root block."""
        return self.root.activities()

    def sample_trace(self, rng: random.Random | int | None = None) -> list[str]:
        """One randomly resolved activity sequence (without sentinels)."""
        if not isinstance(rng, random.Random):
            rng = random.Random(rng)
        return list(self.root.unfold(rng))

"""Multi-instance workflow execution engine.

Simulates the runtime of the paper's Figure 2: many concurrently active
workflow instances advance step by step under a scheduler, and every
activity execution appends one log record — with the activity's input and
output attribute maps — to a single global log.

Logs produced here are well-formed by construction (Definition 2): each
instance starts with ``START``, instance-specific sequence numbers are
consecutive, and completed instances end with ``END``.  ``Log`` validation
is still run once at the end as a safety net.

Example
-------
>>> from repro.workflow import WorkflowEngine, SimulationConfig
>>> from repro.workflow.models import clinic_referral_workflow
>>> engine = WorkflowEngine(clinic_referral_workflow())
>>> log = engine.run(SimulationConfig(instances=3, seed=42))
>>> log.wids
(1, 2, 3)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import WorkflowRuntimeError
from repro.core.model import END, START, Log, LogRecord
from repro.workflow.scheduler import RandomScheduler, Scheduler
from repro.workflow.spec import WorkflowSpec

__all__ = ["SimulationConfig", "WorkflowEngine"]


class _SimClock:
    """Global simulated wall clock with exponential inter-event gaps.

    The clock draws from its own derived RNG so that enabling timestamps
    never changes the simulated control flow for a given seed.
    """

    __slots__ = ("_enabled", "_mean", "_rng", "now")

    def __init__(self, config: "SimulationConfig", rng: random.Random):
        self._enabled = config.record_timestamps
        self._mean = config.mean_step_seconds
        seed = None if config.seed is None else config.seed ^ 0x5F5E1007
        self._rng = random.Random(seed)
        self.now = 0.0

    def stamp(self) -> dict:
        if not self._enabled:
            return {}
        self.now += self._rng.expovariate(1.0 / self._mean)
        return {"_ts": round(self.now, 3)}


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Attributes
    ----------
    instances:
        Number of workflow instances to run.
    seed:
        RNG seed; runs are fully deterministic given a seed.
    arrival_stagger:
        Number of global steps between consecutive instance launches
        (0 = all instances start eligible immediately).  Staggering makes
        logs where early instances finish before late ones start, like
        real multi-tenant logs.
    complete_probability:
        Probability that an instance that exhausts its control flow writes
        an ``END`` record.  Below 1.0, some instances remain incomplete —
        the paper notes logs may contain unfinished instances.
    max_steps:
        Safety bound on total simulated steps.
    record_timestamps:
        When True, every record's output map carries a ``_ts`` attribute:
        the simulated wall-clock seconds (from a global exponential-gap
        clock) at which the activity executed.  This enables the duration
        analytics of :mod:`repro.analytics.durations` — the analysis the
        paper's introduction notes is impossible "if timestamps are not
        extracted".
    mean_step_seconds:
        Mean of the exponential inter-event gap of the simulated clock.
    """

    instances: int = 10
    seed: int | None = None
    arrival_stagger: int = 0
    complete_probability: float = 1.0
    max_steps: int = 1_000_000
    record_timestamps: bool = False
    mean_step_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if self.arrival_stagger < 0:
            raise ValueError("arrival_stagger must be >= 0")
        if not 0.0 <= self.complete_probability <= 1.0:
            raise ValueError("complete_probability must be in [0, 1]")
        if self.mean_step_seconds <= 0:
            raise ValueError("mean_step_seconds must be positive")


class _InstanceRun:
    """Mutable execution state of one workflow instance."""

    __slots__ = ("wid", "pending", "cursor", "state", "is_lsn", "finished")

    def __init__(self, wid: int, pending: list[str], state: dict):
        self.wid = wid
        self.pending = pending  # remaining activity names
        self.cursor = 0
        self.state = state  # current attribute values
        self.is_lsn = 0
        self.finished = False

    @property
    def has_work(self) -> bool:
        return self.cursor < len(self.pending)


class WorkflowEngine:
    """Executes a :class:`~repro.workflow.spec.WorkflowSpec` and produces a
    :class:`~repro.core.model.Log`.

    Parameters
    ----------
    spec:
        The workflow model to run.
    scheduler:
        Interleaving policy; defaults to uniform-random.
    """

    def __init__(self, spec: WorkflowSpec, scheduler: Scheduler | None = None):
        self.spec = spec
        self.scheduler = scheduler or RandomScheduler()

    def run(self, config: SimulationConfig | None = None, **kwargs) -> Log:
        """Simulate and return the resulting log.

        ``kwargs`` are shorthand for :class:`SimulationConfig` fields:
        ``engine.run(instances=50, seed=7)``.
        """
        if config is None:
            config = SimulationConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a SimulationConfig or field kwargs")
        rng = random.Random(config.seed)
        clock = _SimClock(config, rng)

        runs: dict[int, _InstanceRun] = {}
        records: list[LogRecord] = []
        next_lsn = 1
        steps = 0
        launched = 0

        def launch(wid: int) -> None:
            nonlocal next_lsn
            trace = list(self.spec.root.unfold(rng))
            run = _InstanceRun(wid, trace, self.spec.initial_attrs())
            runs[wid] = run
            run.is_lsn += 1
            records.append(
                LogRecord(
                    lsn=next_lsn,
                    wid=wid,
                    is_lsn=run.is_lsn,
                    activity=START,
                    attrs_out=clock.stamp(),
                )
            )
            next_lsn += 1

        while True:
            steps += 1
            if steps > config.max_steps:
                raise WorkflowRuntimeError(
                    f"simulation exceeded max_steps={config.max_steps}"
                )
            # launch instances per the arrival process
            if launched < config.instances and (
                launched == 0
                or config.arrival_stagger == 0
                or steps % (config.arrival_stagger + 1) == 0
            ):
                if config.arrival_stagger == 0:
                    while launched < config.instances:
                        launched += 1
                        launch(launched)
                else:
                    launched += 1
                    launch(launched)

            ready = sorted(
                w for w, run in runs.items() if run.has_work and not run.finished
            )
            if not ready:
                if launched >= config.instances:
                    break
                continue

            wid = self.scheduler.pick(ready, rng)
            run = runs[wid]
            next_lsn = self._execute_one(run, records, next_lsn, rng, clock)

            if not run.has_work and not run.finished:
                run.finished = True
                if rng.random() < config.complete_probability:
                    run.is_lsn += 1
                    records.append(
                        LogRecord(
                            lsn=next_lsn,
                            wid=wid,
                            is_lsn=run.is_lsn,
                            activity=END,
                            attrs_out=clock.stamp(),
                        )
                    )
                    next_lsn += 1

        return Log(records)

    def _execute_one(
        self,
        run: _InstanceRun,
        records: list[LogRecord],
        next_lsn: int,
        rng: random.Random,
        clock: "_SimClock",
    ) -> int:
        """Execute ``run``'s next activity, appending its log record."""
        activity_name = run.pending[run.cursor]
        run.cursor += 1
        definition = self.spec.definition(activity_name)

        attrs_in = {
            name: run.state[name] for name in definition.reads if name in run.state
        }
        written = dict(definition.effect(dict(run.state), rng))
        illegal = set(written) - set(definition.writes)
        if illegal:
            raise WorkflowRuntimeError(
                f"activity {activity_name!r} wrote undeclared attributes "
                f"{sorted(illegal)}"
            )
        run.state.update(written)
        written.update(clock.stamp())

        run.is_lsn += 1
        records.append(
            LogRecord(
                lsn=next_lsn,
                wid=run.wid,
                is_lsn=run.is_lsn,
                activity=activity_name,
                attrs_in=attrs_in,
                attrs_out=written,
            )
        )
        return next_lsn + 1

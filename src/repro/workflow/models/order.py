"""E-commerce order-fulfillment workflow.

A second realistic process exercising every gateway type: payment
validation with a retry loop, genuinely *parallel* warehouse picking and
packing (an AND gateway whose interleavings the ⊕ operator matches),
an exclusive shipping choice, and an optional return/refund tail.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from typing import Any

from repro.workflow.spec import (
    ActivityDef,
    Loop,
    Maybe,
    Par,
    Sequence,
    WorkflowSpec,
    Xor,
)

__all__ = ["order_fulfillment_workflow", "ORDER_ACTIVITIES"]

ORDER_ACTIVITIES = (
    "PlaceOrder",
    "ValidatePayment",
    "PaymentFailed",
    "PickItems",
    "PackItems",
    "PrintLabel",
    "ShipExpress",
    "ShipStandard",
    "Deliver",
    "RequestReturn",
    "Refund",
)


def _place_order(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {
        "orderId": f"ord-{rng.randrange(10**6):06d}",
        "total": round(rng.uniform(5, 900), 2),
        "items": rng.randint(1, 8),
        "orderState": "placed",
    }


def _validate_payment(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"paymentState": "authorized"}


def _payment_failed(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"paymentState": "failed", "retries": state.get("retries", 0) + 1}


def _deliver(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"orderState": "delivered"}


def _refund(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"orderState": "refunded", "refundAmount": state.get("total", 0)}


def order_fulfillment_workflow(
    *,
    payment_failure_probability: float = 0.2,
    return_probability: float = 0.12,
) -> WorkflowSpec:
    """Build the order-fulfillment :class:`~repro.workflow.spec.WorkflowSpec`."""
    payment = Sequence(
        Loop(
            Xor(
                "ValidatePayment",
                Sequence("PaymentFailed"),
                weights=(
                    1.0 - payment_failure_probability,
                    payment_failure_probability,
                ),
            ),
            again=payment_failure_probability * 0.9,
            max_iterations=3,
        ),
    )
    warehouse = Par(
        "PickItems",
        Sequence("PackItems", "PrintLabel"),
    )
    shipping = Xor("ShipExpress", "ShipStandard", weights=(0.3, 0.7))
    returns = Maybe(Sequence("RequestReturn", "Refund"), return_probability)
    root = Sequence("PlaceOrder", payment, warehouse, shipping, "Deliver", returns)

    definitions = [
        ActivityDef(
            "PlaceOrder",
            writes=("orderId", "total", "items", "orderState"),
            effect=_place_order,
        ),
        ActivityDef(
            "ValidatePayment",
            reads=("orderId", "total"),
            writes=("paymentState",),
            effect=_validate_payment,
        ),
        ActivityDef(
            "PaymentFailed",
            reads=("orderId",),
            writes=("paymentState", "retries"),
            effect=_payment_failed,
        ),
        ActivityDef("PickItems", reads=("orderId", "items")),
        ActivityDef("PackItems", reads=("orderId", "items")),
        ActivityDef("PrintLabel", reads=("orderId",)),
        ActivityDef("ShipExpress", reads=("orderId",)),
        ActivityDef("ShipStandard", reads=("orderId",)),
        ActivityDef(
            "Deliver", reads=("orderId",), writes=("orderState",), effect=_deliver
        ),
        ActivityDef("RequestReturn", reads=("orderId", "orderState")),
        ActivityDef(
            "Refund",
            reads=("orderId", "total"),
            writes=("orderState", "refundAmount"),
            effect=_refund,
        ),
    ]
    return WorkflowSpec.from_definitions("order-fulfillment", root, definitions)

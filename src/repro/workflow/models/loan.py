"""Loan-origination workflow.

A third process with a pronounced choice structure: credit scoring routes
applications to an automatic approval or a manual review, reviews can
request extra documents in a loop, and approved loans are signed and
disbursed.  Useful for choice-heavy query benchmarks (⊗ chains) and for
compliance-style anomaly queries ("disbursed without approval").
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from typing import Any

from repro.workflow.spec import (
    ActivityDef,
    Loop,
    Maybe,
    Sequence,
    WorkflowSpec,
    Xor,
)

__all__ = ["loan_approval_workflow", "LOAN_ACTIVITIES"]

LOAN_ACTIVITIES = (
    "SubmitApplication",
    "CreditCheck",
    "AutoApprove",
    "ManualReview",
    "RequestDocuments",
    "ReceiveDocuments",
    "Approve",
    "Reject",
    "SignContract",
    "Disburse",
    "NotifyRejection",
)


def _submit(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {
        "applicationId": f"app-{rng.randrange(10**6):06d}",
        "amount": rng.choice((5_000, 10_000, 25_000, 50_000, 100_000)),
        "loanState": "submitted",
    }


def _credit_check(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"creditScore": rng.randint(300, 850)}


def _approve(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"loanState": "approved"}


def _reject(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"loanState": "rejected"}


def _disburse(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"loanState": "disbursed", "disbursedAmount": state.get("amount", 0)}


def loan_approval_workflow(
    *,
    auto_approve_probability: float = 0.3,
    reject_probability: float = 0.25,
) -> WorkflowSpec:
    """Build the loan-approval :class:`~repro.workflow.spec.WorkflowSpec`."""
    review = Sequence(
        "ManualReview",
        Maybe(
            Loop(Sequence("RequestDocuments", "ReceiveDocuments"), again=0.3,
                 max_iterations=3),
            0.4,
        ),
    )
    funding = Sequence("SignContract", "Disburse")
    # routing follows the decision: only approved loans are funded, and
    # rejected ones are only notified — "Reject ⊳ Disburse" is therefore
    # unsatisfiable on honest logs (the anomaly rule catches forgeries)
    decision = Xor(
        Sequence("AutoApprove", funding),
        Sequence(review, "Approve", funding),
        Sequence(review, "Reject", "NotifyRejection"),
        weights=(
            auto_approve_probability,
            (1.0 - auto_approve_probability) * (1.0 - reject_probability),
            (1.0 - auto_approve_probability) * reject_probability,
        ),
    )
    root = Sequence("SubmitApplication", "CreditCheck", decision)
    definitions = [
        ActivityDef(
            "SubmitApplication",
            writes=("applicationId", "amount", "loanState"),
            effect=_submit,
        ),
        ActivityDef(
            "CreditCheck",
            reads=("applicationId",),
            writes=("creditScore",),
            effect=_credit_check,
        ),
        ActivityDef(
            "AutoApprove",
            reads=("creditScore",),
            writes=("loanState",),
            effect=_approve,
        ),
        ActivityDef("ManualReview", reads=("applicationId", "creditScore")),
        ActivityDef("RequestDocuments", reads=("applicationId",)),
        ActivityDef("ReceiveDocuments", reads=("applicationId",)),
        ActivityDef(
            "Approve", reads=("creditScore",), writes=("loanState",), effect=_approve
        ),
        ActivityDef(
            "Reject", reads=("creditScore",), writes=("loanState",), effect=_reject
        ),
        ActivityDef("SignContract", reads=("applicationId", "loanState")),
        ActivityDef(
            "Disburse",
            reads=("applicationId", "amount", "loanState"),
            writes=("loanState", "disbursedAmount"),
            effect=_disburse,
        ),
        ActivityDef("NotifyRejection", reads=("applicationId", "loanState")),
    ]
    return WorkflowSpec.from_definitions("loan-approval", root, definitions)

"""Ready-made workflow models.

* :func:`~repro.workflow.models.clinic.clinic_referral_workflow` — the
  college-clinic medical referral process of the paper's Example 2, whose
  simulated logs have the shape of Figure 3;
* :func:`~repro.workflow.models.order.order_fulfillment_workflow` — an
  e-commerce order process with parallel pick/pack and payment retries;
* :func:`~repro.workflow.models.loan.loan_approval_workflow` — a loan
  origination process with an auto/manual review choice.
"""

from repro.workflow.models.clinic import clinic_referral_workflow
from repro.workflow.models.loan import loan_approval_workflow
from repro.workflow.models.order import order_fulfillment_workflow

__all__ = [
    "clinic_referral_workflow",
    "order_fulfillment_workflow",
    "loan_approval_workflow",
]

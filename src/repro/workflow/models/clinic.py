"""The medical-clinic referral workflow (Example 2 / Figure 3 of the paper).

College clinics refer students to local hospitals.  Each referral carries
a budget (``balance``, the maximum reimbursable amount).  The student gets
a referral, checks in at the hospital, then repeatedly sees a doctor, pays
for treatment (producing numbered receipts), and may take treatment; the
referral — including the balance — may be updated when the hospital's
diagnosis differs; finally the student is reimbursed up to the remaining
balance and the referral completes (or is terminated early).

Activity names, attributes (``hospital``, ``referId``, ``referState``,
``balance``, ``receiptN``/``receiptNState``, ``amount``, ``reimburse``)
and their read/write signatures mirror Figure 3's ``αin``/``αout`` columns,
so generated logs are drop-in lookalikes of the paper's example log.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from typing import Any

from repro.workflow.spec import (
    ActivityDef,
    Loop,
    Maybe,
    Sequence,
    Step,
    WorkflowSpec,
    Xor,
)

__all__ = ["clinic_referral_workflow", "CLINIC_ACTIVITIES", "HOSPITALS"]

HOSPITALS = ("Public Hospital", "People Hospital", "Union Hospital")

#: All activity names of the clinic process (excluding sentinels).
CLINIC_ACTIVITIES = (
    "GetRefer",
    "CheckIn",
    "SeeDoctor",
    "PayTreatment",
    "TakeTreatment",
    "UpdateRefer",
    "GetReimburse",
    "CompleteRefer",
    "TerminateRefer",
)


def _get_refer(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {
        "hospital": rng.choice(HOSPITALS),
        "referId": f"{rng.randrange(16**5):05x}",
        "referState": "start",
        "balance": rng.choice((500, 1000, 2000, 5000, 8000)),
    }


def _check_in(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"referState": "active"}


def _pay_treatment(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    index = state.get("receiptCount", 0) + 1
    fee = rng.randrange(60, 8000, 20)
    return {
        f"receipt{index}": fee,
        f"receipt{index}State": "active",
        "receiptCount": index,
    }


def _update_refer(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"balance": state.get("balance", 0) + rng.choice((1000, 2000, 3000))}


def _get_reimburse(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    receipt_count = state.get("receiptCount", 0)
    amount = sum(state.get(f"receipt{i}", 0) for i in range(1, receipt_count + 1))
    balance = state.get("balance", 0)
    reimburse = min(amount, balance)
    written: dict[str, Any] = {
        "amount": amount,
        "reimburse": reimburse,
        "balance": balance - reimburse,
    }
    for i in range(1, receipt_count + 1):
        written[f"receipt{i}State"] = "complete"
    return written


def _complete_refer(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"referState": "complete"}


def _terminate_refer(state: Mapping[str, Any], rng: random.Random) -> dict[str, Any]:
    return {"referState": "terminated"}


def _receipt_attrs(state_keys: int = 6) -> tuple[str, ...]:
    """Receipt attribute names receipt1..receiptN and their states."""
    names: list[str] = []
    for i in range(1, state_keys + 1):
        names.append(f"receipt{i}")
        names.append(f"receipt{i}State")
    return tuple(names)


def clinic_referral_workflow(
    *,
    update_probability: float = 0.35,
    terminate_probability: float = 0.1,
    max_visits: int = 4,
) -> WorkflowSpec:
    """Build the clinic referral :class:`~repro.workflow.spec.WorkflowSpec`.

    Parameters
    ----------
    update_probability:
        Chance that a referral is updated during the hospital visits —
        these instances are the ones found by the paper's running query
        ``UpdateRefer ⊳ GetReimburse``.
    terminate_probability:
        Chance the student terminates the referral instead of completing
        the reimbursement path.
    max_visits:
        Maximum SeeDoctor/PayTreatment rounds per referral.
    """
    receipts = _receipt_attrs(max_visits + 2)
    visit = Sequence(
        "SeeDoctor",
        Maybe(Sequence("PayTreatment", Maybe("TakeTreatment", 0.4)), 0.85),
        Maybe("UpdateRefer", update_probability),
    )
    root = Sequence(
        "GetRefer",
        "CheckIn",
        Loop(visit, again=0.55, max_iterations=max_visits),
        Xor(
            Sequence("GetReimburse", "CompleteRefer"),
            Step("TerminateRefer"),
            weights=(1.0 - terminate_probability, terminate_probability),
        ),
    )
    definitions = [
        ActivityDef(
            "GetRefer",
            writes=("hospital", "referId", "referState", "balance"),
            effect=_get_refer,
        ),
        ActivityDef(
            "CheckIn",
            reads=("referId", "referState", "balance"),
            writes=("referState",),
            effect=_check_in,
        ),
        ActivityDef("SeeDoctor", reads=("referId", "referState")),
        ActivityDef(
            "PayTreatment",
            reads=("referId", "referState"),
            writes=(*receipts, "receiptCount"),
            effect=_pay_treatment,
        ),
        ActivityDef("TakeTreatment", reads=("referId", "receiptCount")),
        ActivityDef(
            "UpdateRefer",
            reads=("referId", "referState", "balance"),
            writes=("balance",),
            effect=_update_refer,
        ),
        ActivityDef(
            "GetReimburse",
            reads=("referState", "balance", "receiptCount", *receipts),
            writes=("amount", "balance", "reimburse", *receipts),
            effect=_get_reimburse,
        ),
        ActivityDef(
            "CompleteRefer",
            reads=("referState", "balance"),
            writes=("referState",),
            effect=_complete_refer,
        ),
        ActivityDef(
            "TerminateRefer",
            reads=("referState",),
            writes=("referState",),
            effect=_terminate_refer,
        ),
    ]
    return WorkflowSpec.from_definitions(
        "clinic-referral", root, definitions, initial_attrs=dict
    )

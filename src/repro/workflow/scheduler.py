"""Interleaving policies for the workflow engine.

At every step the engine asks its scheduler which ready instance executes
next; the answer determines how instance records interleave in the global
log (the ``wid`` column pattern of Figure 3)."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

__all__ = [
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "WeightedScheduler",
]


class Scheduler(ABC):
    """Chooses, among the ready workflow instances, which runs next."""

    @abstractmethod
    def pick(self, ready: Sequence[int], rng: random.Random) -> int:
        """Return one wid from ``ready`` (nonempty, ascending)."""


class RoundRobinScheduler(Scheduler):
    """Cycle through instances fairly: always pick the ready instance
    least recently run."""

    def __init__(self) -> None:
        self._last_pick: dict[int, int] = {}
        self._clock = 0

    def pick(self, ready: Sequence[int], rng: random.Random) -> int:
        choice = min(ready, key=lambda w: (self._last_pick.get(w, -1), w))
        self._clock += 1
        self._last_pick[choice] = self._clock
        return choice


class RandomScheduler(Scheduler):
    """Pick a ready instance uniformly at random — maximal interleaving
    noise, the default for benchmark log generation."""

    def pick(self, ready: Sequence[int], rng: random.Random) -> int:
        return rng.choice(list(ready))


class WeightedScheduler(Scheduler):
    """Pick ready instances with probability proportional to a per-wid
    weight (default 1.0) — models fast and slow instances coexisting."""

    def __init__(self, weights: dict[int, float] | None = None, default: float = 1.0):
        if default <= 0:
            raise ValueError("default weight must be positive")
        self.weights = dict(weights or {})
        self.default = default

    def pick(self, ready: Sequence[int], rng: random.Random) -> int:
        ready = list(ready)
        weights = [max(self.weights.get(w, self.default), 0.0) for w in ready]
        if sum(weights) <= 0:
            return rng.choice(ready)
        return rng.choices(ready, weights=weights, k=1)[0]

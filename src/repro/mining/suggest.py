"""Query suggestion from mined structure.

Turns footprint knowledge into incident-pattern queries an analyst can
review — the paper's "constructing queries from business principles"
suggestion (Conclusion), automated from the log itself:

* a **dominant ordering** ``a`` before ``b`` with a handful of inverted
  occurrences suggests the anomaly query ``b ⊳ a`` ("who did these the
  wrong way round?");
* a **causality** ``a → b`` suggests the compliance query ``a ⊳ b``
  and its ⊙-strengthening when the pair is always adjacent;
* a **parallel pair** suggests the ``a ⊕ b`` inspection query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.anomaly import AnomalyRule, RuleSet
from repro.core.model import Log
from repro.core.pattern import Pattern, act
from repro.mining.footprint import footprint

__all__ = ["SuggestedPattern", "suggest_patterns", "suggest_anomaly_rules"]


@dataclass(frozen=True)
class SuggestedPattern:
    """One mined query candidate with its supporting evidence."""

    pattern: Pattern
    kind: str  # "inverted-order" | "causality" | "adjacency" | "parallel"
    evidence: str

    def __str__(self) -> str:
        return f"{self.pattern}  [{self.kind}: {self.evidence}]"


def suggest_patterns(
    log: Log,
    *,
    max_inversion_rate: float = 0.1,
    min_support: int = 3,
) -> list[SuggestedPattern]:
    """Mine candidate queries from ``log``.

    Parameters
    ----------
    max_inversion_rate:
        An ordering counts as *dominant-with-exceptions* when the minority
        direction carries at most this fraction of the pair's
        directly-follows weight (and at least one occurrence) — those
        exceptions are the interesting anomalies.
    min_support:
        Ignore pairs seen fewer than this many times in total.
    """
    mined = footprint(log)
    suggestions: list[SuggestedPattern] = []
    names = mined.activities

    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            forward = mined.follows_counts.get((a, b), 0)
            backward = mined.follows_counts.get((b, a), 0)
            total = forward + backward
            if total < min_support:
                continue
            majority, minority = (a, b), (b, a)
            if backward > forward:
                majority, minority = minority, majority
            minority_count = mined.follows_counts.get(minority, 0)
            if 0 < minority_count <= max_inversion_rate * total:
                suggestions.append(
                    SuggestedPattern(
                        pattern=act(minority[0]) >> act(minority[1]),
                        kind="inverted-order",
                        evidence=(
                            f"{majority[0]}→{majority[1]} holds "
                            f"{total - minority_count}/{total} times; "
                            f"{minority_count} inversion(s)"
                        ),
                    )
                )

    for a, b in mined.causal_pairs():
        forward = mined.follows_counts.get((a, b), 0)
        if forward < min_support:
            continue
        suggestions.append(
            SuggestedPattern(
                pattern=act(a) >> act(b),
                kind="causality",
                evidence=f"{a}→{b} with {forward} direct successions",
            )
        )

    for a, b in mined.parallel_pairs():
        support = mined.follows_counts.get((a, b), 0) + mined.follows_counts.get(
            (b, a), 0
        )
        if support < min_support:
            continue
        suggestions.append(
            SuggestedPattern(
                pattern=act(a) & act(b),
                kind="parallel",
                evidence=f"{a}||{b} observed in both orders ({support} adjacencies)",
            )
        )
    return suggestions


def suggest_anomaly_rules(
    log: Log,
    *,
    max_inversion_rate: float = 0.1,
    min_support: int = 3,
) -> RuleSet:
    """Package the *inverted-order* suggestions as an anomaly
    :class:`~repro.analytics.anomaly.RuleSet` ready to run or monitor."""
    rules = RuleSet()
    for index, suggestion in enumerate(
        suggest_patterns(
            log,
            max_inversion_rate=max_inversion_rate,
            min_support=min_support,
        )
    ):
        if suggestion.kind != "inverted-order":
            continue
        rules.add(
            AnomalyRule(
                name=f"mined-inversion-{index:02d}",
                pattern=suggestion.pattern,
                description=f"mined from the log: {suggestion.evidence}",
                severity="info",
            )
        )
    return rules

"""Alpha-algorithm footprint relations.

The alpha algorithm's first step classifies every ordered activity pair
``(a, b)`` from the directly-follows counts ``df(a, b)``:

* **causality** ``a → b``: ``df(a,b) > 0`` and ``df(b,a) == 0``;
* **parallel** ``a || b``: ``df(a,b) > 0`` and ``df(b,a) > 0``;
* **exclusive** ``a # b``: neither direction ever directly follows.

A noise threshold generalises the classic definition for real logs: a
direction is "present" only if it carries at least ``noise`` fraction of
the pair's total directly-follows weight, so a single out-of-order trace
does not turn a clean causality into a parallel relation.

Sentinel ``START``/``END`` records are excluded; the footprint is over
the business activities.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.model import Log

__all__ = ["Relation", "Footprint", "footprint"]


class Relation(enum.Enum):
    """Footprint cell values."""

    CAUSALITY = "→"       # row precedes column
    REVERSE = "←"         # column precedes row
    PARALLEL = "||"
    EXCLUSIVE = "#"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Footprint:
    """The footprint matrix of one log.

    Attributes
    ----------
    activities:
        Sorted activity names (matrix axes).
    relations:
        Mapping from unordered-as-ordered pairs ``(a, b)`` with ``a != b``
        to their :class:`Relation` (both orders present, mirrored).
    follows_counts:
        Raw directly-follows counts ``(a, b) -> n``.
    """

    activities: tuple[str, ...]
    relations: Mapping[tuple[str, str], Relation]
    follows_counts: Mapping[tuple[str, str], int]

    def relation(self, first: str, then: str) -> Relation:
        """The relation between two activities (EXCLUSIVE if never seen)."""
        return self.relations.get((first, then), Relation.EXCLUSIVE)

    def causal_pairs(self) -> list[tuple[str, str]]:
        """All pairs ``(a, b)`` with ``a → b``."""
        return sorted(
            pair
            for pair, relation in self.relations.items()
            if relation is Relation.CAUSALITY
        )

    def parallel_pairs(self) -> list[tuple[str, str]]:
        """All unordered parallel pairs, each reported once (a < b)."""
        return sorted(
            (a, b)
            for (a, b), relation in self.relations.items()
            if relation is Relation.PARALLEL and a < b
        )

    def format(self) -> str:
        """The footprint matrix as fixed-width text."""
        names = self.activities
        width = max((len(n) for n in names), default=4) + 1
        header = " " * width + "".join(f"{n:>{width}}" for n in names)
        lines = [header]
        for row in names:
            cells = []
            for column in names:
                if row == column:
                    cells.append(f"{'.':>{width}}")
                else:
                    cells.append(f"{str(self.relation(row, column)):>{width}}")
            lines.append(f"{row:>{width}}" + "".join(cells))
        return "\n".join(lines)


def footprint(log: Log, *, noise: float = 0.0) -> Footprint:
    """Compute the footprint of ``log``.

    ``noise`` in ``[0, 0.5)``: a direction counts as present only if it
    carries more than ``noise`` of the pair's combined directly-follows
    weight (0.0 = the classic alpha relations).
    """
    if not 0.0 <= noise < 0.5:
        raise ValueError("noise must be in [0, 0.5)")
    counts: dict[tuple[str, str], int] = {}
    activities: set[str] = set()
    for wid in log.wids:
        trace = [r for r in log.instance(wid) if not r.is_sentinel]
        activities.update(r.activity for r in trace)
        for earlier, later in zip(trace, trace[1:]):
            pair = (earlier.activity, later.activity)
            counts[pair] = counts.get(pair, 0) + 1

    relations: dict[tuple[str, str], Relation] = {}
    names = sorted(activities)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            forward = counts.get((a, b), 0)
            backward = counts.get((b, a), 0)
            total = forward + backward
            if total:
                present_forward = forward > noise * total
                present_backward = backward > noise * total
            else:
                present_forward = present_backward = False
            if present_forward and present_backward:
                relations[(a, b)] = relations[(b, a)] = Relation.PARALLEL
            elif present_forward:
                relations[(a, b)] = Relation.CAUSALITY
                relations[(b, a)] = Relation.REVERSE
            elif present_backward:
                relations[(b, a)] = Relation.CAUSALITY
                relations[(a, b)] = Relation.REVERSE
            else:
                relations[(a, b)] = relations[(b, a)] = Relation.EXCLUSIVE
    return Footprint(
        activities=tuple(names),
        relations=relations,
        follows_counts=counts,
    )

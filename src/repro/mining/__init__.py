"""Lightweight process mining over workflow logs.

The paper positions log querying as an *ad hoc* complement to process
analytics; this package closes the loop in the other direction — mining
the log for structure and turning what is found into incident-pattern
queries:

* :mod:`repro.mining.footprint` — the classic alpha-algorithm footprint
  relations (directly-follows, causality ``→``, parallel ``||``,
  exclusive ``#``) computed from instance traces;
* :mod:`repro.mining.suggest` — candidate anomaly queries derived from
  the footprint: rare inversions of a dominant ordering become
  ``B ⊳ A``-style suspicion rules, and discovered parallel pairs become
  ``A ⊕ B`` inspection queries.
"""

from repro.mining.footprint import Footprint, Relation, footprint
from repro.mining.suggest import suggest_anomaly_rules, suggest_patterns

__all__ = [
    "Relation",
    "Footprint",
    "footprint",
    "suggest_patterns",
    "suggest_anomaly_rules",
]

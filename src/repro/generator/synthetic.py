"""Synthetic log generators.

Three families, each targeting a benchmark need:

* :func:`generate_log` / :func:`uniform_log` — general random logs with
  controllable instance count, instance-length distribution and activity
  skew (Lemma 1 and baseline-comparison sweeps);
* :func:`worst_case_log` — the single-instance, single-activity log of
  Theorem 1's worst case, where ``(((t ⊕ t) ⊕ t) … ⊕ t)`` explodes;
* :func:`planted_pattern_log` — logs with a *planted* activity sequence
  occurring at a controlled rate, so benchmarks can dial the incident-set
  sizes ``n1, n2`` of an operator's operands independently of log size.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.model import Log
from repro.generator.distributions import Distribution, Fixed, UniformInt, Zipf

__all__ = [
    "SyntheticLogConfig",
    "generate_log",
    "uniform_log",
    "worst_case_log",
    "planted_pattern_log",
    "default_alphabet",
]


def default_alphabet(size: int) -> tuple[str, ...]:
    """Activity names ``A00 .. A{size-1}``."""
    if size < 1:
        raise ValueError("alphabet size must be >= 1")
    width = max(2, len(str(size - 1)))
    return tuple(f"A{i:0{width}d}" for i in range(size))


@dataclass(frozen=True)
class SyntheticLogConfig:
    """Parameters of a synthetic log.

    Attributes
    ----------
    instances:
        Number of workflow instances.
    length:
        Distribution of per-instance event counts (sentinels excluded).
    alphabet:
        Activity names to draw from.
    skew:
        Zipf exponent for activity frequencies (0 = uniform).
    interleave:
        Round-robin interleave instance records in the global order
        (True, the realistic shape) or lay instances back to back.
    seed:
        RNG seed; generation is deterministic given the config.
    """

    instances: int = 10
    length: Distribution = field(default_factory=lambda: UniformInt(5, 15))
    alphabet: tuple[str, ...] = field(default_factory=lambda: default_alphabet(8))
    skew: float = 0.0
    interleave: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if not self.alphabet:
            raise ValueError("alphabet must be nonempty")
        if self.skew < 0:
            raise ValueError("skew must be >= 0")


def generate_log(config: SyntheticLogConfig) -> Log:
    """Generate a log per ``config``."""
    rng = random.Random(config.seed)
    picker = Zipf(len(config.alphabet), config.skew) if config.skew > 0 else None
    traces: dict[int, list[str]] = {}
    for wid in range(1, config.instances + 1):
        n_events = config.length.sample(rng)
        names = []
        for __ in range(n_events):
            if picker is None:
                names.append(rng.choice(config.alphabet))
            else:
                names.append(config.alphabet[picker.sample(rng)])
        traces[wid] = names
    return Log.from_traces(traces, interleave=config.interleave)


def uniform_log(
    instances: int,
    length: int,
    alphabet_size: int = 8,
    *,
    seed: int = 0,
    interleave: bool = True,
) -> Log:
    """Shorthand: ``instances`` instances of exactly ``length`` events over
    a uniform alphabet."""
    return generate_log(
        SyntheticLogConfig(
            instances=instances,
            length=Fixed(length),
            alphabet=default_alphabet(alphabet_size),
            interleave=interleave,
            seed=seed,
        )
    )


def worst_case_log(m: int, activity: str = "t") -> Log:
    """Theorem 1's worst-case log: one instance whose ``m`` events all
    carry the same activity name, so ``incL(activity)`` has size ``m`` and
    a chain of ``k`` ⊕ operators over it produces ``O(m^k)`` incidents."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return Log.from_traces({1: [activity] * m})


def planted_pattern_log(
    instances: int,
    length: int,
    planted: Sequence[str],
    *,
    plant_rate: float = 0.5,
    noise_alphabet_size: int = 8,
    gap: int = 1,
    seed: int = 0,
) -> Log:
    """Logs with a controlled number of planted activity sequences.

    Each instance hosts, with probability ``plant_rate``, one occurrence of
    the ``planted`` activity sequence with ``gap - 1`` noise events between
    consecutive planted activities (``gap=1`` → consecutive, exercising
    ⊙; larger gaps exercise ⊳); the rest of the instance is noise drawn
    from a disjoint alphabet.  Guarantees: a planted instance contains the
    sequence; a non-planted instance contains none of the planted activity
    names.
    """
    if not planted:
        raise ValueError("planted sequence must be nonempty")
    if gap < 1:
        raise ValueError("gap must be >= 1")
    needed = len(planted) * gap
    if length < needed:
        raise ValueError(
            f"length {length} too short for planted sequence needing {needed}"
        )
    rng = random.Random(seed)
    noise = tuple(f"N{i:02d}" for i in range(noise_alphabet_size))
    overlap = set(noise) & set(planted)
    if overlap:
        raise ValueError(f"noise alphabet collides with planted names: {overlap}")

    traces: dict[int, list[str]] = {}
    for wid in range(1, instances + 1):
        events = [rng.choice(noise) for __ in range(length)]
        if rng.random() < plant_rate:
            start = rng.randint(0, length - needed)
            position = start
            for name in planted:
                events[position] = name
                position += gap
        traces[wid] = events
    return Log.from_traces(traces, interleave=True)

"""Synthetic workload generation for tests and the benchmark harness."""

from repro.generator.distributions import (
    Distribution,
    Fixed,
    Geometric,
    UniformInt,
    Zipf,
)
from repro.generator.synthetic import (
    SyntheticLogConfig,
    generate_log,
    planted_pattern_log,
    uniform_log,
    worst_case_log,
)

__all__ = [
    "Distribution",
    "Fixed",
    "UniformInt",
    "Geometric",
    "Zipf",
    "SyntheticLogConfig",
    "generate_log",
    "uniform_log",
    "worst_case_log",
    "planted_pattern_log",
]

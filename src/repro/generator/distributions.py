"""Small sampling-distribution abstractions for workload generation.

Benchmark configurations express "instance length ~ Uniform(20, 60)" or
"activity frequency ~ Zipf(1.1)" declaratively; these classes make such
settings serialisable and reusable across generators.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["Distribution", "Fixed", "UniformInt", "Geometric", "Zipf"]


class Distribution(ABC):
    """A distribution over nonnegative integers."""

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw one value."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value (used by cost estimation in benchmarks)."""


@dataclass(frozen=True)
class Fixed(Distribution):
    """Always ``value``."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("Fixed value must be >= 0")

    def sample(self, rng: random.Random) -> int:
        return self.value

    def mean(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class UniformInt(Distribution):
    """Uniform over ``[low, high]`` inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("need 0 <= low <= high")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Geometric(Distribution):
    """Number of trials until success (support >= 1), truncated at
    ``maximum``."""

    p: float
    maximum: int = 1_000

    def __post_init__(self) -> None:
        if not 0.0 < self.p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        if self.maximum < 1:
            raise ValueError("maximum must be >= 1")

    def sample(self, rng: random.Random) -> int:
        trials = 1
        while trials < self.maximum and rng.random() >= self.p:
            trials += 1
        return trials

    def mean(self) -> float:
        return min(1.0 / self.p, float(self.maximum))


@dataclass(frozen=True)
class Zipf(Distribution):
    """Zipf-ranked index in ``[0, n)``: rank ``r`` drawn with probability
    proportional to ``1 / (r+1)**s``.  Used for skewed activity-frequency
    histograms (a few hot activities, a long tail)."""

    n: int
    s: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.s < 0:
            raise ValueError("s must be >= 0")

    def _weights(self) -> np.ndarray:
        ranks = np.arange(1, self.n + 1, dtype=float)
        weights = ranks ** (-self.s)
        return weights / weights.sum()

    def sample(self, rng: random.Random) -> int:
        weights = self._weights()
        u = rng.random()
        return int(np.searchsorted(np.cumsum(weights), u))

    def mean(self) -> float:
        weights = self._weights()
        return float((weights * np.arange(self.n)).sum())

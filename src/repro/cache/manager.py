"""The two-layer query cache.

:class:`QueryCache` owns both cache layers behind one lock:

* the **result layer** maps ``(log identity, normalized pattern,
  result-relevant options)`` to a finished, canonically ordered
  :class:`~repro.core.incident.IncidentSet` (plus a detached copy of the
  evaluation's :class:`~repro.core.eval.base.EvaluationStats` for
  ``explain``);
* the **memo layer** maps ``(memo scope, wid, wid record count,
  subpattern)`` to the per-instance incident lists the indexed engine
  computes node by node — the cross-call generalisation of the batch
  engine's shared-scan memo.

Log identity comes from the epoch counters threaded through
:class:`~repro.core.model.Log` / :class:`~repro.logstore.store.LogStore`:
a complete store snapshot is identified by ``(lineage, epoch)``; logs
without store provenance fall back to a content fingerprint.  The memo
layer drops the epoch and adds the per-instance record count instead —
within one append-only lineage, an instance with the same record count
has exactly the same records, so entries for instances untouched by
later appends stay valid (the same wid-locality the shard planner
relies on).

Hit/miss/eviction counts mirror into an optional
:class:`~repro.obs.metrics.MetricsRegistry` as the ``cache.*`` family
(and from there into the Prometheus exposition); lookups can be traced
as ``cache.result`` spans.  All public methods are thread-safe.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.logstore.store import LogStore as LogSource

from repro.cache.lru import LruBytes
from repro.cache.policy import CachePolicy
from repro.cache.sizing import incidents_nbytes
from repro.core.eval.base import EvaluationStats
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log
from repro.core.algebra import canonicalize
from repro.core.optimizer.rules import normalize
from repro.core.pattern import Pattern
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "CachedResult",
    "QueryCache",
    "get_default_cache",
    "reset_default_cache",
    "resolve_cache",
]

#: Hashable identity of a whole log, see :meth:`QueryCache.log_identity`.
LogIdentity = tuple[str, ...]

#: Hashable identity of a memo scope, see :meth:`QueryCache.memo_scope`.
MemoScope = tuple[str, ...]

#: Full key of one result-layer entry.  The pattern component is the
#: AC-canonical pattern, or — under ``policy.equivalence_keys`` — an
#: ``("eqclass", digest)`` pair naming the proved equivalence class.
ResultKey = tuple[LogIdentity, Any, tuple[Any, ...]]

#: Full key of one memo-layer entry.
MemoKey = tuple[MemoScope, int, int, Pattern]


@functools.lru_cache(maxsize=1024)
def _equivalence_class_key(pattern: Pattern) -> str | None:
    """The prover's canonical language key for ``pattern``, or ``None``
    when the prover cannot decide it (state budget, unsupported
    operator) — callers then fall back to the AC-canonical key."""
    from repro.analysis import AnalysisError, canonical_key

    try:
        return canonical_key(pattern)
    except AnalysisError:
        return None


def _detach_stats(stats: EvaluationStats | None) -> EvaluationStats | None:
    """A registry-free copy safe to keep in (and hand out of) the cache."""
    if stats is None:
        return None
    return EvaluationStats(
        operator_evals=stats.operator_evals,
        pairs_examined=stats.pairs_examined,
        incidents_produced=stats.incidents_produced,
        max_live_incidents=stats.max_live_incidents,
        per_operator=dict(stats.per_operator),
    )


@dataclass(frozen=True)
class CachedResult:
    """One result-layer hit: the incident set and a detached copy of the
    stats recorded when it was computed (None for results stored without
    stats)."""

    incidents: IncidentSet
    stats: EvaluationStats | None = field(default=None, compare=False)


class QueryCache:
    """Memory-bounded result + subpattern cache (see module docs).

    Parameters
    ----------
    policy:
        The :class:`~repro.cache.policy.CachePolicy` governing layers
        and budgets; defaults to the all-on default policy.
    metrics:
        Optional registry receiving the ``cache.*`` counter/gauge
        family.  Set at construction so every consumer of a shared cache
        observes the same counters.
    """

    def __init__(
        self,
        policy: CachePolicy | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy if policy is not None else CachePolicy()
        self.metrics = metrics
        self._lock = threading.RLock()
        self._results: LruBytes[ResultKey, CachedResult] = LruBytes(
            self.policy.result_budget_bytes
        )
        self._memo: LruBytes[MemoKey, tuple[Incident, ...]] = LruBytes(
            self.policy.memo_budget_bytes
        )

    # -- key construction --------------------------------------------------

    @staticmethod
    def log_identity(log: "Log | LogSource") -> LogIdentity:
        """Hashable whole-log identity for the result layer.

        ``("lineage", <store id>, <epoch>)`` for complete store
        snapshots and for live stores themselves (a store *is* its full
        content) — append-only stores bump their epoch per record, so
        this is exact and O(1).  Other logs use the (cached) content
        fingerprint, which is always sound but costs one pass on first
        use per :class:`Log` instance.

        The identity is duck-typed on the provenance surface of
        :class:`~repro.core.view.LogView` (``lineage``/``epoch`` plus
        ``is_snapshot``/``fingerprint``), so a
        :class:`~repro.columnar.ColumnarLog` — which delegates all four
        to its source log — keys identically to that source: warm
        entries are shared across representations.
        """
        if log.lineage is not None and getattr(log, "is_snapshot", True):
            return ("lineage", log.lineage, str(log.epoch))
        return ("content", log.fingerprint)

    @staticmethod
    def memo_scope(log: "Log | LogSource") -> MemoScope:
        """Hashable scope of the memo layer for ``log``.

        Store-derived logs (snapshots, projections, shards) share one
        scope per lineage: memo entries carry the per-instance record
        count, which within an append-only lineage pins the exact
        records — so serial runs, sharded runs and later snapshots all
        hit the same entries for untouched instances.
        """
        if log.lineage is not None:
            return ("lineage", log.lineage)
        return ("content", log.fingerprint)

    def result_key(
        self,
        log: "Log | LogSource",
        pattern: Pattern,
        *,
        max_incidents: int | None = None,
    ) -> ResultKey:
        """The result-layer key for evaluating ``pattern`` over ``log``.

        The pattern goes through the optimizer's shared
        :func:`~repro.core.optimizer.rules.normalize` and then the
        algebra's :func:`~repro.core.algebra.canonicalize`, so queries
        equal under the paper's associativity/commutativity/interchange
        laws (Theorems 2–4, plus choice idempotence) share one entry.
        ``max_incidents`` participates because a budget changes
        observable behaviour (a cached over-budget result must not mask
        the error).

        Under ``policy.equivalence_keys`` the pattern component is the
        prover's :func:`repro.analysis.canonical_key` instead — the
        minimal-DFA digest of the pattern's marked-trace language — so
        *proved*-equivalent queries share one entry even when no AC
        rewrite relates them.  Falls back to the AC-canonical key when
        the prover cannot handle the pattern.
        """
        normalized, _ = normalize(pattern)
        if self.policy.equivalence_keys:
            eq_key = _equivalence_class_key(normalized)
            if eq_key is not None:
                return (
                    self.log_identity(log),
                    ("eqclass", eq_key),
                    ("max_incidents", max_incidents),
                )
        canonical = canonicalize(normalized)
        return (self.log_identity(log), canonical, ("max_incidents", max_incidents))

    # -- result layer ------------------------------------------------------

    def get_result(
        self,
        key: ResultKey,
        *,
        tracer: Tracer | NullTracer = NULL_TRACER,
    ) -> CachedResult | None:
        """Result-layer lookup; None on miss.  Hits hand out a *fresh*
        stats copy, so callers may mutate it freely."""
        if not self.policy.caches_results:
            return None
        with tracer.span("cache.result", key=()) as span:
            with self._lock:
                cached = self._results.get(key)
            span.add(hit=1 if cached is not None else 0)
        self._publish()
        if cached is None:
            return None
        return CachedResult(
            incidents=cached.incidents, stats=_detach_stats(cached.stats)
        )

    def put_result(
        self,
        key: ResultKey,
        incidents: IncidentSet,
        stats: EvaluationStats | None = None,
    ) -> bool:
        """Store a finished result; returns False when rejected (larger
        than the whole layer budget) or the layer is off."""
        if not self.policy.caches_results:
            return False
        entry = CachedResult(incidents=incidents, stats=_detach_stats(stats))
        nbytes = incidents_nbytes(incidents)
        with self._lock:
            stored = self._results.put(key, entry, nbytes)
        self._publish()
        return stored

    # -- memo layer --------------------------------------------------------

    def memo_get(
        self, scope: MemoScope, wid: int, wid_count: int, pattern: Pattern
    ) -> tuple[Incident, ...] | None:
        """Per-(wid, subpattern) lookup; None on miss or when the memo
        layer is off."""
        if not self.policy.caches_memo:
            return None
        with self._lock:
            return self._memo.get((scope, wid, wid_count, pattern))

    def memo_put(
        self,
        scope: MemoScope,
        wid: int,
        wid_count: int,
        pattern: Pattern,
        incidents: tuple[Incident, ...],
    ) -> bool:
        """Store one per-(wid, subpattern) incident list."""
        if not self.policy.caches_memo:
            return False
        nbytes = incidents_nbytes(incidents)
        with self._lock:
            stored = self._memo.put((scope, wid, wid_count, pattern), incidents, nbytes)
        self._publish()
        return stored

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counter snapshot over both layers (for tests and the CLI)."""
        with self._lock:
            return {
                "result_hits": self._results.hits,
                "result_misses": self._results.misses,
                "result_evictions": self._results.evictions,
                "result_rejected": self._results.rejected,
                "result_entries": len(self._results),
                "result_bytes": self._results.total_bytes,
                "memo_hits": self._memo.hits,
                "memo_misses": self._memo.misses,
                "memo_evictions": self._memo.evictions,
                "memo_rejected": self._memo.rejected,
                "memo_entries": len(self._memo),
                "memo_bytes": self._memo.total_bytes,
            }

    def hot_keys(self, *, limit: int = 10) -> dict[str, list[str]]:
        """The most-recently-served keys per layer, hottest first.

        "Hot" is LRU recency (the eviction order reversed) — the admin
        cache endpoint's view of what the cache is actually earning its
        bytes on.  Keys are rendered to strings; they are identifiers,
        not reconstructable values.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            results = self._results.keys()[-limit:]
            memo = self._memo.keys()[-limit:]
        return {
            "results": [str(key) for key in reversed(results)],
            "memo": [str(key) for key in reversed(memo)],
        }

    #: Counters the journal attributes to individual queries.
    _ATTRIBUTED = ("result_hits", "result_misses", "memo_hits", "memo_misses")

    def attribution(
        self, since: dict[str, int] | None = None
    ) -> dict[str, int]:
        """Per-query hit attribution over the shared counters.

        The layer counters are process-wide totals; to attribute hits to
        one query, snapshot before (``since=None`` returns the current
        hit/miss counters) and diff after (pass the snapshot back to get
        the query's own delta).  :class:`~repro.core.query.Query` feeds
        the delta into the journal's terminal ``finish`` event.
        """
        snapshot = self.stats()
        if since is None:
            return {name: snapshot[name] for name in self._ATTRIBUTED}
        return {
            name: snapshot[name] - since.get(name, 0)
            for name in self._ATTRIBUTED
        }

    def _publish(self) -> None:
        """Mirror the layer counters into the bound registry.

        Counters are monotone totals, so publishing sets them by
        incrementing the registry counter up to the current value —
        cheap (two dict lookups per metric) and idempotent.
        """
        registry = self.metrics
        if registry is None:
            return
        with self._lock:
            snapshot = self.stats()
        for name, value in snapshot.items():
            metric_name = "cache." + name.replace("_", ".", 1)
            if name.endswith(("entries", "bytes")):
                registry.gauge(metric_name).set(value)
            else:
                counter = registry.counter(metric_name)
                if value > counter.value:
                    counter.inc(value - counter.value)

    def clear(self) -> None:
        """Drop all entries in both layers (counters survive)."""
        with self._lock:
            self._results.clear()
            self._memo.clear()
        self._publish()

    def __repr__(self) -> str:
        snapshot = self.stats()
        return (
            f"QueryCache(results={snapshot['result_entries']} entries/"
            f"{snapshot['result_bytes']}B, memo={snapshot['memo_entries']} "
            f"entries/{snapshot['memo_bytes']}B)"
        )


# ---------------------------------------------------------------------------
# The process-wide shared cache and the facade's resolution rules.
# ---------------------------------------------------------------------------

_default_cache: QueryCache | None = None
_default_lock = threading.Lock()


def get_default_cache() -> QueryCache:
    """The process-wide shared :class:`QueryCache` (default policy),
    created on first use.  ``Query(..., cache=True)`` and the CLI's
    ``--cache`` resolve here, so separate queries share warm state."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = QueryCache()
        return _default_cache


def reset_default_cache() -> None:
    """Drop the shared cache (tests; a fresh one is created on demand)."""
    global _default_cache
    with _default_lock:
        _default_cache = None


def resolve_cache(
    setting: "QueryCache | CachePolicy | bool | None",
) -> QueryCache | None:
    """Resolve an :class:`~repro.core.options.EngineOptions` cache
    setting to a live cache (or None for caching off).

    * ``None`` / ``False`` — caching off;
    * ``True`` — the process-wide shared cache, default policy;
    * a :class:`CachePolicy` — a *private* cache under that policy
      (disabled policies resolve to None);
    * a :class:`QueryCache` — used as given (share one instance across
      queries for cross-query hits).
    """
    if setting is None or setting is False:
        return None
    if setting is True:
        return get_default_cache()
    if isinstance(setting, CachePolicy):
        return QueryCache(setting) if setting.enabled else None
    if isinstance(setting, QueryCache):
        return setting if setting.policy.enabled else None
    raise TypeError(
        f"cache must be a QueryCache, CachePolicy, bool or None, "
        f"got {type(setting).__name__}"
    )

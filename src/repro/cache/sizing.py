"""Byte accounting for cached incident data.

The cache's memory budget is enforced on *estimated retained bytes*: the
size of the containers an entry keeps alive beyond the log itself.  Log
records are shared with the source log (never copied by incidents), so
they are charged as one pointer each, not deep size — evicting a cache
entry cannot free the records anyway while the log is alive.

The estimate is deterministic for a given interpreter, which the LRU
tests rely on (same entry, same charge).
"""

from __future__ import annotations

import sys
from collections.abc import Iterable

from repro.core.incident import Incident, IncidentSet

__all__ = ["incident_nbytes", "incidents_nbytes", "POINTER_BYTES"]

#: Size charged per shared log-record reference.
POINTER_BYTES = 8

#: Flat charge for an entry's key and LRU bookkeeping.
ENTRY_OVERHEAD_BYTES = 64


def incident_nbytes(incident: Incident) -> int:
    """Estimated retained bytes of one cached :class:`Incident`.

    Counts the incident object, its record tuple, its lsn frozenset and
    its sort key, plus one pointer per member record.
    """
    return (
        sys.getsizeof(incident)
        + sys.getsizeof(incident.records)
        + sys.getsizeof(incident.lsns)
        + sys.getsizeof(incident.sort_key)
        + POINTER_BYTES * len(incident)
    )


def incidents_nbytes(incidents: Iterable[Incident] | IncidentSet) -> int:
    """Estimated retained bytes of a cached incident collection.

    Works for :class:`IncidentSet`, tuples and lists; the container
    itself is charged via ``sys.getsizeof`` when it is a concrete
    container, else as one pointer per element.
    """
    if isinstance(incidents, IncidentSet):
        members: Iterable[Incident] = incidents
        container = ENTRY_OVERHEAD_BYTES + POINTER_BYTES * len(incidents)
    elif isinstance(incidents, (tuple, list)):
        members = incidents
        container = sys.getsizeof(incidents)
    else:  # generic iterable: materialise once
        members = list(incidents)
        container = sys.getsizeof(members)
    return (
        ENTRY_OVERHEAD_BYTES
        + container
        + sum(incident_nbytes(incident) for incident in members)
    )

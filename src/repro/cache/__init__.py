"""Memory-bounded query/subpattern caching (``repro.cache``).

Two layers behind one :class:`QueryCache`:

* a **result layer** for whole-query
  :class:`~repro.core.incident.IncidentSet` results, keyed on the
  normalized pattern, the log's epoch identity and the result-relevant
  options;
* a **memo layer** for per-``(wid, subpattern)`` intermediates, the
  cross-call generalisation of the batch engine's shared-scan memo.

Invalidation is epoch-based: append-only stores bump an epoch per
record, snapshots are stamped with ``(lineage, epoch)``, and the memo
layer exploits wid-locality so entries for instances untouched by later
appends stay valid.  Both layers are LRU-evicted under configurable
byte budgets (:class:`CachePolicy`), and all hit/miss/eviction activity
is observable through :mod:`repro.obs`.

See ``docs/CACHING.md`` for the full model.
"""

from repro.cache.lru import LruBytes
from repro.cache.manager import (
    CachedResult,
    QueryCache,
    get_default_cache,
    reset_default_cache,
    resolve_cache,
)
from repro.cache.policy import (
    DEFAULT_MEMO_BUDGET,
    DEFAULT_RESULT_BUDGET,
    CachePolicy,
)
from repro.cache.sizing import incident_nbytes, incidents_nbytes

__all__ = [
    "CachePolicy",
    "CachedResult",
    "DEFAULT_MEMO_BUDGET",
    "DEFAULT_RESULT_BUDGET",
    "LruBytes",
    "QueryCache",
    "get_default_cache",
    "incident_nbytes",
    "incidents_nbytes",
    "reset_default_cache",
    "resolve_cache",
]

"""Cache configuration.

A :class:`CachePolicy` is a frozen value object describing *what* to
cache and *under which memory budget*; the runtime state lives in
:class:`~repro.cache.manager.QueryCache`.  Policies travel inside
:class:`~repro.core.options.EngineOptions`, so one immutable options
object fully determines a query's caching behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CachePolicy", "DEFAULT_RESULT_BUDGET", "DEFAULT_MEMO_BUDGET"]

#: Default byte budget of the whole-query result layer (32 MiB).
DEFAULT_RESULT_BUDGET = 32 * 1024 * 1024

#: Default byte budget of the per-(wid, subpattern) memo layer (32 MiB).
DEFAULT_MEMO_BUDGET = 32 * 1024 * 1024


@dataclass(frozen=True)
class CachePolicy:
    """What the query cache keeps, and how much memory it may hold.

    Attributes
    ----------
    enabled:
        Master switch; :meth:`CachePolicy.disabled` is the canonical off
        value.
    results:
        Keep whole-query :class:`~repro.core.incident.IncidentSet`
        results, keyed on ``(normalized pattern, log epoch, result-
        relevant options)``.
    memo:
        Keep per-``(wid, subpattern)`` intermediate incident lists, the
        cross-call generalisation of the batch engine's shared-scan
        memo.  Entries for instances untouched by later appends stay
        valid across snapshots of one store lineage.
    result_budget_bytes / memo_budget_bytes:
        LRU byte budgets per layer.  Entries are accounted with
        :func:`~repro.cache.sizing.incidents_nbytes`; the least recently
        used entries are evicted once a layer exceeds its budget, and an
        entry larger than the whole budget is rejected outright.
    equivalence_keys:
        Key the result layer on the :func:`repro.analysis.canonical_key`
        equivalence class of the pattern instead of its AC-canonical
        form: queries *proved* algebraically equal — even when no
        syntactic rewrite relates them, e.g. ``A & B`` vs ``(A -> B) |
        (B -> A)`` — share one entry.  Sound (equal keys imply equal
        incident sets on every log) but costs an automaton construction
        per distinct pattern; off by default.  Patterns the prover
        cannot handle fall back to the AC-canonical key.
    """

    enabled: bool = True
    results: bool = True
    memo: bool = True
    result_budget_bytes: int = DEFAULT_RESULT_BUDGET
    memo_budget_bytes: int = DEFAULT_MEMO_BUDGET
    equivalence_keys: bool = False

    def __post_init__(self) -> None:
        if self.result_budget_bytes < 0 or self.memo_budget_bytes < 0:
            raise ValueError("cache byte budgets must be >= 0")

    @classmethod
    def disabled(cls) -> "CachePolicy":
        """The canonical all-off policy."""
        return cls(enabled=False, results=False, memo=False)

    def with_budget(self, budget_bytes: int) -> "CachePolicy":
        """This policy with both layer budgets set to ``budget_bytes``."""
        return replace(
            self,
            result_budget_bytes=budget_bytes,
            memo_budget_bytes=budget_bytes,
        )

    @property
    def caches_results(self) -> bool:
        return self.enabled and self.results

    @property
    def caches_memo(self) -> bool:
        return self.enabled and self.memo

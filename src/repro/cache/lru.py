"""A byte-budgeted LRU map.

:class:`LruBytes` is the storage primitive under both cache layers: a
plain ``OrderedDict`` in recency order with explicit byte accounting.
Each entry carries the size its creator charged it with
(:mod:`repro.cache.sizing`); inserting past the budget evicts from the
cold end until the total fits again.  An entry that alone exceeds the
budget is *rejected* — storing it would immediately evict everything
else for a value that cannot stay.

The map itself is not thread-safe; :class:`~repro.cache.manager.QueryCache`
serialises access with one lock per cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

__all__ = ["LruBytes"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LruBytes(Generic[K, V]):
    """LRU map bounded by total accounted bytes, not entry count."""

    def __init__(
        self,
        budget_bytes: int,
        *,
        on_evict: Callable[[K, V, int], None] | None = None,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = budget_bytes
        self._entries: OrderedDict[K, tuple[V, int]] = OrderedDict()
        self._on_evict = on_evict
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: K) -> V | None:
        """The cached value, refreshed to most-recently-used; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def peek(self, key: K) -> V | None:
        """The cached value without touching recency or hit counters."""
        entry = self._entries.get(key)
        return None if entry is None else entry[0]

    def put(self, key: K, value: V, nbytes: int) -> bool:
        """Insert (or replace) an entry charged with ``nbytes``.

        Returns False when the entry alone exceeds the budget and was
        rejected; otherwise True, after evicting cold entries as needed.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes > self.budget_bytes:
            self.rejected += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self.total_bytes -= old[1]
        self._entries[key] = (value, nbytes)
        self.total_bytes += nbytes
        while self.total_bytes > self.budget_bytes and self._entries:
            cold_key, (cold_value, cold_bytes) = self._entries.popitem(last=False)
            self.total_bytes -= cold_bytes
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(cold_key, cold_value, cold_bytes)
        return True

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
        self.total_bytes = 0

    def keys(self) -> list[K]:
        """Keys from least to most recently used (for tests/introspection)."""
        return list(self._entries)

    def __repr__(self) -> str:
        return (
            f"LruBytes({len(self._entries)} entries, "
            f"{self.total_bytes}/{self.budget_bytes} bytes, "
            f"{self.hits} hit(s), {self.evictions} eviction(s))"
        )

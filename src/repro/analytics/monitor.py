"""Live anomaly monitoring over an append-only record stream.

Combines the anomaly rule library with the incremental evaluator: a
:class:`LiveMonitor` watches records as a workflow engine emits them and
raises :class:`Alert` objects the moment a rule's pattern completes —
the "runtime execution monitoring" capability the paper says warehousing
cannot provide.

Example
-------
>>> from repro.analytics.anomaly import clinic_rules
>>> from repro.core.model import LogRecord
>>> monitor = LiveMonitor(clinic_rules())
>>> for record in some_record_stream:          # doctest: +SKIP
...     for alert in monitor.observe(record):
...         page_the_auditor(alert)
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from time import perf_counter

from repro.analytics.anomaly import AnomalyRule, RuleSet
from repro.core.eval.incremental import IncrementalEvaluator
from repro.core.incident import Incident
from repro.core.model import LogRecord
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = ["Alert", "LiveMonitor"]

logger = get_logger("analytics.monitor")


@dataclass(frozen=True)
class Alert:
    """One rule completion: the rule, the completing record and the
    incident it completed."""

    rule: AnomalyRule
    record: LogRecord
    incident: Incident

    def format(self) -> str:
        members = ", ".join(f"l{r.lsn}:{r.activity}" for r in self.incident)
        return (
            f"[{self.rule.severity.upper()}] {self.rule.name} "
            f"completed at lsn={self.record.lsn} "
            f"(wid={self.incident.wid}): {{{members}}}"
        )


class LiveMonitor:
    """Evaluates a rule-set incrementally over an append-only stream.

    Parameters
    ----------
    rules:
        The rule-set to monitor.
    max_incidents_per_rule:
        Safety cap forwarded to each rule's incremental evaluator.
    on_alert:
        Optional callback invoked synchronously for every alert (in
        addition to alerts being returned from :meth:`observe`).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`: records
        observed / alerts raised counters plus an ``observe`` latency
        histogram, shared with each rule's incremental evaluator.
    """

    def __init__(
        self,
        rules: RuleSet,
        *,
        max_incidents_per_rule: int | None = 100_000,
        on_alert: Callable[[Alert], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.rules = rules
        self.on_alert = on_alert
        self.metrics = metrics
        self._evaluators: list[tuple[AnomalyRule, IncrementalEvaluator]] = [
            (
                rule,
                IncrementalEvaluator(
                    rule.pattern,
                    max_incidents=max_incidents_per_rule,
                    metrics=metrics,
                ),
            )
            for rule in rules
        ]
        self._alerts: list[Alert] = []

    def observe(self, record: LogRecord) -> list[Alert]:
        """Feed one record; returns the alerts it triggers."""
        started = perf_counter() if self.metrics is not None else 0.0
        new_alerts: list[Alert] = []
        for rule, evaluator in self._evaluators:
            for incident in evaluator.append(record):
                alert = Alert(rule, record, incident)
                new_alerts.append(alert)
                logger.debug(
                    "rule %s completed at lsn=%d (wid=%d)",
                    rule.name,
                    record.lsn,
                    incident.wid,
                )
                if self.on_alert is not None:
                    self.on_alert(alert)
        self._alerts.extend(new_alerts)
        if self.metrics is not None:
            self.metrics.counter("monitor.records_observed").inc()
            self.metrics.counter("monitor.alerts").inc(len(new_alerts))
            self.metrics.histogram("monitor.observe_seconds").observe(
                perf_counter() - started
            )
        return new_alerts

    def observe_all(self, records: Iterable[LogRecord]) -> list[Alert]:
        """Feed many records; returns all alerts raised."""
        out: list[Alert] = []
        for record in records:
            out.extend(self.observe(record))
        return out

    @property
    def alerts(self) -> tuple[Alert, ...]:
        """Every alert raised since construction."""
        return tuple(self._alerts)

    def alerts_for_rule(self, name: str) -> tuple[Alert, ...]:
        return tuple(a for a in self._alerts if a.rule.name == name)

    def offending_instances(self) -> dict[str, tuple[int, ...]]:
        """Per rule name, the instances with at least one alert."""
        out: dict[str, set[int]] = {}
        for alert in self._alerts:
            out.setdefault(alert.rule.name, set()).add(alert.incident.wid)
        return {name: tuple(sorted(wids)) for name, wids in out.items()}

    def __repr__(self) -> str:
        return (
            f"LiveMonitor({len(self._evaluators)} rules, "
            f"{len(self._alerts)} alerts)"
        )

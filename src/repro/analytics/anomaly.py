"""Anomaly / compliance rule library.

The paper's conclusion proposes using incident-pattern queries "in
application problems such as detecting anomalous or malicious behavior,
with applications in fraud detection".  This module packages that idea:
an :class:`AnomalyRule` is a named incident query with a severity and a
description; a :class:`RuleSet` runs many rules over a log and produces an
:class:`AnomalyReport` listing the offending workflow instances.

Ready-made rule sets are provided for the three bundled workflow models;
they double as realistic query workloads in the examples and benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.incident import IncidentSet
from repro.core.model import Log
from repro.core.parser import parse
from repro.core.pattern import Pattern
from repro.core.options import EngineOptions
from repro.core.query import Query

__all__ = [
    "AnomalyRule",
    "AnomalyReport",
    "RuleSet",
    "clinic_rules",
    "order_rules",
    "loan_rules",
]


@dataclass(frozen=True)
class AnomalyRule:
    """One named compliance/anomaly query.

    Attributes
    ----------
    name:
        Stable rule identifier (used in reports).
    pattern:
        The incident pattern whose matches *are* the anomaly.
    description:
        Analyst-facing explanation of what a match means.
    severity:
        ``info`` / ``warning`` / ``critical``.
    """

    name: str
    pattern: Pattern
    description: str
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.severity not in ("info", "warning", "critical"):
            raise ValueError("severity must be info/warning/critical")

    @classmethod
    def from_text(
        cls, name: str, pattern: str, description: str, severity: str = "warning"
    ) -> "AnomalyRule":
        """Build a rule from query-syntax text."""
        return cls(name, parse(pattern), description, severity)


@dataclass(frozen=True)
class Finding:
    """One rule's matches on one log."""

    rule: AnomalyRule
    incidents: IncidentSet

    @property
    def instance_ids(self) -> tuple[int, ...]:
        return self.incidents.wids()

    @property
    def count(self) -> int:
        return len(self.incidents)


@dataclass
class AnomalyReport:
    """All findings of a rule-set run."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def triggered(self) -> list[Finding]:
        """Findings with at least one incident, most severe first."""
        order = {"critical": 0, "warning": 1, "info": 2}
        hits = [f for f in self.findings if f.count]
        return sorted(hits, key=lambda f: (order[f.rule.severity], f.rule.name))

    def __bool__(self) -> bool:
        return bool(self.triggered)

    def format(self) -> str:
        """Multi-line report for CLI / log output."""
        if not self.triggered:
            return "no anomalies detected"
        lines = []
        for finding in self.triggered:
            rule = finding.rule
            instances = ", ".join(map(str, finding.instance_ids[:10]))
            more = (
                f" (+{len(finding.instance_ids) - 10} more)"
                if len(finding.instance_ids) > 10
                else ""
            )
            lines.append(
                f"[{rule.severity.upper():8}] {rule.name}: {finding.count} "
                f"incident(s) in instance(s) {instances}{more}\n"
                f"           {rule.description}"
            )
        return "\n".join(lines)


class RuleSet:
    """A collection of anomaly rules evaluated together.

    The rules share one engine and one optimizer pass per log, so scanning
    a log for dozens of compliance rules stays cheap.
    """

    def __init__(self, rules: Iterable[AnomalyRule] = ()):
        self._rules: list[AnomalyRule] = list(rules)
        names = [r.name for r in self._rules]
        if len(names) != len(set(names)):
            raise ValueError("rule names must be unique")

    def add(self, rule: AnomalyRule) -> "RuleSet":
        if any(r.name == rule.name for r in self._rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        return self

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[AnomalyRule]:
        return iter(self._rules)

    def run(self, log: Log, *, engine: str = "indexed") -> AnomalyReport:
        """Evaluate every rule; returns the full report."""
        report = AnomalyReport()
        for rule in self._rules:
            incidents = Query(rule.pattern, EngineOptions(engine=engine)).run(log)
            report.findings.append(Finding(rule, incidents))
        return report


def clinic_rules() -> RuleSet:
    """Compliance rules for the clinic referral process (Example 2),
    including the paper's running query."""
    return RuleSet(
        [
            AnomalyRule.from_text(
                "update-before-reimburse",
                "UpdateRefer -> GetReimburse",
                "Referral balance was raised before a reimbursement was "
                "paid — the paper's running fraud indicator.",
                "warning",
            ),
            AnomalyRule.from_text(
                "update-after-reimburse",
                "GetReimburse -> UpdateRefer",
                "Referral updated after reimbursement; the new balance can "
                "never be used legitimately.",
                "critical",
            ),
            AnomalyRule.from_text(
                "reimburse-without-visit",
                "CheckIn ; GetReimburse",
                "Reimbursement immediately after check-in, with no doctor "
                "visit or payment in between.",
                "critical",
            ),
            AnomalyRule.from_text(
                "double-reimburse",
                "GetReimburse -> GetReimburse",
                "Two reimbursements in one referral.",
                "critical",
            ),
            AnomalyRule.from_text(
                "high-balance-referral",
                "GetRefer[out.balance >= 5000] -> GetReimburse",
                "Reimbursement against a high-budget referral (>= 5000); "
                "sample for manual review.",
                "info",
            ),
        ]
    )


def order_rules() -> RuleSet:
    """Compliance rules for the order-fulfillment process."""
    return RuleSet(
        [
            AnomalyRule.from_text(
                "refund-before-delivery",
                "Refund -> Deliver",
                "Order refunded before it was delivered.",
                "critical",
            ),
            AnomalyRule.from_text(
                "ship-without-payment",
                "PaymentFailed -> (ShipExpress | ShipStandard)",
                "Order shipped although the last recorded payment attempt "
                "failed.",
                "warning",
            ),
            AnomalyRule.from_text(
                "double-refund",
                "Refund -> Refund",
                "Two refunds for one order.",
                "critical",
            ),
        ]
    )


def loan_rules() -> RuleSet:
    """Compliance rules for the loan-approval process."""
    return RuleSet(
        [
            AnomalyRule.from_text(
                "disburse-after-reject",
                "Reject -> Disburse",
                "Loan disbursed after an explicit rejection.",
                "critical",
            ),
            AnomalyRule.from_text(
                "skip-credit-check",
                "SubmitApplication ; (AutoApprove | ManualReview)",
                "Decision immediately after submission — the credit check "
                "was skipped.",
                "warning",
            ),
            AnomalyRule.from_text(
                "large-auto-approval",
                "SubmitApplication[out.amount >= 100000] -> AutoApprove",
                "Six-figure loan approved automatically; sample for review.",
                "info",
            ),
        ]
    )

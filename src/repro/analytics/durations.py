"""Duration analytics over timestamped logs.

The paper's introduction observes that under ETL, "if timestamps are not
extracted, analysis of activity duration is not possible".  Querying the
raw log has no such gap: when records carry a ``_ts`` output attribute
(see :class:`~repro.workflow.engine.SimulationConfig.record_timestamps`,
or any external log whose events carry a timestamp attribute), these
helpers compute duration statistics — including durations of *incident
matches*, which combines the temporal algebra with timing.

All statistics are returned as :class:`DurationStats` (count / mean /
median / p95 / max, numpy-computed).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.incident import Incident
from repro.core.model import Log, LogRecord

__all__ = [
    "DurationStats",
    "timestamp_of",
    "activity_sojourns",
    "cycle_times",
    "incident_durations",
    "waiting_times",
]

#: Default attribute carrying a record's timestamp.
TS_ATTRIBUTE = "_ts"


@dataclass(frozen=True)
class DurationStats:
    """Summary statistics of a duration sample (seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "DurationStats":
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            median=float(np.median(values)),
            p95=float(np.percentile(values, 95)),
            maximum=float(values.max()),
        )

    def format(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f}s median={self.median:.1f}s "
            f"p95={self.p95:.1f}s max={self.maximum:.1f}s"
        )


def timestamp_of(record: LogRecord, attribute: str = TS_ATTRIBUTE) -> float | None:
    """The record's timestamp, from its output map then its input map."""
    value = record.attrs_out.get(attribute, record.attrs_in.get(attribute))
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _require_timestamps(log: Log, attribute: str) -> None:
    if not any(timestamp_of(r, attribute) is not None for r in log):
        raise ValueError(
            f"log carries no {attribute!r} timestamps; simulate with "
            f"record_timestamps=True or point `attribute` at your field"
        )


def activity_sojourns(
    log: Log, *, attribute: str = TS_ATTRIBUTE
) -> dict[str, DurationStats]:
    """Per activity: time elapsed since the previous record of the same
    instance (the activity's sojourn: waiting + service).  Sentinels are
    excluded as activities but their timestamps anchor the gaps."""
    _require_timestamps(log, attribute)
    samples: dict[str, list[float]] = {}
    for wid in log.wids:
        trace = log.instance(wid)
        for previous, current in zip(trace, trace[1:]):
            if current.is_sentinel:
                continue
            t0 = timestamp_of(previous, attribute)
            t1 = timestamp_of(current, attribute)
            if t0 is None or t1 is None:
                continue
            samples.setdefault(current.activity, []).append(t1 - t0)
    return {
        activity: DurationStats.from_samples(values)
        for activity, values in sorted(samples.items())
    }


def cycle_times(log: Log, *, attribute: str = TS_ATTRIBUTE) -> DurationStats:
    """End-to-end duration of completed instances (END ts − START ts)."""
    _require_timestamps(log, attribute)
    samples = []
    for wid in log.wids:
        trace = log.instance(wid)
        if not log.is_complete(wid):
            continue
        t0 = timestamp_of(trace[0], attribute)
        t1 = timestamp_of(trace[-1], attribute)
        if t0 is not None and t1 is not None:
            samples.append(t1 - t0)
    return DurationStats.from_samples(samples)


def incident_durations(
    incidents: Iterable[Incident], *, attribute: str = TS_ATTRIBUTE
) -> DurationStats:
    """Durations of incident matches: last record ts − first record ts.

    Combining the algebra with timing answers questions like "how long
    between an UpdateRefer and the reimbursement it preceded?"::

        incidents = Query("UpdateRefer -> GetReimburse").run(log)
        stats = incident_durations(incidents)
    """
    samples = []
    for incident in incidents:
        t0 = timestamp_of(incident.records[0], attribute)
        t1 = timestamp_of(incident.records[-1], attribute)
        if t0 is not None and t1 is not None:
            samples.append(t1 - t0)
    return DurationStats.from_samples(samples)


def waiting_times(
    log: Log, first: str, then: str, *, attribute: str = TS_ATTRIBUTE
) -> DurationStats:
    """Per instance, the time from each ``first`` to the *next* ``then``
    after it (unanswered ``first``s contribute nothing)."""
    _require_timestamps(log, attribute)
    samples: list[float] = []
    for wid in log.wids:
        trace = log.instance(wid)
        pending: list[float] = []
        for record in trace:
            ts = timestamp_of(record, attribute)
            if record.activity == first and ts is not None:
                pending.append(ts)
            elif record.activity == then and ts is not None and pending:
                samples.extend(ts - t for t in pending)
                pending.clear()
    return DurationStats.from_samples(samples)

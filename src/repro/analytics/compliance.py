"""DECLARE-style compliance checking over workflow logs.

Process-mining practice expresses conformance rules as *declarative
constraint templates* (the DECLARE language: existence, response,
precedence, ...).  Incident patterns are existential — they find
*witnesses* — while DECLARE constraints are universal ("every A is
eventually followed by B"), so the two compose naturally: **a constraint
holds on an instance iff a violation-witness query finds nothing** (or,
for the existential templates, iff a witness exists).

This module implements the standard template catalogue on top of the
library, documenting per template how it is decided:

=====================  ===========================================================
template               decision procedure
=====================  ===========================================================
``existence(A)``       witness query ``A`` per instance
``absence(A)``         no witness of ``A``
``exactly_once(A)``    witness of ``A`` but none of ``A ⊳ A``
``init(A)``            first non-START record is A (positional check)
``last(A)``            last non-END record is A (positional check)
``response(A, B)``     no A after the last B (positional check over indices)
``precedence(A, B)``   no B before the first A
``succession(A, B)``   response ∧ precedence
``not_succession``     no witness of ``A ⊳ B``
``chain_response``     every A immediately followed by B (positional)
``coexistence(A, B)``  witnesses of A and B, or neither
``responded_existence``A present ⇒ B present
=====================  ===========================================================

Where a template reduces to a pure incident pattern the query engine is
used; the universally-quantified residue uses the per-instance traces
directly (the paper's algebra cannot express universal negation — this
module documents that boundary precisely).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.model import Log, LogRecord
from repro.core.parser import parse
from repro.core.options import EngineOptions
from repro.core.query import Query

__all__ = [
    "ConstraintResult",
    "ComplianceReport",
    "Constraint",
    "existence",
    "absence",
    "exactly_once",
    "init",
    "last",
    "response",
    "precedence",
    "succession",
    "not_succession",
    "chain_response",
    "coexistence",
    "responded_existence",
    "check",
]


@dataclass(frozen=True)
class Constraint:
    """One instantiated template.

    ``checker`` maps an instance trace (sentinels included) to True/False;
    ``via_pattern`` documents the incident pattern involved, when one is.
    """

    name: str
    description: str
    checker: object  # Callable[[Sequence[LogRecord]], bool]
    via_pattern: str | None = None

    def holds_on_trace(self, trace: Sequence[LogRecord]) -> bool:
        return self.checker(trace)  # type: ignore[operator]


@dataclass(frozen=True)
class ConstraintResult:
    """Outcome of one constraint over one log."""

    constraint: Constraint
    satisfied_instances: tuple[int, ...]
    violated_instances: tuple[int, ...]

    @property
    def holds(self) -> bool:
        return not self.violated_instances

    @property
    def support(self) -> float:
        """Fraction of instances satisfying the constraint."""
        total = len(self.satisfied_instances) + len(self.violated_instances)
        if total == 0:
            return 1.0
        return len(self.satisfied_instances) / total


@dataclass
class ComplianceReport:
    """Results of a constraint battery over one log."""

    results: list[ConstraintResult] = field(default_factory=list)

    @property
    def violated(self) -> list[ConstraintResult]:
        return [r for r in self.results if not r.holds]

    def __bool__(self) -> bool:
        return not self.violated

    def format(self) -> str:
        lines = []
        for result in self.results:
            mark = "OK  " if result.holds else "FAIL"
            lines.append(
                f"[{mark}] {result.constraint.name:<32} "
                f"support={result.support:6.1%}"
                + (
                    ""
                    if result.holds
                    else f"  violated by {list(result.violated_instances)[:8]}"
                )
            )
        return "\n".join(lines)


def _body(trace: Sequence[LogRecord]) -> list[LogRecord]:
    """Trace without START/END sentinels."""
    return [r for r in trace if not r.is_sentinel]


def _positions(trace: Sequence[LogRecord], activity: str) -> list[int]:
    return [i for i, r in enumerate(trace) if r.activity == activity]


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------

def existence(activity: str) -> Constraint:
    """``A`` occurs at least once."""
    return Constraint(
        name=f"existence({activity})",
        description=f"{activity} occurs at least once",
        checker=lambda trace: bool(_positions(trace, activity)),
        via_pattern=activity,
    )


def absence(activity: str) -> Constraint:
    """``A`` never occurs."""
    return Constraint(
        name=f"absence({activity})",
        description=f"{activity} never occurs",
        checker=lambda trace: not _positions(trace, activity),
        via_pattern=f"(no witness of {activity})",
    )


def exactly_once(activity: str) -> Constraint:
    """``A`` occurs exactly once (witness of A, no witness of A ⊳ A)."""
    return Constraint(
        name=f"exactly_once({activity})",
        description=f"{activity} occurs exactly once",
        checker=lambda trace: len(_positions(trace, activity)) == 1,
        via_pattern=f"{activity} and not ({activity} -> {activity})",
    )


def init(activity: str) -> Constraint:
    """The instance's first real activity is ``A``."""

    def checker(trace: Sequence[LogRecord]) -> bool:
        body = _body(trace)
        return bool(body) and body[0].activity == activity

    return Constraint(
        name=f"init({activity})",
        description=f"the first activity is {activity}",
        checker=checker,
    )


def last(activity: str) -> Constraint:
    """The instance's final real activity is ``A`` (meaningful for
    completed instances)."""

    def checker(trace: Sequence[LogRecord]) -> bool:
        body = _body(trace)
        return bool(body) and body[-1].activity == activity

    return Constraint(
        name=f"last({activity})",
        description=f"the last activity is {activity}",
        checker=checker,
    )


def response(first: str, then: str) -> Constraint:
    """Every ``first`` is eventually followed by a ``then``."""

    def checker(trace: Sequence[LogRecord]) -> bool:
        a_positions = _positions(trace, first)
        b_positions = _positions(trace, then)
        if not a_positions:
            return True
        return bool(b_positions) and b_positions[-1] > a_positions[-1]

    return Constraint(
        name=f"response({first}, {then})",
        description=f"every {first} is eventually followed by {then}",
        checker=checker,
    )


def precedence(first: str, then: str) -> Constraint:
    """No ``then`` before the first ``first``."""

    def checker(trace: Sequence[LogRecord]) -> bool:
        b_positions = _positions(trace, then)
        if not b_positions:
            return True
        a_positions = _positions(trace, first)
        return bool(a_positions) and a_positions[0] < b_positions[0]

    return Constraint(
        name=f"precedence({first}, {then})",
        description=f"{then} only after a {first}",
        checker=checker,
    )


def succession(first: str, then: str) -> Constraint:
    """``response(first, then)`` and ``precedence(first, then)``."""
    resp, prec = response(first, then), precedence(first, then)
    return Constraint(
        name=f"succession({first}, {then})",
        description=f"{first} and {then} occur in matched succession",
        checker=lambda trace: resp.holds_on_trace(trace)
        and prec.holds_on_trace(trace),
    )


def not_succession(first: str, then: str) -> Constraint:
    """``then`` never occurs after a ``first`` — the pure incident-pattern
    template: it holds iff ``first ⊳ then`` has no witness."""
    pattern_text = f"{first} -> {then}"
    query = Query(parse(pattern_text), EngineOptions(optimize=False))

    def checker(trace: Sequence[LogRecord]) -> bool:
        a_positions = _positions(trace, first)
        b_positions = _positions(trace, then)
        return not (
            a_positions and b_positions and b_positions[-1] > a_positions[0]
        )

    return Constraint(
        name=f"not_succession({first}, {then})",
        description=f"no {then} ever follows a {first}",
        checker=checker,
        via_pattern=pattern_text,
    )


def chain_response(first: str, then: str) -> Constraint:
    """Every ``first`` is *immediately* followed by ``then``."""

    def checker(trace: Sequence[LogRecord]) -> bool:
        for position in _positions(trace, first):
            if (
                position + 1 >= len(trace)
                or trace[position + 1].activity != then
            ):
                return False
        return True

    return Constraint(
        name=f"chain_response({first}, {then})",
        description=f"every {first} is immediately followed by {then}",
        checker=checker,
        via_pattern=f"violation witness: {first} ; !{then}",
    )


def coexistence(first: str, then: str) -> Constraint:
    """``first`` and ``then`` occur together or not at all."""

    def checker(trace: Sequence[LogRecord]) -> bool:
        return bool(_positions(trace, first)) == bool(_positions(trace, then))

    return Constraint(
        name=f"coexistence({first}, {then})",
        description=f"{first} and {then} co-occur",
        checker=checker,
    )


def responded_existence(first: str, then: str) -> Constraint:
    """If ``first`` occurs, ``then`` occurs (anywhere)."""

    def checker(trace: Sequence[LogRecord]) -> bool:
        return not _positions(trace, first) or bool(_positions(trace, then))

    return Constraint(
        name=f"responded_existence({first}, {then})",
        description=f"{first} occurring implies {then} occurs",
        checker=checker,
    )


# ---------------------------------------------------------------------------
# Batch checking
# ---------------------------------------------------------------------------

def check(log: Log, constraints: Iterable[Constraint]) -> ComplianceReport:
    """Evaluate every constraint on every instance of ``log``."""
    report = ComplianceReport()
    for constraint in constraints:
        satisfied: list[int] = []
        violated: list[int] = []
        for wid in log.wids:
            if constraint.holds_on_trace(log.instance(wid)):
                satisfied.append(wid)
            else:
                violated.append(wid)
        report.results.append(
            ConstraintResult(
                constraint=constraint,
                satisfied_instances=tuple(satisfied),
                violated_instances=tuple(violated),
            )
        )
    return report

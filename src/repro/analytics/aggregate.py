"""Grouping and counting over incident sets.

The paper's motivating questions are aggregates over incidents — "how many
students *every year* get referrals with balance > $5,000?".  Incident
sets are plain collections, so aggregation is a library of small
composable helpers rather than new language operators:

* :func:`group_incidents` — bucket incidents by any key function;
* :func:`count_by` — histogram of a key (e.g. an attribute value);
* :func:`instance_counts` — incidents per workflow instance;
* :func:`incident_table` — flatten incidents into rows for numpy/pandas-
  style downstream processing.

Key functions receive the :class:`~repro.core.incident.Incident`; the
:func:`attr_of` helper builds keys that read an attribute off the record
matching a given activity inside each incident.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Hashable, Iterable
from typing import Any

from repro.core.incident import Incident

__all__ = [
    "group_incidents",
    "count_by",
    "instance_counts",
    "incident_table",
    "attr_of",
]


def group_incidents(
    incidents: Iterable[Incident],
    key: Callable[[Incident], Hashable],
) -> dict[Hashable, list[Incident]]:
    """Bucket incidents by ``key(incident)``.

    Incidents whose key function returns ``None`` are collected under the
    ``None`` bucket (callers often drop it).
    """
    groups: dict[Hashable, list[Incident]] = {}
    for incident in incidents:
        groups.setdefault(key(incident), []).append(incident)
    return groups


def count_by(
    incidents: Iterable[Incident],
    key: Callable[[Incident], Hashable],
) -> Counter:
    """Histogram of ``key`` over the incidents."""
    counts: Counter = Counter()
    for incident in incidents:
        counts[key(incident)] += 1
    return counts


def instance_counts(incidents: Iterable[Incident]) -> Counter:
    """Number of incidents per workflow instance id."""
    return count_by(incidents, lambda o: o.wid)


def attr_of(
    activity: str, attribute: str, *, scope: str = "any"
) -> Callable[[Incident], Any]:
    """A key function reading ``attribute`` off the incident's first record
    of ``activity``.

    ``scope`` selects the input map (``"in"``), the output map (``"out"``)
    or either (``"any"``, output preferred).  Returns ``None`` when the
    incident has no such record or the record lacks the attribute.

    Example: count reimbursements by hospital::

        counts = count_by(q.run(log), attr_of("GetRefer", "hospital"))
    """
    if scope not in ("in", "out", "any"):
        raise ValueError("scope must be 'in', 'out' or 'any'")

    def key(incident: Incident) -> Any:
        for record in incident:
            if record.activity != activity:
                continue
            if scope in ("out", "any") and attribute in record.attrs_out:
                return record.attrs_out[attribute]
            if scope in ("in", "any") and attribute in record.attrs_in:
                return record.attrs_in[attribute]
            return None
        return None

    return key


def incident_table(incidents: Iterable[Incident]) -> list[dict[str, Any]]:
    """Flatten incidents into row dicts for downstream tabular analysis.

    One row per incident: ``wid``, ``first``, ``last``, ``size``,
    ``activities`` (execution-ordered tuple) and ``lsns``.
    """
    rows = []
    for incident in incidents:
        rows.append(
            {
                "wid": incident.wid,
                "first": incident.first,
                "last": incident.last,
                "size": len(incident),
                "activities": incident.activities(),
                "lsns": tuple(sorted(incident.lsns)),
            }
        )
    return rows

"""Analytics over incident sets.

* :mod:`repro.analytics.aggregate` — grouping and counting incidents by
  attribute values or extraction functions (the "how many per year"
  queries of the paper's introduction);
* :mod:`repro.analytics.anomaly` — a library of reusable anomaly /
  compliance queries (the fraud-detection application the paper's
  conclusion proposes);
* :mod:`repro.analytics.monitor` — live rule monitoring over an
  append-only record stream via the incremental evaluator;
* :mod:`repro.analytics.compliance` — DECLARE-style constraint templates
  decided through witness queries and trace checks;
* :mod:`repro.analytics.durations` — duration statistics over timestamped
  logs (activity sojourns, cycle times, incident durations).
"""

from repro.analytics.aggregate import (
    count_by,
    group_incidents,
    incident_table,
    instance_counts,
)
from repro.analytics.compliance import (
    ComplianceReport,
    Constraint,
    ConstraintResult,
    check,
)
from repro.analytics.durations import (
    DurationStats,
    activity_sojourns,
    cycle_times,
    incident_durations,
    waiting_times,
)
from repro.analytics.monitor import Alert, LiveMonitor
from repro.analytics.anomaly import (
    AnomalyReport,
    AnomalyRule,
    RuleSet,
    clinic_rules,
    loan_rules,
    order_rules,
)

__all__ = [
    "group_incidents",
    "count_by",
    "instance_counts",
    "incident_table",
    "AnomalyRule",
    "AnomalyReport",
    "RuleSet",
    "clinic_rules",
    "order_rules",
    "loan_rules",
    "Alert",
    "LiveMonitor",
    "Constraint",
    "ConstraintResult",
    "ComplianceReport",
    "check",
    "DurationStats",
    "activity_sojourns",
    "cycle_times",
    "incident_durations",
    "waiting_times",
]

"""CEP-style automaton baseline.

Complex-event-processing systems (ZStream, SASE, Cayuga — see the paper's
Related Work) match *sequence* patterns over event streams with automata.
This baseline covers the corresponding fragment of the incident algebra —
patterns built from atoms, ``⊙``, ``⊳`` and ``⊗`` (no ``⊕``) — with:

* :class:`ChainMatcher` — compiles the pattern into a set of *chains*
  (one per ⊗-branch; each chain is a list of (atom, gap) steps via
  :func:`repro.core.algebra.flatten_chain`) and then

  - ``exists``: one left-to-right NFA pass per instance trace, O(trace ×
    chain length) — no materialisation;
  - ``matches``: enumerates all incidents by recursive pointer descent
    over per-activity position lists (output-sensitive);

* :class:`AutomatonBaseline` — an Engine facade, raising
  :class:`~repro.core.errors.EvaluationError` for patterns containing
  ``⊕`` (exactly the expressiveness gap the benchmark B1 exposes).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator, Sequence

from repro.core.algebra import flatten_chain
from repro.core.errors import EvaluationError
from repro.core.eval.base import Engine, EvaluationStats
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log, LogRecord
from repro.core.pattern import (
    Atomic,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["ChainMatcher", "AutomatonBaseline", "supports"]


def supports(pattern: Pattern) -> bool:
    """Whether the automaton baseline can evaluate ``pattern`` (the
    ⊙/⊳/⊗ fragment; no ⊕, no windowed ⊳ — chain compilation keeps only
    the adjacent/after distinction)."""
    for node in pattern.walk():
        if isinstance(node, Parallel):
            return False
        if isinstance(node, Sequential) and type(node) is not Sequential:
            return False
    return True


#: One step of a compiled chain: the atom to match and how it attaches to
#: the previous step ("start" for the first, "adjacent" for ⊙, "after"
#: for ⊳).
_Step = tuple[Atomic, str]


def _compile_chains(pattern: Pattern) -> list[list[_Step]]:
    """Expand ⊗ and flatten ⊙/⊳ chains into step lists."""
    if isinstance(pattern, Choice):
        return _compile_chains(pattern.left) + _compile_chains(pattern.right)
    if isinstance(pattern, Atomic):
        return [[(pattern, "start")]]
    if isinstance(pattern, Parallel):
        raise EvaluationError(
            "the automaton baseline does not support the parallel operator"
        )
    assert isinstance(pattern, (Consecutive, Sequential))
    items, gaps = flatten_chain(pattern)
    chains: list[list[_Step]] = [[]]
    for index, item in enumerate(items):
        attach = "start" if index == 0 else (
            "adjacent" if isinstance(gaps[index - 1], Consecutive) else "after"
        )
        # each item is an atom or a choice of chains; splice its chains in
        # with the gap operator's attachment on the first step
        item_chains = _compile_chains(item)
        extended: list[list[_Step]] = []
        for prefix in chains:
            for sub_chain in item_chains:
                spliced = list(prefix)
                for position, (atom, sub_attach) in enumerate(sub_chain):
                    spliced.append(
                        (atom, attach if position == 0 else sub_attach)
                    )
                extended.append(spliced)
        chains = extended
    return chains


class ChainMatcher:
    """Compiled matcher for one pattern in the ⊙/⊳/⊗ fragment."""

    def __init__(self, pattern: Pattern):
        if not supports(pattern):
            raise EvaluationError(
                "the automaton baseline does not support the parallel operator"
            )
        self.pattern = pattern
        self.chains = _compile_chains(pattern)

    # -- existence: NFA pass ----------------------------------------------

    def exists_in_trace(self, trace: Sequence[LogRecord]) -> bool:
        """One left-to-right pass; True iff some chain matches ``trace``."""
        return any(self._chain_matches(chain, trace) for chain in self.chains)

    @staticmethod
    def _chain_matches(chain: list[_Step], trace: Sequence[LogRecord]) -> bool:
        """NFA subset simulation, linear in ``len(trace) * len(chain)``.

        State ``s`` means steps ``0..s-1`` are matched.  A state whose next
        step attaches with "after"/"start" is *persistent* (the step may
        fire at any later event); a state whose next step attaches with
        "adjacent" is *volatile* (the step must fire at the very next
        event or that thread dies).
        """
        n_steps = len(chain)
        persistent = [False] * (n_steps + 1)
        persistent[0] = True
        volatile: set[int] = set()
        for record in trace:
            next_volatile: set[int] = set()
            active = {s for s in range(n_steps) if persistent[s]} | volatile
            for s in active:
                atom, __ = chain[s]
                if not atom.matches(record):
                    continue  # no match for this step at this event
                if s + 1 == n_steps:
                    return True
                if chain[s + 1][1] == "adjacent":
                    next_volatile.add(s + 1)
                else:
                    persistent[s + 1] = True
            volatile = next_volatile
        return False

    # -- enumeration --------------------------------------------------------

    def matches_in_trace(self, trace: Sequence[LogRecord]) -> Iterator[Incident]:
        """Yield every incident in one instance trace (may repeat record
        sets across ⊗ branches; callers deduplicate)."""
        by_activity: dict[str, list[int]] = {}
        for index, record in enumerate(trace):
            by_activity.setdefault(record.activity, []).append(index)

        def candidates(atom: Atomic, start: int) -> Iterator[int]:
            if atom.negated:
                for index in range(start, len(trace)):
                    if atom.matches(trace[index]):
                        yield index
            else:
                positions = by_activity.get(atom.name, [])
                for index in positions[bisect_left(positions, start):]:
                    if atom.matches(trace[index]):
                        yield index

        def descend(chain: list[_Step], step: int, position: int,
                    chosen: list[int]) -> Iterator[Incident]:
            if step == len(chain):
                yield Incident([trace[i] for i in chosen])
                return
            atom, attach = chain[step]
            if attach == "adjacent":
                if position < len(trace) and atom.matches(trace[position]):
                    chosen.append(position)
                    yield from descend(chain, step + 1, position + 1, chosen)
                    chosen.pop()
                return
            for index in candidates(atom, position):
                chosen.append(index)
                yield from descend(chain, step + 1, index + 1, chosen)
                chosen.pop()

        for chain in self.chains:
            yield from descend(chain, 0, 0, [])

    # -- log-level API -------------------------------------------------------

    def exists(self, log: Log) -> bool:
        return any(self.exists_in_trace(log.instance(wid)) for wid in log.wids)

    def evaluate(self, log: Log) -> IncidentSet:
        incidents: list[Incident] = []
        for wid in log.wids:
            incidents.extend(self.matches_in_trace(log.instance(wid)))
        return IncidentSet(incidents)


class AutomatonBaseline(Engine):
    """Engine facade over :class:`ChainMatcher` (compiles per pattern)."""

    name = "automaton"

    def evaluate(self, log: Log, pattern: Pattern) -> IncidentSet:
        self.last_stats = EvaluationStats()
        result = ChainMatcher(pattern).evaluate(log)
        self._check_budget(len(result))
        return result

    def exists(self, log: Log, pattern: Pattern) -> bool:
        return ChainMatcher(pattern).exists(log)

"""ETL/SQL warehouse baseline (the paper's Figure 1 pipeline).

The traditional route the paper argues against: *extract* the log into a
relational schema, then answer questions with SQL.  We implement it
honestly so the benchmark comparison is fair:

* :class:`SqlWarehouse` — loads a log into an in-memory SQLite database
  (``records(lsn, wid, is_lsn, activity)`` with covering indices), the
  "data warehouse" after ETL;
* :func:`compile_to_sql` — compiles a choice-free incident pattern into
  one self-join ``SELECT``: one table alias per atomic leaf, a join
  predicate per operator node.  The per-node constraints use SQLite's
  scalar ``MIN``/``MAX`` over each subtree's leaf positions — exactly the
  ``first``/``last`` functions of Definition 4;
* choice patterns are compiled branch-wise (``⊗`` = UNION of branch
  queries), mirroring how an analyst would write them;
* :class:`SqlBaseline` — an :class:`~repro.core.eval.base.Engine` facade
  so the harness can swap it in anywhere.

Attribute maps are not loaded — the pure temporal fragment needs only the
activity/position columns, and this matches the paper's observation that
an ETL pipeline extracts a *projection* decided up front.

This module remains the *benchmark baseline* (denormalised text schema,
honest ETL cost).  The production SQL route is the pushdown backend in
:mod:`repro.columnar.sqlite` (``backend="sqlite"``): same compiler
skeleton, but over interned integer columns mirroring the columnar
layout, with the warehouse cached per columnar view.
"""

from __future__ import annotations

import sqlite3
from repro.core.algebra import choice_normal_form
from repro.core.errors import EvaluationError
from repro.core.eval.base import Engine, EvaluationStats
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["SqlWarehouse", "SqlBaseline", "compile_to_sql"]


class SqlWarehouse:
    """A log loaded into SQLite — the post-ETL warehouse."""

    def __init__(self, log: Log):
        self.log = log
        self.connection = sqlite3.connect(":memory:")
        self.connection.execute(
            """
            CREATE TABLE records (
                lsn      INTEGER PRIMARY KEY,
                wid      INTEGER NOT NULL,
                is_lsn   INTEGER NOT NULL,
                activity TEXT    NOT NULL
            )
            """
        )
        self.connection.execute(
            "CREATE INDEX idx_wid_activity ON records (wid, activity, is_lsn)"
        )
        self.connection.execute(
            "CREATE UNIQUE INDEX idx_wid_pos ON records (wid, is_lsn)"
        )
        self.connection.executemany(
            "INSERT INTO records VALUES (?, ?, ?, ?)",
            ((r.lsn, r.wid, r.is_lsn, r.activity) for r in log),
        )
        self.connection.commit()

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqlWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- query execution -----------------------------------------------

    def incidents(self, pattern: Pattern) -> IncidentSet:
        """Evaluate ``pattern`` through SQL and return its incident set."""
        found: set[frozenset[int]] = set()
        for sql in compile_to_sql(pattern):
            for row in self.connection.execute(sql):
                found.add(frozenset(row))
        return IncidentSet(
            Incident(self.log.record(lsn) for lsn in lsns) for lsns in found
        )

    def exists(self, pattern: Pattern) -> bool:
        """EXISTS-style evaluation with LIMIT 1 per branch."""
        for sql in compile_to_sql(pattern):
            cursor = self.connection.execute(f"{sql} LIMIT 1")
            if cursor.fetchone() is not None:
                return True
        return False

    def count_matching_instances(self, pattern: Pattern) -> int:
        """Number of distinct instances with at least one incident."""
        wids: set[int] = set()
        for sql in compile_to_sql(pattern, project_wid=True):
            wids.update(row[0] for row in self.connection.execute(sql))
        return len(wids)


def _scalar_min(columns: list[str]) -> str:
    return columns[0] if len(columns) == 1 else f"MIN({', '.join(columns)})"


def _scalar_max(columns: list[str]) -> str:
    return columns[0] if len(columns) == 1 else f"MAX({', '.join(columns)})"


def _compile_branch(pattern: Pattern, *, project_wid: bool) -> str:
    """One choice-free branch → one self-join SELECT."""
    aliases: list[str] = []
    predicates: list[str] = []

    def leaf_positions(node: Pattern, collected: list[str]) -> list[str]:
        """Compile ``node``; returns the is-lsn column list of its leaves."""
        if isinstance(node, Atomic):
            if type(node) is not Atomic:
                # e.g. attribute-guarded atoms: the warehouse schema only
                # carries the projection chosen at ETL time (the paper's
                # core criticism of the ETL route), so richer leaves
                # cannot be compiled.
                raise EvaluationError(
                    "the SQL warehouse projection has no attribute maps; "
                    f"cannot compile leaf {node!r}"
                )
            alias = f"r{len(aliases)}"
            aliases.append(alias)
            comparison = "!=" if node.negated else "="
            predicates.append(
                f"{alias}.activity {comparison} '{node.name.replace(chr(39), chr(39)*2)}'"
            )
            if aliases[0] != alias:
                predicates.append(f"{alias}.wid = {aliases[0]}.wid")
            column = f"{alias}.is_lsn"
            collected.append(column)
            return [column]
        assert isinstance(node, BinaryPattern)
        left_columns = leaf_positions(node.left, collected)
        right_columns = leaf_positions(node.right, collected)
        if isinstance(node, Consecutive):
            predicates.append(
                f"{_scalar_max(left_columns)} + 1 = {_scalar_min(right_columns)}"
            )
        elif isinstance(node, Sequential):
            predicates.append(
                f"{_scalar_max(left_columns)} < {_scalar_min(right_columns)}"
            )
            window = getattr(node, "bound", None)
            if window is not None:
                predicates.append(
                    f"{_scalar_min(right_columns)} <= "
                    f"{_scalar_max(left_columns)} + {int(window)}"
                )
        elif isinstance(node, Parallel):
            for left_column in left_columns:
                for right_column in right_columns:
                    predicates.append(f"{left_column} != {right_column}")
        else:  # pragma: no cover - choices were expanded away
            raise EvaluationError("unexpected choice in a compiled branch")
        return left_columns + right_columns

    columns: list[str] = []
    leaf_positions(pattern, columns)
    if project_wid:
        select = f"SELECT DISTINCT {aliases[0]}.wid"
    else:
        select = "SELECT " + ", ".join(f"{alias}.lsn" for alias in aliases)
    sql = (
        f"{select} FROM "
        + ", ".join(f"records {alias}" for alias in aliases)
    )
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql


def compile_to_sql(pattern: Pattern, *, project_wid: bool = False) -> list[str]:
    """Compile ``pattern`` into one SELECT per choice-free branch.

    Each row of a branch query is one incident: the ``lsn`` of the record
    matched by each atomic leaf (or, with ``project_wid``, just the
    instance id).  Rows may repeat record sets across branches — the caller
    deduplicates, as ``incL`` is a set.
    """
    return [
        _compile_branch(branch, project_wid=project_wid)
        for branch in choice_normal_form(pattern)
    ]


class SqlBaseline(Engine):
    """Engine facade over :class:`SqlWarehouse`.

    Each call pays the ETL cost (loading the log) unless the same log is
    passed repeatedly — the warehouse is cached per log identity,
    mirroring a pre-loaded warehouse in steady state.
    """

    name = "sql"

    def __init__(self, *, max_incidents: int | None = None, **kwargs):
        super().__init__(max_incidents=max_incidents, **kwargs)
        self._cache: tuple[int, SqlWarehouse] | None = None

    def _warehouse(self, log: Log) -> SqlWarehouse:
        if self._cache is not None and self._cache[0] == id(log):
            return self._cache[1]
        if self._cache is not None:
            self._cache[1].close()
        warehouse = SqlWarehouse(log)
        self._cache = (id(log), warehouse)
        return warehouse

    def evaluate(self, log: Log, pattern: Pattern) -> IncidentSet:
        self.last_stats = EvaluationStats()
        result = self._warehouse(log).incidents(pattern)
        self._check_budget(len(result))
        return result

    def exists(self, log: Log, pattern: Pattern) -> bool:
        return self._warehouse(log).exists(pattern)

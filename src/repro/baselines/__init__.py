"""Comparator systems.

* :mod:`repro.baselines.sql` — the ETL/OLAP route of the paper's Figure 1:
  records are extracted into a relational warehouse (in-memory SQLite) and
  incident patterns are compiled into self-join SQL;
* :mod:`repro.baselines.automaton` — a CEP-style sequence matcher in the
  spirit of the ZStream/SASE line of work the paper's Related Work
  discusses: NFA existence checks and chain-based match enumeration for
  the ⊙/⊳/⊗ fragment.
"""

from repro.baselines.automaton import AutomatonBaseline, ChainMatcher
from repro.baselines.sql import SqlBaseline, SqlWarehouse, compile_to_sql

__all__ = [
    "SqlWarehouse",
    "SqlBaseline",
    "compile_to_sql",
    "AutomatonBaseline",
    "ChainMatcher",
]

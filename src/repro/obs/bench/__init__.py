"""repro.obs.bench — continuous performance observability.

The benchmark harness behind ``repro-logs bench run|compare|report``:

* :mod:`repro.obs.bench.registry` — declarative, parameterised cases
  with deterministic seeded workloads (standard cases wrap the
  ``benchmarks/bench_*.py`` scenarios, see
  :mod:`repro.obs.bench.cases`);
* :mod:`repro.obs.bench.stats` — rank-based summaries (median / IQR /
  MAD with outlier rejection) for noisy wall-time samples;
* :mod:`repro.obs.bench.runner` — warmup + repetition execution,
  machine fingerprinting, and the versioned ``repro.obs.bench/v1``
  result document;
* :mod:`repro.obs.bench.history` — the append-only
  ``BENCH_history.jsonl`` trajectory;
* :mod:`repro.obs.bench.compare` — noise-aware pass / regress verdicts
  against the committed baselines in ``benchmarks/baselines/``.

Importing this package is cheap; the standard cases (which pull in the
evaluation stack) load on the first :func:`default_registry` call.
"""

from repro.obs.bench.compare import (
    CaseVerdict,
    CompareReport,
    compare_documents,
)
from repro.obs.bench.history import (
    DEFAULT_HISTORY,
    append_history,
    case_series,
    load_history,
    prune_history,
)
from repro.obs.bench.registry import BenchCase, BenchRegistry, default_registry
from repro.obs.bench.runner import (
    BENCH_SCHEMA,
    machine_fingerprint,
    run_case,
    run_suite,
)
from repro.obs.bench.stats import (
    iqr,
    mad,
    median,
    quantile,
    reject_outliers,
    summarize_samples,
)

__all__ = [
    "BenchCase",
    "BenchRegistry",
    "default_registry",
    "BENCH_SCHEMA",
    "machine_fingerprint",
    "run_case",
    "run_suite",
    "DEFAULT_HISTORY",
    "append_history",
    "load_history",
    "case_series",
    "prune_history",
    "CaseVerdict",
    "CompareReport",
    "compare_documents",
    "median",
    "quantile",
    "iqr",
    "mad",
    "reject_outliers",
    "summarize_samples",
]

"""Robust summary statistics for benchmark timing samples.

Wall-time samples are contaminated by one-sided noise (scheduler
preemption, page faults, turbo throttling): the distribution has a hard
floor near the true cost and a long right tail.  Means and standard
deviations are dominated by that tail, so every summary here is rank
based — the **median** locates a run, the **IQR** and the **MAD**
(median absolute deviation) measure its spread, and
:func:`reject_outliers` drops samples farther than ``k`` scaled MADs
from the median before anything else is computed (the modified z-score
rule; ``k=3.5`` is the conventional cutoff).

All functions are dependency-free and total: they accept any non-empty
sequence of finite numbers and never divide by zero (a zero MAD —
perfectly repeatable samples — rejects nothing).
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "median",
    "quantile",
    "iqr",
    "mad",
    "reject_outliers",
    "summarize_samples",
]

#: Consistency constant making the MAD estimate the standard deviation
#: of a normal distribution (1 / Phi^-1(3/4)).
MAD_SCALE = 1.4826

#: Default modified-z-score cutoff for :func:`reject_outliers`.
DEFAULT_MAD_K = 3.5


def _checked(samples: Sequence[float]) -> list[float]:
    values = [float(s) for s in samples]
    if not values:
        raise ValueError("need at least one sample")
    return values


def median(samples: Sequence[float]) -> float:
    """The middle order statistic (mean of the middle two for even n)."""
    values = sorted(_checked(samples))
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile, ``0 <= q <= 1`` (type-7, numpy's
    default), so ``quantile(s, 0.5) == median(s)``."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    values = sorted(_checked(samples))
    if len(values) == 1:
        return values[0]
    position = q * (len(values) - 1)
    low = int(position)
    frac = position - low
    if frac == 0.0:
        return values[low]
    return values[low] * (1.0 - frac) + values[low + 1] * frac


def iqr(samples: Sequence[float]) -> float:
    """Interquartile range: ``q3 - q1``."""
    return quantile(samples, 0.75) - quantile(samples, 0.25)


def mad(samples: Sequence[float], *, center: float | None = None) -> float:
    """Median absolute deviation from ``center`` (default: the median).

    Unscaled — multiply by :data:`MAD_SCALE` for a normal-consistent
    spread estimate.
    """
    values = _checked(samples)
    mid = median(values) if center is None else center
    return median([abs(v - mid) for v in values])


def reject_outliers(
    samples: Sequence[float], *, k: float = DEFAULT_MAD_K
) -> tuple[list[float], list[float]]:
    """Split samples into ``(kept, rejected)`` by the modified z-score.

    A sample is rejected when ``|x - median| > k * MAD_SCALE * MAD``.
    With a zero MAD (all samples identical up to the median) nothing is
    rejected — a degenerate spread means there is no scale to judge
    deviations against.
    """
    values = _checked(samples)
    mid = median(values)
    spread = mad(values, center=mid) * MAD_SCALE
    if spread == 0.0:
        return values, []
    kept: list[float] = []
    rejected: list[float] = []
    for value in values:
        (kept if abs(value - mid) <= k * spread else rejected).append(value)
    if not kept:  # pragma: no cover - impossible: the median always survives
        return values, []
    return kept, rejected


def summarize_samples(
    samples: Sequence[float], *, k: float = DEFAULT_MAD_K
) -> dict[str, float | int]:
    """Outlier-rejected summary of one timing series.

    The dict is exactly the ``stats`` object of a ``repro.obs.bench/v1``
    case: ``median_s``, ``min_s``, ``max_s``, ``mean_s``, ``iqr_s``,
    ``mad_s`` (scaled), ``n`` (kept sample count) and ``rejected``
    (dropped sample count).  ``n + rejected`` equals the raw count.
    """
    kept, rejected = reject_outliers(samples, k=k)
    return {
        "median_s": median(kept),
        "min_s": min(kept),
        "max_s": max(kept),
        "mean_s": sum(kept) / len(kept),
        "iqr_s": iqr(kept),
        "mad_s": mad(kept) * MAD_SCALE,
        "n": len(kept),
        "rejected": len(rejected),
    }

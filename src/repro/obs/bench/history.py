"""Benchmark history: an append-only JSONL trajectory.

Every ``repro-logs bench run`` appends its full ``repro.obs.bench/v1``
document as one line of ``BENCH_history.jsonl`` (path overridable), so
the file *is* the recorded perf trajectory of the working tree — greppable,
diffable and loadable without tooling.  The file is local state (it is
gitignored, like the ``BENCH_*.json`` run outputs); the *committed* perf
contract lives in ``benchmarks/baselines/``.

Lines that fail to parse are reported, not silently skipped: a corrupt
history should be noticed, then truncated deliberately.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.errors import ReproError

__all__ = [
    "DEFAULT_HISTORY",
    "append_history",
    "load_history",
    "case_series",
    "prune_history",
]

#: Default history file, in the invoking directory (gitignored).
DEFAULT_HISTORY = "BENCH_history.jsonl"


def append_history(document: dict[str, Any], path: str | Path = DEFAULT_HISTORY) -> Path:
    """Append one result document as a single JSONL line; returns the path."""
    target = Path(path)
    line = json.dumps(document, ensure_ascii=False, sort_keys=True)
    with target.open("a", encoding="utf-8") as fh:
        fh.write(line + "\n")
    return target


def load_history(path: str | Path = DEFAULT_HISTORY) -> list[dict[str, Any]]:
    """All recorded documents, oldest first; [] for a missing file."""
    target = Path(path)
    if not target.exists():
        return []
    documents: list[dict[str, Any]] = []
    for lineno, line in enumerate(
        target.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            documents.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{target}:{lineno}: corrupt history line ({exc.msg}); "
                f"truncate the file to repair"
            ) from None
    return documents


def prune_history(
    path: str | Path = DEFAULT_HISTORY, *, keep: int
) -> tuple[int, int]:
    """Keep only the newest ``keep`` runs; returns ``(dropped, kept)``.

    The file is rewritten atomically-enough for local state (full
    rewrite, same path).  A missing file or one already within the limit
    is left untouched.  Loading validates every line first, so a corrupt
    history is reported rather than truncated blindly.
    """
    if keep < 0:
        raise ReproError(f"--keep must be >= 0, got {keep}")
    documents = load_history(path)
    if len(documents) <= keep:
        return 0, len(documents)
    kept = documents[len(documents) - keep:]
    target = Path(path)
    lines = [
        json.dumps(document, ensure_ascii=False, sort_keys=True)
        for document in kept
    ]
    target.write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8"
    )
    return len(documents) - len(kept), len(kept)


def case_series(
    documents: list[dict[str, Any]], case_name: str
) -> list[tuple[int, dict[str, Any]]]:
    """The ``(created_unix, stats)`` trajectory of one case across runs.

    Runs not containing the case are skipped — suites overlap but do not
    all cover every case.
    """
    series: list[tuple[int, dict[str, Any]]] = []
    for document in documents:
        for case in document.get("cases", ()):
            if case.get("name") == case_name:
                series.append((int(document.get("created_unix", 0)), case["stats"]))
                break
    return series

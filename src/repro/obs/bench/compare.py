"""Noise-aware regression comparison between two bench documents.

Wall-clock medians move for three reasons: the code changed, the noise
changed, or the machine changed.  :func:`compare_documents` only calls
"regress" when the first explanation is the only one left standing — a
candidate median must exceed the baseline median by **both**

* a *relative* margin (``tolerance``, default 25%: below integer-factor
  territory but above run-to-run drift of a warm interpreter), and
* an *absolute* noise floor derived from the recorded spreads
  (``noise_k`` scaled MADs of whichever document is noisier) with a hard
  minimum of ``min_delta_s`` — sub-100µs cases jitter by scheduler
  quantum regardless of code.

Improvements are reported symmetrically (informational, never failing);
cases present on only one side read ``missing``/``new`` so a silently
shrinking suite cannot fake a pass.  A machine-fingerprint mismatch
demotes every timing verdict to advisory (``machine_matches`` False):
cross-host deltas are hardware, and CI enforces gating only on matching
fingerprints (or runs report-only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["CaseVerdict", "CompareReport", "compare_documents"]

#: Default relative regression threshold (candidate vs baseline median).
DEFAULT_TOLERANCE = 0.25

#: Default MAD multiplier for the absolute noise floor.
DEFAULT_NOISE_K = 3.0

#: Absolute floor below which a delta is never significant (seconds).
DEFAULT_MIN_DELTA_S = 1e-4


@dataclass(frozen=True)
class CaseVerdict:
    """The comparison outcome of one case."""

    name: str
    status: str  # "pass" | "regress" | "improve" | "missing" | "new"
    baseline_s: float | None = None
    candidate_s: float | None = None
    noise_floor_s: float = 0.0
    detail: str = ""

    @property
    def ratio(self) -> float | None:
        """candidate / baseline median, when both exist and baseline > 0."""
        if self.baseline_s and self.candidate_s is not None:
            return self.candidate_s / self.baseline_s
        return None

    def format(self) -> str:
        marks = {
            "pass": "ok      ",
            "improve": "improve ",
            "regress": "REGRESS ",
            "missing": "MISSING ",
            "new": "new     ",
        }
        line = f"{marks[self.status]}{self.name}"
        if self.baseline_s is not None and self.candidate_s is not None:
            line += (
                f"  {self.baseline_s * 1e3:.3f}ms -> {self.candidate_s * 1e3:.3f}ms"
                f"  (x{self.ratio:.2f})"
            )
        if self.detail:
            line += f"  [{self.detail}]"
        return line


@dataclass(frozen=True)
class CompareReport:
    """Every verdict of one baseline/candidate comparison."""

    verdicts: tuple[CaseVerdict, ...]
    tolerance: float
    machine_matches: bool

    @property
    def regressions(self) -> tuple[CaseVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "regress")

    @property
    def missing(self) -> tuple[CaseVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "missing")

    @property
    def ok(self) -> bool:
        """Gate verdict: no regressions and no silently dropped cases.

        Timing regressions only gate when the machines match; a missing
        case gates unconditionally (coverage does not depend on hardware).
        """
        if self.missing:
            return False
        return not (self.machine_matches and self.regressions)

    def format(self) -> str:
        lines = [v.format() for v in self.verdicts]
        counts: dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.status] = counts.get(verdict.status, 0) + 1
        summary = ", ".join(f"{n} {status}" for status, n in sorted(counts.items()))
        lines.append(
            f"--- {len(self.verdicts)} case(s): {summary}; "
            f"tolerance {self.tolerance:.0%}; "
            + (
                "machines match ---"
                if self.machine_matches
                else "MACHINES DIFFER (timing verdicts advisory) ---"
            )
        )
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _case_index(document: Mapping[str, Any]) -> dict[str, Mapping[str, Any]]:
    return {case["name"]: case for case in document.get("cases", ())}


def _median(case: Mapping[str, Any]) -> float:
    return float(case["stats"]["median_s"])


def _mad(case: Mapping[str, Any]) -> float:
    return float(case["stats"].get("mad_s", 0.0))


def compare_documents(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_k: float = DEFAULT_NOISE_K,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> CompareReport:
    """Compare two ``repro.obs.bench/v1`` documents case by case."""
    baseline_cases = _case_index(baseline)
    candidate_cases = _case_index(candidate)
    machine_matches = dict(baseline.get("machine", {})) == dict(
        candidate.get("machine", {})
    )

    verdicts: list[CaseVerdict] = []
    for name in sorted(baseline_cases.keys() | candidate_cases.keys()):
        base = baseline_cases.get(name)
        cand = candidate_cases.get(name)
        if base is None:
            assert cand is not None
            verdicts.append(
                CaseVerdict(
                    name=name,
                    status="new",
                    candidate_s=_median(cand),
                    detail="not in baseline",
                )
            )
            continue
        if cand is None:
            verdicts.append(
                CaseVerdict(
                    name=name,
                    status="missing",
                    baseline_s=_median(base),
                    detail="in baseline but not in this run",
                )
            )
            continue
        if dict(base.get("params", {})) != dict(cand.get("params", {})):
            verdicts.append(
                CaseVerdict(
                    name=name,
                    status="missing",
                    baseline_s=_median(base),
                    candidate_s=_median(cand),
                    detail="params changed; baseline is stale",
                )
            )
            continue
        base_s, cand_s = _median(base), _median(cand)
        noise_floor = max(noise_k * max(_mad(base), _mad(cand)), min_delta_s)
        delta = cand_s - base_s
        if delta > base_s * tolerance and delta > noise_floor:
            status = "regress"
        elif -delta > base_s * tolerance and -delta > noise_floor:
            status = "improve"
        else:
            status = "pass"
        verdicts.append(
            CaseVerdict(
                name=name,
                status=status,
                baseline_s=base_s,
                candidate_s=cand_s,
                noise_floor_s=noise_floor,
            )
        )
    return CompareReport(
        verdicts=tuple(verdicts),
        tolerance=tolerance,
        machine_matches=machine_matches,
    )

"""Benchmark execution: warmup, repetitions, robust summaries.

:func:`run_case` times one registry case — setup once (excluded), then
``warmup`` discarded calls, then ``repeats`` measured calls — and
summarises the wall-time samples with the outlier-rejecting statistics
of :mod:`repro.obs.bench.stats`.  :func:`run_suite` maps that over a
case selection and assembles the versioned ``repro.obs.bench/v1``
document (validated by :func:`repro.obs.export.validate_bench`):

.. code-block:: python

    {
      "schema": "repro.obs.bench/v1",
      "suite": "smoke",
      "created_unix": 1754... ,
      "machine": {"platform": ..., "python": ..., "cpu_count": ...},
      "config": {"warmup": 1, "repeats": 5, "mad_k": 3.5},
      "cases": [{"name": ..., "params": {...}, "samples_s": [...],
                 "stats": {"median_s": ..., "mad_s": ..., ...}}, ...]
    }

The machine fingerprint travels with every result so the comparator can
warn when a candidate and a baseline were recorded on different hosts —
cross-machine timing deltas are hardware, not regressions.
"""

from __future__ import annotations

import gc
import os
import platform
import time
from typing import Any, Callable, Sequence

from repro.obs.bench.registry import BenchCase
from repro.obs.bench.stats import DEFAULT_MAD_K, summarize_samples
from repro.obs.export import BENCH_SCHEMA

__all__ = ["machine_fingerprint", "run_case", "run_suite", "BENCH_SCHEMA"]

#: Default measured repetitions per case.
DEFAULT_REPEATS = 5

#: Default discarded warmup calls per case.
DEFAULT_WARMUP = 1


def machine_fingerprint() -> dict[str, Any]:
    """Stable identity of the measuring host.

    Everything that plausibly moves a timing by an integer factor:
    interpreter version and implementation, OS, CPU architecture and
    count.  Deliberately no hostname — fingerprints should compare equal
    across identical CI runners.
    """
    return {
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


def run_case(
    case: BenchCase,
    *,
    warmup: int = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    mad_k: float = DEFAULT_MAD_K,
) -> dict[str, Any]:
    """Time one case; returns its ``cases[]`` entry of the v1 document.

    The GC is collected once and disabled around the measured calls so a
    collection triggered by one sample does not land in another; samples
    are raw per-call wall times (no per-sample minimum), leaving spread
    estimation to the summary statistics.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    body = case.build()
    for _ in range(max(0, warmup)):
        body()
    samples: list[float] = []
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            body()
            samples.append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "name": case.name,
        "suites": list(case.suites),
        "params": dict(case.params),
        "samples_s": samples,
        "stats": summarize_samples(samples, k=mad_k),
    }


def run_suite(
    cases: Sequence[BenchCase],
    *,
    suite: str = "custom",
    warmup: int = DEFAULT_WARMUP,
    repeats: int = DEFAULT_REPEATS,
    mad_k: float = DEFAULT_MAD_K,
    progress: Callable[[str, int, int], None] | None = None,
) -> dict[str, Any]:
    """Run every case and assemble the ``repro.obs.bench/v1`` document.

    ``progress`` (if given) is called as ``progress(case_name, index,
    total)`` *before* each case runs — the CLI uses it for stderr
    feedback on long suites.
    """
    if not cases:
        raise ValueError("run_suite needs at least one case")
    results = []
    for index, case in enumerate(cases):
        if progress is not None:
            progress(case.name, index, len(cases))
        results.append(
            run_case(case, warmup=warmup, repeats=repeats, mad_k=mad_k)
        )
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "created_unix": int(time.time()),
        "machine": machine_fingerprint(),
        "config": {
            "warmup": int(warmup),
            "repeats": int(repeats),
            "mad_k": float(mad_k),
        },
        "cases": results,
    }

"""The standard benchmark cases: the ad-hoc ``benchmarks/bench_*.py``
scenarios as named, parameterised registry entries.

Every workload is built from a fixed seed (workflow simulation) or a
fixed literal trace shape, so two runs of the same case measure the
same work — the precondition for history and baseline comparison.  Case
names are hierarchical: ``<scenario>.<variant>``, where the scenario
matches the originating bench module:

* ``operators.*``    — Lemma 1 per-operator pairwise evaluation;
* ``scaling.*``      — Section 3.2 index vs scan behaviour;
* ``optimizer.*``    — Theorems 2-5 plan quality and planning overhead;
* ``parallel.*``     — wid-disjoint shard fan-out (PR 3);
* ``batch.*``        — shared-scan multi-query evaluation, including the
  subsumption-planned variant (PR 6);
* ``analysis.*``     — containment-prover compile + decide cost;
* ``incremental.*``  — streaming maintenance vs batch re-evaluation;
* ``cache.*``        — cold vs warm runs through the query cache;
* ``journal.*``      — lifecycle journal off / events-only / with the
  tracemalloc peak-allocation probe (PR 7);
* ``service.*``      — the HTTP daemon driven in-process through
  ``QueryService.dispatch``: warm-cache query latency and saturation
  shedding under a full worker pool (PR 8).

The ``smoke`` suite is the cheap CI subset (sub-second per case on any
host); ``full`` adds the larger sweeps.  Import cost: this module pulls
in the whole evaluation stack, so the registry loads it lazily via
:func:`repro.obs.bench.registry.default_registry`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.eval.incremental import IncrementalEvaluator
from repro.core.eval.indexed import IndexedEngine
from repro.core.eval.naive import (
    choice_eval,
    consecutive_eval,
    parallel_eval,
    sequential_eval,
)
from repro.core.incident import Incident
from repro.core.model import Log
from repro.core.optimizer import Optimizer
from repro.core.parser import parse
from repro.obs.bench.registry import BenchRegistry

__all__ = ["register_standard_cases", "operand_sets", "clinic_log", "skewed_log"]

_OPERATORS: dict[str, Callable[..., Any]] = {
    "consecutive": consecutive_eval,
    "sequential": sequential_eval,
    "choice": choice_eval,
    "parallel": parallel_eval,
}


def operand_sets(n: int) -> tuple[list[Incident], list[Incident]]:
    """Two atomic incident lists of size ``n`` over one instance — As
    then Bs, so pairwise operators produce their full quadratic output
    (the Lemma 1 workload of ``benchmarks/bench_operators.py``)."""
    log = Log.from_traces([["A"] * n + ["B"] * n])
    a = [Incident([r]) for r in log.with_activity("A")]
    b = [Incident([r]) for r in log.with_activity("B")]
    return a, b


def clinic_log(instances: int, seed: int = 1) -> Log:
    """A simulated clinic-referral log (the shared realistic workload)."""
    from repro.workflow.engine import SimulationConfig, WorkflowEngine
    from repro.workflow.models import clinic_referral_workflow

    engine = WorkflowEngine(clinic_referral_workflow())
    return engine.run(SimulationConfig(instances=instances, seed=seed))


def skewed_log(instances: int = 60, hot: int = 20) -> Log:
    """One rare activity ahead of a hot burst — the optimizer's best
    case (``benchmarks/bench_optimizer.py``)."""
    traces = {}
    for wid in range(1, instances + 1):
        traces[wid] = (["R"] if wid == 1 else []) + ["H"] * hot + ["M"] * 4
    return Log.from_traces(traces)


def register_standard_cases(registry: BenchRegistry) -> None:
    """Populate ``registry`` with the standard scenario cases."""

    # -- operators (Lemma 1) ----------------------------------------------

    for op_name in sorted(_OPERATORS):
        evaluate = _OPERATORS[op_name]

        def _operator_setup(n: int, _evaluate=evaluate) -> Callable[[], Any]:
            inc1, inc2 = operand_sets(n)
            return lambda: _evaluate(inc1, inc2)

        registry.case(
            f"operators.{op_name}",
            suites=("smoke", "full"),
            description=f"Lemma 1 pairwise {op_name} evaluation, n1=n2=n",
            n=128,
        )(_operator_setup)

    # -- scaling (Section 3.2) --------------------------------------------

    @registry.case(
        "scaling.atomic_indexed",
        suites=("smoke", "full"),
        description="atomic query through the per-activity index",
        instances=100,
    )
    def _atomic_indexed(instances: int) -> Callable[[], Any]:
        log = clinic_log(instances, seed=3)
        engine = IndexedEngine()
        pattern = parse("UpdateRefer")
        return lambda: engine.evaluate(log, pattern)

    @registry.case(
        "scaling.negated_scan",
        suites=("full",),
        description="negated atom forcing a full scan",
        instances=100,
    )
    def _negated_scan(instances: int) -> Callable[[], Any]:
        log = clinic_log(instances, seed=3)
        engine = IndexedEngine()
        pattern = parse("!UpdateRefer")
        return lambda: engine.evaluate(log, pattern)

    @registry.case(
        "scaling.chain",
        suites=("smoke", "full"),
        description="three-activity sequential chain vs instance count",
        instances=100,
    )
    def _chain(instances: int) -> Callable[[], Any]:
        log = clinic_log(instances, seed=3)
        engine = IndexedEngine()
        pattern = parse("GetRefer -> UpdateRefer -> GetReimburse")
        return lambda: engine.evaluate(log, pattern)

    # -- columnar (PR 10) --------------------------------------------------

    @registry.case(
        "columnar.build",
        suites=("smoke", "full"),
        description="ColumnarLog.from_log: intern + column fill over the "
        "scaling reference log",
        instances=100,
    )
    def _columnar_build(instances: int) -> Callable[[], Any]:
        from repro.columnar import ColumnarLog

        log = clinic_log(instances, seed=3)
        return lambda: ColumnarLog.from_log(log)

    @registry.case(
        "vector.join",
        suites=("smoke", "full"),
        description="the scaling.chain query through the vectorized "
        "span-tuple engine over a prebuilt columnar view",
        instances=100,
    )
    def _vector_join(instances: int) -> Callable[[], Any]:
        from repro.core.eval.vectorized import VectorizedEngine

        columnar = clinic_log(instances, seed=3).columnar()
        engine = VectorizedEngine()
        pattern = parse("GetRefer -> UpdateRefer -> GetReimburse")
        return lambda: engine.evaluate(columnar, pattern)

    @registry.case(
        "sqlite.pushdown",
        suites=("smoke", "full"),
        description="the scaling.chain query compiled to SQL against a "
        "pre-warmed in-memory sqlite warehouse",
        instances=100,
    )
    def _sqlite_pushdown(instances: int) -> Callable[[], Any]:
        from repro.columnar.sqlite import SqliteEngine

        columnar = clinic_log(instances, seed=3).columnar()
        engine = SqliteEngine()
        pattern = parse("GetRefer -> UpdateRefer -> GetReimburse")
        engine.evaluate(columnar, pattern)  # warm the warehouse load
        return lambda: engine.evaluate(columnar, pattern)

    # -- optimizer (Theorems 2-5) -----------------------------------------

    @registry.case(
        "optimizer.pathological_association",
        suites=("full",),
        description="rare-activity chain in the right-deep association",
        instances=60,
        hot=20,
    )
    def _pathological(instances: int, hot: int) -> Callable[[], Any]:
        log = skewed_log(instances, hot)
        engine = IndexedEngine()
        pattern = parse("R -> (H -> H)")
        return lambda: engine.evaluate(log, pattern)

    @registry.case(
        "optimizer.optimized_association",
        suites=("smoke", "full"),
        description="the same chain under the DP-chosen plan",
        instances=60,
        hot=20,
    )
    def _optimized(instances: int, hot: int) -> Callable[[], Any]:
        log = skewed_log(instances, hot)
        engine = IndexedEngine()
        plan = Optimizer.for_log(log).optimize(parse("R -> (H -> H)"))
        return lambda: engine.evaluate(log, plan.optimized)

    @registry.case(
        "optimizer.planning_overhead",
        suites=("smoke", "full"),
        description="cost of planning itself (must stay negligible)",
        instances=60,
        hot=20,
    )
    def _planning(instances: int, hot: int) -> Callable[[], Any]:
        log = skewed_log(instances, hot)
        optimizer = Optimizer.for_log(log)
        pattern = parse("R -> (H -> H)")
        return lambda: optimizer.optimize(pattern)

    # -- parallel / batch (PR 3) ------------------------------------------

    @registry.case(
        "parallel.serial_reference",
        suites=("smoke", "full"),
        description="direct engine evaluation — the sharding reference",
        instances=120,
    )
    def _parallel_serial(instances: int) -> Callable[[], Any]:
        log = clinic_log(instances, seed=42)
        engine = IndexedEngine()
        pattern = parse("GetRefer -> CheckIn -> SeeDoctor")
        return lambda: engine.evaluate(log, pattern)

    @registry.case(
        "parallel.process_j2",
        suites=("full",),
        description="2-worker process-pool shard fan-out, hash strategy",
        instances=120,
        jobs=2,
    )
    def _parallel_process(instances: int, jobs: int) -> Callable[[], Any]:
        from repro.exec.parallel import ParallelExecutor

        log = clinic_log(instances, seed=42)
        pattern = parse("GetRefer -> CheckIn -> SeeDoctor")
        executor = ParallelExecutor(jobs=jobs, backend="process", strategy="hash")
        return lambda: executor.evaluate(log, pattern)

    @registry.case(
        "batch.shared_scan",
        suites=("smoke", "full"),
        description="three overlapping chains in one shared-scan pass",
        instances=120,
    )
    def _batch(instances: int) -> Callable[[], Any]:
        from repro.exec.batch import evaluate_batch

        log = clinic_log(instances, seed=42)
        patterns = [
            parse("GetRefer -> CheckIn"),
            parse("GetRefer -> CheckIn -> SeeDoctor"),
            parse("GetRefer -> CheckIn -> UpdateRefer"),
        ]
        return lambda: evaluate_batch(log, patterns, optimize=False)

    @registry.case(
        "batch.subsumed",
        suites=("smoke", "full"),
        description="a containment chain answered by one scan + proved "
        "derivation instead of three scans",
        instances=120,
    )
    def _batch_subsumed(instances: int) -> Callable[[], Any]:
        from repro.analysis import plan_subsumption
        from repro.exec.batch import evaluate_batch

        log = clinic_log(instances, seed=42)
        patterns = [
            parse("GetRefer ; CheckIn"),
            parse("GetRefer -> CheckIn"),
            parse("(GetRefer -> CheckIn) | (CheckIn -> GetRefer)"),
        ]
        plan_subsumption(patterns)  # warm the shared prover's DFA memo
        return lambda: evaluate_batch(log, patterns, optimize=False)

    # -- analysis (containment prover) ------------------------------------

    @registry.case(
        "analysis.containment",
        suites=("smoke", "full"),
        description="compile + decide p ⊑ q on a fresh prover (no memo)",
    )
    def _analysis_containment() -> Callable[[], Any]:
        from repro.analysis import PatternProver

        p = parse("GetRefer ; CheckIn ; SeeDoctor")
        q = parse("GetRefer -> (CheckIn | SeeDoctor) -> SeeDoctor")

        def run() -> Any:
            prover = PatternProver()
            return prover.contains(p, q), prover.contains(q, p)

        return run

    # -- cache (result/memo layers) ---------------------------------------

    @registry.case(
        "cache.cold",
        suites=("smoke", "full"),
        description="uncached chain evaluation — the warm-run reference",
        instances=120,
    )
    def _cache_cold(instances: int) -> Callable[[], Any]:
        from repro.core.query import Query

        log = clinic_log(instances, seed=42)
        query = Query(parse("GetRefer -> CheckIn -> SeeDoctor"))
        return lambda: query.run(log)

    @registry.case(
        "cache.warm_result",
        suites=("smoke", "full"),
        description="the same chain served from the result layer",
        instances=120,
    )
    def _cache_warm_result(instances: int) -> Callable[[], Any]:
        from repro.cache import QueryCache
        from repro.core.options import EngineOptions
        from repro.core.query import Query

        log = clinic_log(instances, seed=42)
        query = Query(
            parse("GetRefer -> CheckIn -> SeeDoctor"),
            EngineOptions(cache=QueryCache()),
        )
        query.run(log)  # prime: every measured run is a result-layer hit
        return lambda: query.run(log)

    @registry.case(
        "cache.warm_memo",
        suites=("full",),
        description="the same chain re-joined from memoized sub-scans",
        instances=120,
    )
    def _cache_warm_memo(instances: int) -> Callable[[], Any]:
        from repro.cache import CachePolicy, QueryCache
        from repro.core.options import EngineOptions
        from repro.core.query import Query

        log = clinic_log(instances, seed=42)
        query = Query(
            parse("GetRefer -> CheckIn -> SeeDoctor"),
            EngineOptions(cache=QueryCache(CachePolicy(results=False))),
        )
        query.run(log)  # prime the per-(wid, subpattern) memo entries
        return lambda: query.run(log)

    # -- journal (query-lifecycle telemetry) ------------------------------

    @registry.case(
        "journal.off",
        suites=("smoke", "full"),
        description="journal disabled — the overhead reference run",
        instances=120,
    )
    def _journal_off(instances: int) -> Callable[[], Any]:
        from repro.core.options import EngineOptions
        from repro.core.query import Query

        log = clinic_log(instances, seed=42)
        query = Query(
            parse("GetRefer -> CheckIn -> SeeDoctor"),
            EngineOptions(optimize=False),
        )
        return lambda: query.run(log)

    @registry.case(
        "journal.events",
        suites=("smoke", "full"),
        description="in-memory journal, event emission only (memory=False)",
        instances=120,
    )
    def _journal_events(instances: int) -> Callable[[], Any]:
        from repro.core.options import EngineOptions
        from repro.core.query import Query
        from repro.obs.journal import QueryJournal

        log = clinic_log(instances, seed=42)
        query = Query(
            parse("GetRefer -> CheckIn -> SeeDoctor"),
            EngineOptions(optimize=False, journal=QueryJournal(memory=False)),
        )
        return lambda: query.run(log)

    @registry.case(
        "journal.traced",
        suites=("full",),
        description="journal with the tracemalloc peak-allocation probe",
        instances=120,
    )
    def _journal_traced(instances: int) -> Callable[[], Any]:
        from repro.core.options import EngineOptions
        from repro.core.query import Query
        from repro.obs.journal import QueryJournal

        log = clinic_log(instances, seed=42)
        query = Query(
            parse("GetRefer -> CheckIn -> SeeDoctor"),
            EngineOptions(optimize=False, journal=QueryJournal()),
        )
        return lambda: query.run(log)

    # -- incremental (streaming) ------------------------------------------

    @registry.case(
        "incremental.stream",
        suites=("smoke", "full"),
        description="maintain incL(p) record by record over a full log",
        instances=60,
    )
    def _incremental(instances: int) -> Callable[[], Any]:
        log = clinic_log(instances, seed=11)
        pattern = parse("UpdateRefer -> GetReimburse")

        def run() -> Any:
            evaluator = IncrementalEvaluator(pattern)
            for record in log:
                evaluator.append(record)
            return evaluator.incidents()

        return run

    # -- service (the HTTP daemon, driven in-process) ---------------------

    @registry.case(
        "service.query_warm",
        suites=("smoke", "full"),
        description="POST /v1/query served from the warm result layer "
        "(full dispatch: schema, clamp, admission, journal-free)",
        instances=120,
    )
    def _service_query_warm(instances: int) -> Callable[[], Any]:
        import json

        from repro.service import QueryService, ServiceConfig, StoreCatalog

        catalog = StoreCatalog()
        catalog.add_log("clinic", clinic_log(instances, seed=42))
        service = QueryService(catalog, ServiceConfig())
        body = json.dumps(
            {"log": "clinic", "pattern": "GetRefer -> CheckIn -> SeeDoctor"}
        ).encode()
        service.dispatch("POST", "/v1/query", body)  # prime the result layer

        def run() -> Any:
            response = service.dispatch("POST", "/v1/query", body)
            assert response.status == 200
            return response

        return run

    @registry.case(
        "live.window",
        suites=("smoke", "full"),
        description="windowed telemetry hot path: observe_request into the "
        "ring + merge a trailing 5-minute WindowSnapshot",
        observations=2_000,
    )
    def _live_window(observations: int) -> Callable[[], Any]:
        from repro.obs.live import WindowedAggregator

        # deterministic synthetic traffic over a 10-minute span so the
        # window merge walks many buckets with mixed attribution keys
        routes = ("/v1/query", "/v1/batch", "/v1/explain")
        stores = ("clinic", "orders", "loans")
        outcomes = [
            (
                routes[i % 3],
                stores[i % 3],
                f"A -> B{i % 7}",
                200 if i % 17 else 408,
                0.001 + (i % 50) / 1000.0,
                600.0 + i * (600.0 / observations),
            )
            for i in range(observations)
        ]

        def run() -> Any:
            aggregator = WindowedAggregator(bucket_s=10.0, window_s=900.0)
            for route, store, pattern, status, duration, ts in outcomes:
                aggregator.observe_request(
                    route,
                    status,
                    duration,
                    store=store,
                    pattern=pattern,
                    pairs=100,
                    killed=status == 408,
                    ts=ts,
                )
            snapshot = aggregator.window(300.0, now=1200.0)
            assert snapshot.total.count > 0
            return snapshot.total.latency.quantile(0.95)

        return run

    @registry.case(
        "service.saturation",
        suites=("smoke", "full"),
        description="16 concurrent uncached dispatches against a 2-slot "
        "pool — admitted work completes, overflow sheds with 429",
        instances=40,
        clients=16,
    )
    def _service_saturation(instances: int, clients: int) -> Callable[[], Any]:
        import json
        from concurrent.futures import ThreadPoolExecutor

        from repro.service import QueryService, ServiceConfig, StoreCatalog

        catalog = StoreCatalog()
        catalog.add_log("clinic", clinic_log(instances, seed=42))
        service = QueryService(
            catalog,
            ServiceConfig(
                max_concurrency=2, queue_depth=2, queue_timeout_ms=50.0
            ),
        )
        body = json.dumps(
            {
                "log": "clinic",
                "pattern": "GetRefer -> CheckIn -> SeeDoctor",
                "options": {"cache": False},
            }
        ).encode()
        pool = ThreadPoolExecutor(max_workers=clients)

        def run() -> Any:
            statuses = list(
                pool.map(
                    lambda _: service.dispatch("POST", "/v1/query", body).status,
                    range(clients),
                )
            )
            assert set(statuses) <= {200, 429}
            return statuses

        return run

"""Declarative benchmark registry.

A :class:`BenchCase` names one measurable scenario: a *setup* callable
builds the workload from a deterministic seed (excluded from timing) and
a *run* callable is the timed body.  Cases carry the suites they belong
to (``smoke`` is the tiny CI subset, ``full`` the complete sweep) and a
params dict that documents the workload scale — both are recorded into
the ``repro.obs.bench/v1`` result document, so two results are
comparable only when their cases describe the same work.

The registry replaces the ad-hoc ``benchmarks/bench_*.py`` timing
loops as the *recorded* perf surface: pytest benches still assert
complexity shapes, but the registry is what ``repro-logs bench run``
executes, what ``BENCH_history.jsonl`` accumulates, and what the
committed baselines under ``benchmarks/baselines/`` gate against.

>>> registry = BenchRegistry()
>>> @registry.case("operators.sequential", suites=("smoke",), n=64)
... def _sequential(n):
...     inc1, inc2 = make_operands(n)          # doctest: +SKIP
...     return lambda: sequential_eval(inc1, inc2)   # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.core.errors import ReproError

__all__ = ["BenchCase", "BenchRegistry", "default_registry"]

#: A setup callable: builds the workload, returns the zero-argument
#: timed body.  Setup cost (log generation, index building) is excluded
#: from every sample.
Setup = Callable[..., Callable[[], Any]]


@dataclass(frozen=True)
class BenchCase:
    """One named, parameterised benchmark scenario."""

    name: str
    setup: Setup
    suites: tuple[str, ...] = ("full",)
    params: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def build(self) -> Callable[[], Any]:
        """Run setup, returning the timed body."""
        body = self.setup(**dict(self.params))
        if not callable(body):
            raise ReproError(
                f"bench case {self.name!r}: setup must return the timed "
                f"callable, got {type(body).__name__}"
            )
        return body

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({params})" if params else self.name


class BenchRegistry:
    """Owns cases by unique name; selects by suite or explicit names."""

    def __init__(self) -> None:
        self._cases: dict[str, BenchCase] = {}

    def case(
        self,
        name: str,
        *,
        suites: tuple[str, ...] = ("full",),
        description: str = "",
        **params: Any,
    ) -> Callable[[Setup], Setup]:
        """Decorator registering ``setup`` as case ``name``.

        ``params`` are passed to setup as keyword arguments and recorded
        verbatim in result documents.
        """

        def register(setup: Setup) -> Setup:
            self.add(
                BenchCase(
                    name=name,
                    setup=setup,
                    suites=tuple(suites),
                    params=dict(params),
                    description=description or (setup.__doc__ or "").strip(),
                )
            )
            return setup

        return register

    def add(self, case: BenchCase) -> None:
        if case.name in self._cases:
            raise ReproError(f"bench case {case.name!r} already registered")
        if not case.suites:
            raise ReproError(f"bench case {case.name!r} belongs to no suite")
        self._cases[case.name] = case

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cases)

    def __iter__(self) -> Iterator[BenchCase]:
        return iter(self._cases[name] for name in sorted(self._cases))

    def get(self, name: str) -> BenchCase:
        try:
            return self._cases[name]
        except KeyError:
            raise ReproError(
                f"unknown bench case {name!r}; available: {sorted(self._cases)}"
            ) from None

    def suites(self) -> tuple[str, ...]:
        """Every suite any case belongs to, sorted."""
        return tuple(sorted({s for c in self._cases.values() for s in c.suites}))

    def select(
        self, *, suite: str | None = None, names: list[str] | None = None
    ) -> list[BenchCase]:
        """Cases for one run: by suite, by explicit names, or everything.

        Name selection validates every name; suite selection raises on a
        suite no case belongs to (a typo would otherwise read as an
        empty, trivially passing run).
        """
        if names:
            return [self.get(name) for name in names]
        if suite is None:
            return list(self)
        selected = [case for case in self if suite in case.suites]
        if not selected:
            raise ReproError(
                f"no bench cases in suite {suite!r}; available suites: "
                f"{list(self.suites())}"
            )
        return selected

    def __repr__(self) -> str:
        return f"BenchRegistry({len(self._cases)} case(s), suites={list(self.suites())})"


_DEFAULT: BenchRegistry | None = None


def default_registry() -> BenchRegistry:
    """The process-wide registry, populated with the standard cases of
    :mod:`repro.obs.bench.cases` on first use (imported lazily — the
    cases pull in the evaluation stack)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BenchRegistry()
        from repro.obs.bench import cases

        cases.register_standard_cases(_DEFAULT)
    return _DEFAULT

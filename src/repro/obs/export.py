"""Trace/metrics/profile/bench exporters and their stable JSON schemas.

Four document kinds, each tagged with a ``schema`` field so downstream
tooling can dispatch and version-check:

* ``repro.obs.trace/v1``   — a span tree (:func:`trace_to_dict`);
* ``repro.obs.metrics/v1`` — a registry snapshot (:func:`metrics_to_dict`);
* ``repro.obs.profile/v1`` — a per-node cost breakdown with cost-model
  predictions (:meth:`repro.obs.profile.ProfileReport.to_dict`);
* ``repro.obs.bench/v1``   — a benchmark-suite result with robust timing
  summaries and a machine fingerprint
  (:func:`repro.obs.bench.runner.run_suite`).

``validate_*`` functions are dependency-free structural validators (no
jsonschema): they raise :class:`SchemaError` on the first violation and
are what the CI smoke job and the golden-file tests run.  Timing fields
are the only non-deterministic part of a trace; ``include_timing=False``
omits them, giving byte-stable documents for golden files.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = [
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "BENCH_SCHEMA",
    "SchemaError",
    "trace_to_dict",
    "metrics_to_dict",
    "render_trace",
    "validate_trace",
    "validate_metrics",
    "validate_profile",
    "validate_bench",
]

TRACE_SCHEMA = "repro.obs.trace/v1"
METRICS_SCHEMA = "repro.obs.metrics/v1"
PROFILE_SCHEMA = "repro.obs.profile/v1"
BENCH_SCHEMA = "repro.obs.bench/v1"


class SchemaError(ValueError):
    """An exported document does not match its declared schema."""


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------

def _span_to_dict(span: Span, include_timing: bool) -> dict[str, Any]:
    node: dict[str, Any] = {
        "label": span.label,
        "count": span.count,
        "tags": {k: v for k, v in sorted(span.tags.items())},
        "metrics": {k: span.metrics[k] for k in sorted(span.metrics)},
        "children": [_span_to_dict(c, include_timing) for c in span.children],
    }
    if include_timing:
        node["elapsed_s"] = span.elapsed_s
        node["cpu_s"] = span.cpu_s
    return node


def trace_to_dict(root: Span, *, include_timing: bool = True) -> dict[str, Any]:
    """Serialise one trace tree to the ``repro.obs.trace/v1`` schema."""
    return {"schema": TRACE_SCHEMA, "root": _span_to_dict(root, include_timing)}


def metrics_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """Serialise a registry snapshot to the ``repro.obs.metrics/v1`` schema."""
    return {"schema": METRICS_SCHEMA, **registry.snapshot()}


# ---------------------------------------------------------------------------
# human-readable trace trees
# ---------------------------------------------------------------------------

def _span_line(span: Span, show_timing: bool) -> str:
    parts = [f"count={span.count}"]
    for name in ("n1", "n2", "pairs", "incidents"):
        if name in span.metrics:
            parts.append(f"{name}={span.metrics[name]:g}")
    if show_timing:
        parts.append(f"{span.elapsed_s * 1e3:.2f}ms")
    return f"{span.label}  [{' '.join(parts)}]"


def render_trace(root: Span, *, show_timing: bool = True) -> str:
    """ASCII tree of a trace, one line per span.

    Matches the connector style of
    :func:`repro.core.eval.tree.render_tree`.
    """
    lines = [_span_line(root, show_timing)]
    _render_children(root, "", lines, show_timing)
    return "\n".join(lines)


def _render_children(
    span: Span, prefix: str, lines: list[str], show_timing: bool
) -> None:
    children = span.children
    for index, child in enumerate(children):
        last = index == len(children) - 1
        connector, extension = ("└── ", "    ") if last else ("├── ", "│   ")
        lines.append(prefix + connector + _span_line(child, show_timing))
        _render_children(child, prefix + extension, lines, show_timing)


# ---------------------------------------------------------------------------
# validators
# ---------------------------------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _require_mapping(doc: Any, what: str) -> Mapping[str, Any]:
    _require(isinstance(doc, Mapping), f"{what} must be an object")
    return doc


def _validate_span(node: Any, path: str) -> None:
    node = _require_mapping(node, f"span {path}")
    for field in ("label", "count", "tags", "metrics", "children"):
        _require(field in node, f"span {path} is missing {field!r}")
    _require(isinstance(node["label"], str), f"span {path}: label must be a string")
    _require(
        isinstance(node["count"], int) and node["count"] >= 0,
        f"span {path}: count must be a non-negative integer",
    )
    _require_mapping(node["tags"], f"span {path} tags")
    metrics = _require_mapping(node["metrics"], f"span {path} metrics")
    for name, value in metrics.items():
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"span {path}: metric {name!r} must be numeric",
        )
    for field in ("elapsed_s", "cpu_s"):
        if field in node:
            _require(
                isinstance(node[field], (int, float)) and node[field] >= 0,
                f"span {path}: {field} must be a non-negative number",
            )
    _require(isinstance(node["children"], list), f"span {path}: children must be a list")
    for index, child in enumerate(node["children"]):
        _validate_span(child, f"{path}.{index}")


def validate_trace(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid trace export."""
    doc = _require_mapping(doc, "trace document")
    _require(doc.get("schema") == TRACE_SCHEMA, f"schema must be {TRACE_SCHEMA!r}")
    _require("root" in doc, "trace document is missing 'root'")
    _validate_span(doc["root"], "root")


def validate_metrics(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid metrics export."""
    doc = _require_mapping(doc, "metrics document")
    _require(doc.get("schema") == METRICS_SCHEMA, f"schema must be {METRICS_SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        _require(section in doc, f"metrics document is missing {section!r}")
    for name, value in _require_mapping(doc["counters"], "counters").items():
        _require(
            isinstance(value, int) and value >= 0,
            f"counter {name!r} must be a non-negative integer",
        )
    for name, value in _require_mapping(doc["gauges"], "gauges").items():
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"gauge {name!r} must be numeric",
        )
    for name, hist in _require_mapping(doc["histograms"], "histograms").items():
        hist = _require_mapping(hist, f"histogram {name!r}")
        for field in ("buckets", "counts", "sum", "count"):
            _require(field in hist, f"histogram {name!r} is missing {field!r}")
        buckets, counts = hist["buckets"], hist["counts"]
        _require(
            isinstance(buckets, list) and isinstance(counts, list),
            f"histogram {name!r}: buckets/counts must be lists",
        )
        _require(
            len(counts) == len(buckets) + 1,
            f"histogram {name!r}: need len(buckets)+1 counts (overflow bucket)",
        )
        _require(
            list(buckets) == sorted(set(float(b) for b in buckets)),
            f"histogram {name!r}: boundaries must be unique and ascending",
        )
        _require(
            sum(counts) == hist["count"],
            f"histogram {name!r}: counts must sum to 'count'",
        )


_PROFILE_NODE_FIELDS: dict[str, type | tuple[type, ...]] = {
    "path": str,
    "label": str,
    "kind": str,
    "count": int,
    "incidents": (int, float),
    "elapsed_s": (int, float),
    "self_s": (int, float),
}

_PROFILE_TOTAL_FIELDS = (
    "operator_evals",
    "pairs_examined",
    "incidents_produced",
    "max_live_incidents",
    "predicted_pairs",
    "elapsed_s",
)


def validate_profile(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid profile export."""
    doc = _require_mapping(doc, "profile document")
    _require(doc.get("schema") == PROFILE_SCHEMA, f"schema must be {PROFILE_SCHEMA!r}")
    for field in ("engine", "pattern", "optimized", "totals", "nodes", "hottest"):
        _require(field in doc, f"profile document is missing {field!r}")
    _require(isinstance(doc["engine"], str), "engine must be a string")
    _require(isinstance(doc["pattern"], str), "pattern must be a string")
    _require(isinstance(doc["optimized"], str), "optimized must be a string")
    totals = _require_mapping(doc["totals"], "totals")
    for field in _PROFILE_TOTAL_FIELDS:
        _require(field in totals, f"totals is missing {field!r}")
        _require(
            isinstance(totals[field], (int, float)) and not isinstance(totals[field], bool),
            f"totals[{field!r}] must be numeric",
        )
    nodes = doc["nodes"]
    _require(isinstance(nodes, list) and nodes, "nodes must be a non-empty list")
    paths = set()
    for node in nodes:
        node = _require_mapping(node, "profile node")
        for field, kinds in _PROFILE_NODE_FIELDS.items():
            _require(field in node, f"profile node is missing {field!r}")
            _require(
                isinstance(node[field], kinds) and not isinstance(node[field], bool),
                f"profile node field {field!r} has the wrong type",
            )
        _require(node["kind"] in ("operator", "leaf"), "node kind must be operator|leaf")
        if node["kind"] == "operator":
            for field in ("operator", "n1", "n2", "pairs", "predicted_pairs"):
                _require(field in node, f"operator node is missing {field!r}")
        paths.add(node["path"])
    hottest = _require_mapping(doc["hottest"], "hottest")
    _require("path" in hottest and "label" in hottest, "hottest needs path and label")
    _require(hottest["path"] in paths, "hottest.path must name an exported node")


_BENCH_MACHINE_FIELDS = ("platform", "machine", "python", "implementation", "cpu_count")

_BENCH_STAT_FIELDS = ("median_s", "min_s", "max_s", "mean_s", "iqr_s", "mad_s")


def _require_number(value: Any, what: str, *, nonnegative: bool = True) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{what} must be numeric",
    )
    if nonnegative:
        _require(value >= 0, f"{what} must be non-negative")


def validate_bench(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid bench export."""
    doc = _require_mapping(doc, "bench document")
    _require(doc.get("schema") == BENCH_SCHEMA, f"schema must be {BENCH_SCHEMA!r}")
    for field in ("suite", "created_unix", "machine", "config", "cases"):
        _require(field in doc, f"bench document is missing {field!r}")
    _require(isinstance(doc["suite"], str) and doc["suite"], "suite must be a string")
    _require(
        isinstance(doc["created_unix"], int) and doc["created_unix"] >= 0,
        "created_unix must be a non-negative integer",
    )
    machine = _require_mapping(doc["machine"], "machine")
    for field in _BENCH_MACHINE_FIELDS:
        _require(field in machine, f"machine is missing {field!r}")
    config = _require_mapping(doc["config"], "config")
    for field in ("warmup", "repeats", "mad_k"):
        _require(field in config, f"config is missing {field!r}")
    _require(
        isinstance(config["repeats"], int) and config["repeats"] >= 1,
        "config.repeats must be a positive integer",
    )
    cases = doc["cases"]
    _require(isinstance(cases, list) and cases, "cases must be a non-empty list")
    seen: set[str] = set()
    for case in cases:
        case = _require_mapping(case, "bench case")
        for field in ("name", "suites", "params", "samples_s", "stats"):
            _require(field in case, f"bench case is missing {field!r}")
        name = case["name"]
        _require(isinstance(name, str) and bool(name), "case name must be a string")
        _require(name not in seen, f"duplicate bench case {name!r}")
        seen.add(name)
        _require(
            isinstance(case["suites"], list)
            and all(isinstance(s, str) for s in case["suites"]),
            f"case {name!r}: suites must be a list of strings",
        )
        _require_mapping(case["params"], f"case {name!r} params")
        samples = case["samples_s"]
        _require(
            isinstance(samples, list) and samples,
            f"case {name!r}: samples_s must be a non-empty list",
        )
        for sample in samples:
            _require_number(sample, f"case {name!r}: sample")
        stats = _require_mapping(case["stats"], f"case {name!r} stats")
        for field in _BENCH_STAT_FIELDS:
            _require(field in stats, f"case {name!r}: stats missing {field!r}")
            _require_number(stats[field], f"case {name!r}: stats[{field!r}]")
        for field in ("n", "rejected"):
            _require(field in stats, f"case {name!r}: stats missing {field!r}")
            _require(
                isinstance(stats[field], int) and stats[field] >= 0,
                f"case {name!r}: stats[{field!r}] must be a non-negative integer",
            )
        _require(
            stats["n"] >= 1,
            f"case {name!r}: stats.n must be >= 1 (the median always survives)",
        )
        _require(
            stats["n"] + stats["rejected"] == len(samples),
            f"case {name!r}: kept + rejected must equal the sample count",
        )
        _require(
            stats["min_s"] <= stats["median_s"] <= stats["max_s"],
            f"case {name!r}: median must lie within [min, max]",
        )

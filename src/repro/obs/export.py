"""Trace/metrics/profile exporters and their stable JSON schemas.

Three document kinds, each tagged with a ``schema`` field so downstream
tooling can dispatch and version-check:

* ``repro.obs.trace/v1``   — a span tree (:func:`trace_to_dict`);
* ``repro.obs.metrics/v1`` — a registry snapshot (:func:`metrics_to_dict`);
* ``repro.obs.profile/v1`` — a per-node cost breakdown with cost-model
  predictions (:meth:`repro.obs.profile.ProfileReport.to_dict`).

``validate_*`` functions are dependency-free structural validators (no
jsonschema): they raise :class:`SchemaError` on the first violation and
are what the CI smoke job and the golden-file tests run.  Timing fields
are the only non-deterministic part of a trace; ``include_timing=False``
omits them, giving byte-stable documents for golden files.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = [
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "SchemaError",
    "trace_to_dict",
    "metrics_to_dict",
    "render_trace",
    "validate_trace",
    "validate_metrics",
    "validate_profile",
]

TRACE_SCHEMA = "repro.obs.trace/v1"
METRICS_SCHEMA = "repro.obs.metrics/v1"
PROFILE_SCHEMA = "repro.obs.profile/v1"


class SchemaError(ValueError):
    """An exported document does not match its declared schema."""


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------

def _span_to_dict(span: Span, include_timing: bool) -> dict[str, Any]:
    node: dict[str, Any] = {
        "label": span.label,
        "count": span.count,
        "tags": {k: v for k, v in sorted(span.tags.items())},
        "metrics": {k: span.metrics[k] for k in sorted(span.metrics)},
        "children": [_span_to_dict(c, include_timing) for c in span.children],
    }
    if include_timing:
        node["elapsed_s"] = span.elapsed_s
        node["cpu_s"] = span.cpu_s
    return node


def trace_to_dict(root: Span, *, include_timing: bool = True) -> dict[str, Any]:
    """Serialise one trace tree to the ``repro.obs.trace/v1`` schema."""
    return {"schema": TRACE_SCHEMA, "root": _span_to_dict(root, include_timing)}


def metrics_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """Serialise a registry snapshot to the ``repro.obs.metrics/v1`` schema."""
    return {"schema": METRICS_SCHEMA, **registry.snapshot()}


# ---------------------------------------------------------------------------
# human-readable trace trees
# ---------------------------------------------------------------------------

def _span_line(span: Span, show_timing: bool) -> str:
    parts = [f"count={span.count}"]
    for name in ("n1", "n2", "pairs", "incidents"):
        if name in span.metrics:
            parts.append(f"{name}={span.metrics[name]:g}")
    if show_timing:
        parts.append(f"{span.elapsed_s * 1e3:.2f}ms")
    return f"{span.label}  [{' '.join(parts)}]"


def render_trace(root: Span, *, show_timing: bool = True) -> str:
    """ASCII tree of a trace, one line per span.

    Matches the connector style of
    :func:`repro.core.eval.tree.render_tree`.
    """
    lines = [_span_line(root, show_timing)]
    _render_children(root, "", lines, show_timing)
    return "\n".join(lines)


def _render_children(
    span: Span, prefix: str, lines: list[str], show_timing: bool
) -> None:
    children = span.children
    for index, child in enumerate(children):
        last = index == len(children) - 1
        connector, extension = ("└── ", "    ") if last else ("├── ", "│   ")
        lines.append(prefix + connector + _span_line(child, show_timing))
        _render_children(child, prefix + extension, lines, show_timing)


# ---------------------------------------------------------------------------
# validators
# ---------------------------------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _require_mapping(doc: Any, what: str) -> Mapping[str, Any]:
    _require(isinstance(doc, Mapping), f"{what} must be an object")
    return doc


def _validate_span(node: Any, path: str) -> None:
    node = _require_mapping(node, f"span {path}")
    for field in ("label", "count", "tags", "metrics", "children"):
        _require(field in node, f"span {path} is missing {field!r}")
    _require(isinstance(node["label"], str), f"span {path}: label must be a string")
    _require(
        isinstance(node["count"], int) and node["count"] >= 0,
        f"span {path}: count must be a non-negative integer",
    )
    _require_mapping(node["tags"], f"span {path} tags")
    metrics = _require_mapping(node["metrics"], f"span {path} metrics")
    for name, value in metrics.items():
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"span {path}: metric {name!r} must be numeric",
        )
    for field in ("elapsed_s", "cpu_s"):
        if field in node:
            _require(
                isinstance(node[field], (int, float)) and node[field] >= 0,
                f"span {path}: {field} must be a non-negative number",
            )
    _require(isinstance(node["children"], list), f"span {path}: children must be a list")
    for index, child in enumerate(node["children"]):
        _validate_span(child, f"{path}.{index}")


def validate_trace(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid trace export."""
    doc = _require_mapping(doc, "trace document")
    _require(doc.get("schema") == TRACE_SCHEMA, f"schema must be {TRACE_SCHEMA!r}")
    _require("root" in doc, "trace document is missing 'root'")
    _validate_span(doc["root"], "root")


def validate_metrics(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid metrics export."""
    doc = _require_mapping(doc, "metrics document")
    _require(doc.get("schema") == METRICS_SCHEMA, f"schema must be {METRICS_SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        _require(section in doc, f"metrics document is missing {section!r}")
    for name, value in _require_mapping(doc["counters"], "counters").items():
        _require(
            isinstance(value, int) and value >= 0,
            f"counter {name!r} must be a non-negative integer",
        )
    for name, value in _require_mapping(doc["gauges"], "gauges").items():
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"gauge {name!r} must be numeric",
        )
    for name, hist in _require_mapping(doc["histograms"], "histograms").items():
        hist = _require_mapping(hist, f"histogram {name!r}")
        for field in ("buckets", "counts", "sum", "count"):
            _require(field in hist, f"histogram {name!r} is missing {field!r}")
        buckets, counts = hist["buckets"], hist["counts"]
        _require(
            isinstance(buckets, list) and isinstance(counts, list),
            f"histogram {name!r}: buckets/counts must be lists",
        )
        _require(
            len(counts) == len(buckets) + 1,
            f"histogram {name!r}: need len(buckets)+1 counts (overflow bucket)",
        )
        _require(
            list(buckets) == sorted(set(float(b) for b in buckets)),
            f"histogram {name!r}: boundaries must be unique and ascending",
        )
        _require(
            sum(counts) == hist["count"],
            f"histogram {name!r}: counts must sum to 'count'",
        )


_PROFILE_NODE_FIELDS: dict[str, type | tuple[type, ...]] = {
    "path": str,
    "label": str,
    "kind": str,
    "count": int,
    "incidents": (int, float),
    "elapsed_s": (int, float),
    "self_s": (int, float),
}

_PROFILE_TOTAL_FIELDS = (
    "operator_evals",
    "pairs_examined",
    "incidents_produced",
    "max_live_incidents",
    "predicted_pairs",
    "elapsed_s",
)


def validate_profile(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid profile export."""
    doc = _require_mapping(doc, "profile document")
    _require(doc.get("schema") == PROFILE_SCHEMA, f"schema must be {PROFILE_SCHEMA!r}")
    for field in ("engine", "pattern", "optimized", "totals", "nodes", "hottest"):
        _require(field in doc, f"profile document is missing {field!r}")
    _require(isinstance(doc["engine"], str), "engine must be a string")
    _require(isinstance(doc["pattern"], str), "pattern must be a string")
    _require(isinstance(doc["optimized"], str), "optimized must be a string")
    totals = _require_mapping(doc["totals"], "totals")
    for field in _PROFILE_TOTAL_FIELDS:
        _require(field in totals, f"totals is missing {field!r}")
        _require(
            isinstance(totals[field], (int, float)) and not isinstance(totals[field], bool),
            f"totals[{field!r}] must be numeric",
        )
    nodes = doc["nodes"]
    _require(isinstance(nodes, list) and nodes, "nodes must be a non-empty list")
    paths = set()
    for node in nodes:
        node = _require_mapping(node, "profile node")
        for field, kinds in _PROFILE_NODE_FIELDS.items():
            _require(field in node, f"profile node is missing {field!r}")
            _require(
                isinstance(node[field], kinds) and not isinstance(node[field], bool),
                f"profile node field {field!r} has the wrong type",
            )
        _require(node["kind"] in ("operator", "leaf"), "node kind must be operator|leaf")
        if node["kind"] == "operator":
            for field in ("operator", "n1", "n2", "pairs", "predicted_pairs"):
                _require(field in node, f"operator node is missing {field!r}")
        paths.add(node["path"])
    hottest = _require_mapping(doc["hottest"], "hottest")
    _require("path" in hottest and "label" in hottest, "hottest needs path and label")
    _require(hottest["path"] in paths, "hottest.path must name an exported node")

"""repro.obs — dependency-free observability: tracing, metrics, profiling.

Three layers, each usable on its own:

* :mod:`repro.obs.tracer` — span trees with key-merged per-node spans and
  a zero-cost :data:`NULL_TRACER` default;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.export` — human-readable trace rendering plus the
  stable ``repro.obs.*/v1`` JSON schemas and their validators;
* :mod:`repro.obs.profile` — per-node predicted-vs-actual cost reports
  (loaded lazily: it imports the evaluation stack, which itself imports
  ``repro.obs.tracer``);
* :mod:`repro.obs.journal` — the per-query lifecycle JSONL journal
  (``repro.obs.journal/v1``) with resource accounting and the
  slow-query / per-pattern-ranking views behind ``repro-logs events``
  and ``repro-logs top``;
* :mod:`repro.obs.live` — rolling time-windowed telemetry aggregation
  (request outcomes + journal terminal events into one ring of
  mergeable histogram buckets) and the SLO burn-rate engine behind the
  service's admin plane and ``repro-logs slo``;
* :mod:`repro.obs.log` — the ``repro.*`` stdlib-logging hierarchy;
* :mod:`repro.obs.flamegraph` — folded-stacks text and self-contained
  HTML flamegraphs for any recorded span tree;
* :mod:`repro.obs.bench` — the continuous-performance harness behind
  ``repro-logs bench`` (registry, robust runner, history, regression
  comparison; standard cases load lazily).

The evaluation engines accept ``tracer=`` / ``metrics=`` and default to
no-ops, so none of this costs anything until switched on (see
``docs/OBSERVABILITY.md``).
"""

from repro.obs.export import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    PROFILE_SCHEMA,
    TRACE_SCHEMA,
    SchemaError,
    metrics_to_dict,
    render_trace,
    trace_to_dict,
    validate_bench,
    validate_metrics,
    validate_profile,
    validate_trace,
)
from repro.obs.flamegraph import flamegraph_html, folded_stacks
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    QueryJournal,
    ResourceAccount,
    RunRecorder,
    filter_events,
    make_event,
    read_journal,
    slow_queries,
    top_patterns,
    validate_journal,
    validate_journal_event,
)
from repro.obs.live import (
    SloEngine,
    SloObjective,
    SloPolicy,
    WindowedAggregator,
    WindowSnapshot,
    pattern_shape,
)
from repro.obs.log import enable_verbose, get_logger, install_null_handler
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "BENCH_SCHEMA",
    "JOURNAL_SCHEMA",
    "SchemaError",
    "QueryJournal",
    "RunRecorder",
    "ResourceAccount",
    "make_event",
    "read_journal",
    "validate_journal",
    "validate_journal_event",
    "filter_events",
    "slow_queries",
    "top_patterns",
    "WindowedAggregator",
    "WindowSnapshot",
    "SloEngine",
    "SloObjective",
    "SloPolicy",
    "pattern_shape",
    "trace_to_dict",
    "metrics_to_dict",
    "render_trace",
    "validate_trace",
    "validate_metrics",
    "validate_profile",
    "validate_bench",
    "folded_stacks",
    "flamegraph_html",
    "get_logger",
    "enable_verbose",
    "install_null_handler",
    # lazy (see __getattr__): "NodeProfile", "ProfileReport", "profile_query"
]

_LAZY_PROFILE = ("NodeProfile", "ProfileReport", "profile_query")


def __getattr__(name: str):
    # profile imports the engines (which import repro.obs.tracer), so it is
    # resolved on first use to keep the package import acyclic
    if name in _LAZY_PROFILE:
        from repro.obs import profile

        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Span-based tracing for engine and pipeline instrumentation.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans are
opened as context managers::

    tracer = Tracer()
    with tracer.span("evaluate", engine="naive") as root:
        with tracer.span("⊳", key=0) as node:
            ...
            node.add(pairs=12, incidents=4)

Two properties make the tracer suitable for the evaluation engines:

* **key-merged spans** — engines evaluate each pattern node once per
  workflow instance; passing a stable ``key`` (the node's position under
  its parent) makes every re-entry *accumulate* into the same span
  instead of appending a sibling, so the finished trace mirrors the
  incident tree exactly, with per-node totals across all instances;
* **a null implementation** — :data:`NULL_TRACER` satisfies the same
  interface with a single shared no-op span, so instrumented code runs
  untraced at negligible cost (verified by
  ``benchmarks/bench_operators.py::test_null_tracer_overhead``).

Timing uses both the wall clock (``perf_counter``) and the process CPU
clock (``process_time``); a span re-entered ``count`` times accumulates
the total over all entries.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Sequence

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "merge_span_trees",
]

#: Type of span keys: any hashable value that is stable across re-entries
#: of the same logical node (engines use the child position, 0 or 1).
Key = Any


class Span:
    """One node of a trace tree.

    Attributes
    ----------
    label:
        Display label (operator glyph, leaf text, or stage name).
    tags:
        Set-once string annotations (engine name, operator symbol, ...).
    metrics:
        Numeric payload accumulated with :meth:`add` (pairs examined,
        operand cardinalities, incidents produced, ...).
    count:
        Number of times the span was entered (= merged visits).
    elapsed_s / cpu_s:
        Total wall / CPU seconds over all entries.
    children:
        Child spans in first-open order.
    """

    __slots__ = (
        "label",
        "tags",
        "metrics",
        "count",
        "elapsed_s",
        "cpu_s",
        "children",
        "_by_key",
    )

    def __init__(self, label: str, tags: dict[str, Any] | None = None):
        self.label = label
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.metrics: dict[str, float] = {}
        self.count = 0
        self.elapsed_s = 0.0
        self.cpu_s = 0.0
        self.children: list["Span"] = []
        self._by_key: dict[Key, "Span"] = {}

    # -- recording ---------------------------------------------------------

    def add(self, **amounts: float) -> None:
        """Accumulate numeric metrics onto the span."""
        metrics = self.metrics
        for name, amount in amounts.items():
            metrics[name] = metrics.get(name, 0) + amount

    def set_tag(self, name: str, value: Any) -> None:
        self.tags[name] = value

    def child(self, label: str, key: Key = None, tags: dict[str, Any] | None = None) -> "Span":
        """Find-or-create a child span.

        With a non-None ``key``, a child previously opened under the same
        key is reused (its counters keep accumulating); otherwise a new
        child is appended.
        """
        if key is not None:
            merged = self._by_key.get(key)
            if merged is not None:
                return merged
        span = Span(label, tags)
        self.children.append(span)
        if key is not None:
            self._by_key[key] = span
        return span

    # -- reading -----------------------------------------------------------

    @property
    def self_s(self) -> float:
        """Wall seconds spent in the span excluding its children."""
        return max(0.0, self.elapsed_s - sum(c.elapsed_s for c in self.children))

    def walk(self) -> Iterator["Span"]:
        """Yield the span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, metric: str) -> float:
        """Sum of one metric over the span and all descendants."""
        return sum(span.metrics.get(metric, 0) for span in self.walk())

    def __repr__(self) -> str:
        return (
            f"Span({self.label!r}, count={self.count}, "
            f"elapsed={self.elapsed_s * 1e3:.3f}ms, "
            f"{len(self.children)} child(ren))"
        )


class _SpanHandle:
    """Context manager for one entry into a span."""

    __slots__ = ("_tracer", "_span", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> Span:
        span = self._span
        span.count += 1
        self._tracer._stack.append(span)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return span

    def __exit__(self, *exc: object) -> None:
        span = self._span
        span.elapsed_s += time.perf_counter() - self._wall0
        span.cpu_s += time.process_time() - self._cpu0
        stack = self._tracer._stack
        assert stack and stack[-1] is span, "unbalanced span exit"
        stack.pop()
        if not stack:
            self._tracer.last_root = span


class Tracer:
    """Collects spans into one or more trace trees.

    Attributes
    ----------
    roots:
        Completed or in-progress root spans, in first-open order.
    last_root:
        The most recently *closed* root span (what ``Engine.last_trace``
        reports after an evaluation).
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.last_root: Span | None = None
        self._stack: list[Span] = []
        self._root_by_key: dict[Key, Span] = {}

    def span(self, label: str, *, key: Key = None, **tags: Any) -> _SpanHandle:
        """Open a (possibly key-merged) span under the current span.

        Returns a context manager yielding the :class:`Span`.
        """
        if self._stack:
            span = self._stack[-1].child(label, key=key, tags=tags or None)
        else:
            span = self._root_by_key.get(key) if key is not None else None
            if span is None:
                span = Span(label, tags or None)
                self.roots.append(span)
                if key is not None:
                    self._root_by_key[key] = span
        if tags:
            span.tags.update(tags)
        return _SpanHandle(self, span)

    def adopt(self, root: Span) -> Span:
        """Install an externally built span tree as a completed root.

        The parallel executor evaluates per shard in worker processes,
        each with its own tracer; the merged whole-evaluation tree (see
        :func:`merge_span_trees`) is adopted into the caller's tracer so
        ``last_root`` and the exporters see one tree, exactly as a serial
        evaluation would have produced.
        """
        if self._stack:
            raise RuntimeError("cannot adopt a root while spans are open")
        self.roots.append(root)
        self.last_root = root
        return root

    def reset(self) -> None:
        """Drop all recorded spans (the tracer must be idle)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open spans")
        self.roots.clear()
        self.last_root = None
        self._root_by_key.clear()

    def __repr__(self) -> str:
        return f"Tracer({len(self.roots)} root(s))"


def merge_span_trees(roots: Sequence[Span]) -> Span:
    """Merge structurally matching span trees into one accumulated tree.

    Per-shard workers trace the *same* incident tree over disjoint wid
    partitions; merging sums their counters (``count``, wall/CPU time,
    every numeric metric) node by node, so the result reads exactly like
    the span tree a serial evaluation over the whole log records — the
    key-merged semantics of :class:`Span`, applied across process
    boundaries.

    Children are matched by ``(position, label)``; a child present in only
    some trees (e.g. a shard that skipped a node) still appears once in
    the merged tree with the counters of the trees that have it.  Tags are
    first-writer-wins, mirroring ``Span.set_tag`` ordering.
    """
    if not roots:
        raise ValueError("merge_span_trees needs at least one root span")
    merged = Span(roots[0].label)
    for root in roots:
        for name, value in root.tags.items():
            merged.tags.setdefault(name, value)
        merged.count += root.count
        merged.elapsed_s += root.elapsed_s
        merged.cpu_s += root.cpu_s
        merged.add(**root.metrics)
    buckets: dict[tuple[int, str], list[Span]] = {}
    for root in roots:
        for position, child in enumerate(root.children):
            buckets.setdefault((position, child.label), []).append(child)
    for _key in sorted(buckets, key=lambda k: k[0]):
        merged.children.append(merge_span_trees(buckets[_key]))
    return merged


class _NullSpan:
    """Shared no-op span: its own context manager, accepts all recording
    calls, reads as an empty leaf."""

    __slots__ = ()

    label = ""
    tags: dict[str, Any] = {}
    metrics: dict[str, float] = {}
    count = 0
    elapsed_s = 0.0
    cpu_s = 0.0
    self_s = 0.0
    children: tuple[Span, ...] = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def add(self, **amounts: float) -> None:
        return None

    def set_tag(self, name: str, value: Any) -> None:
        return None

    def walk(self) -> Iterator["_NullSpan"]:
        yield self

    def total(self, metric: str) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: The shared no-op span returned by :data:`NULL_TRACER`.
NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: every :meth:`span` call returns :data:`NULL_SPAN`.

    Engines default to this, so instrumentation is inert unless a real
    :class:`Tracer` is injected.
    """

    enabled = False
    roots: tuple[Span, ...] = ()
    last_root = None

    __slots__ = ()

    def span(self, label: str, *, key: Key = None, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def reset(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NULL_TRACER"


#: The shared no-op tracer instance.
NULL_TRACER = NullTracer()

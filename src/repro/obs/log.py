"""The ``repro`` diagnostic logging channel.

Every module logs under the ``repro.*`` hierarchy via :func:`get_logger`;
the package root attaches a :class:`logging.NullHandler`, so a library
consumer sees nothing unless they configure logging themselves.  The CLI
turns the channel on with ``-v`` (INFO) / ``-vv`` (DEBUG) through
:func:`enable_verbose`.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["ROOT_LOGGER", "get_logger", "enable_verbose", "install_null_handler"]

#: Name of the hierarchy root.
ROOT_LOGGER = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger ``repro`` (no name) or ``repro.<name>``.

    ``name`` may be a module's ``__name__``; a leading ``repro.`` prefix
    is not doubled.
    """
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def install_null_handler() -> None:
    """Attach the library-default NullHandler to the hierarchy root
    (idempotent); called from ``repro/__init__``."""
    root = logging.getLogger(ROOT_LOGGER)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())


def enable_verbose(
    verbosity: int = 1, *, stream: IO[str] | None = None
) -> logging.Handler | None:
    """Route ``repro.*`` records to ``stream`` (default stderr).

    ``verbosity`` 0 is a no-op, 1 enables INFO, 2+ enables DEBUG.
    Returns the installed handler so callers (and tests) can remove it.
    """
    if verbosity <= 0:
        return None
    root = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(logging.INFO if verbosity == 1 else logging.DEBUG)
    return handler

"""Rolling time-windowed telemetry and SLO accounting.

The journal (:mod:`repro.obs.journal`) answers *what did this query
cost?* and the metrics registry answers *what has the process done since
boot?* — neither answers the operator's question, *is the service
healthy right now?*  This module is that missing layer:

* :class:`WindowedAggregator` — a ring of fixed-width time buckets, each
  holding mergeable fixed-bucket :class:`~repro.obs.metrics.Histogram`
  latency distributions plus request/error/kill counters, attributed
  per route, per store and per pattern *shape* (top-K capped, overflow
  folded into ``~other``).  Memory is O(ring size × K), independent of
  traffic; recording is one lock-protected dict update.  Any trailing
  window up to the ring span can be merged on demand into a
  :class:`WindowSnapshot` — buckets are keyed by their **absolute**
  epoch index, so a stale slot is never double-counted and a quiet
  period never leaves a phantom gap.
* :class:`SloPolicy` / :class:`SloEngine` — availability and
  latency-quantile objectives evaluated over the aggregator with
  multi-window error-budget **burn rates** (the fast window catches a
  live incident, the slow window confirms it is not a blip; a breach
  requires both to burn).

The same aggregator serves two ingestion paths so live and post-hoc
views share one code path: :meth:`WindowedAggregator.observe_request`
is fed by the service's HTTP dispatch loop, and
:meth:`WindowedAggregator.observe_event` replays journal terminal
events — the ``repro-logs slo`` subcommand builds the identical report
offline from a journal file.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Iterable, Mapping

from repro.obs.metrics import DEFAULT_TIME_BUCKETS, Histogram

__all__ = [
    "WindowedAggregator",
    "WindowSnapshot",
    "DimensionSnapshot",
    "SloObjective",
    "SloPolicy",
    "SloEngine",
    "pattern_shape",
    "OTHER_KEY",
]

#: Overflow key for attribution dimensions past the top-K cap.
OTHER_KEY = "~other"

#: Latency-histogram boundaries used by every bucket cell (seconds).
_LATENCY_BUCKETS = DEFAULT_TIME_BUCKETS


@lru_cache(maxsize=1024)
def pattern_shape(text: str) -> str:
    """The canonical *shape* of a pattern text: parse + rule-normalise,
    so label-identical requests group even when spelled differently.

    Unparseable text (lint probes, analyze pairs) falls back to the raw
    string — attribution must never fail a request.  Cached because the
    parse is orders of magnitude more expensive than the dict update it
    feeds.
    """
    try:
        from repro.core.optimizer.rules import normalize
        from repro.core.parser import parse

        return str(normalize(parse(text))[0])
    except Exception:  # noqa: BLE001 - attribution is best-effort
        return text


def _classify_error(status: int, killed: bool) -> bool:
    """Whether one outcome burns error budget.

    Server faults (5xx) and governor kills (408 deadline, cooperative
    503 cancellation) count — the service failed to produce the answer.
    Client faults (4xx) and load shedding (429 carries ``Retry-After``)
    do not.
    """
    return killed or status >= 500 or status == 408


class _Cell:
    """One (bucket, key) accumulation cell: counters + latency histogram."""

    __slots__ = ("count", "errors", "killed", "pairs", "latency")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.killed = 0
        self.pairs = 0
        self.latency = Histogram("live.latency", _LATENCY_BUCKETS)

    def add(
        self, duration_s: float, *, error: bool, killed: bool, pairs: int
    ) -> None:
        self.count += 1
        if error:
            self.errors += 1
        if killed:
            self.killed += 1
        self.pairs += pairs
        self.latency.observe(duration_s)

    def merge(self, other: "_Cell") -> None:
        self.count += other.count
        self.errors += other.errors
        self.killed += other.killed
        self.pairs += other.pairs
        self.latency.merge(other.latency)


class _Bucket:
    """One ring slot: the totals and per-dimension cells of one epoch."""

    __slots__ = ("epoch", "total", "routes", "stores", "patterns")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.total = _Cell()
        self.routes: dict[str, _Cell] = {}
        self.stores: dict[str, _Cell] = {}
        self.patterns: dict[str, _Cell] = {}

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.total = _Cell()
        self.routes.clear()
        self.stores.clear()
        self.patterns.clear()

    def cell(self, dimension: dict[str, _Cell], key: str, cap: int) -> _Cell:
        found = dimension.get(key)
        if found is None:
            if len(dimension) >= cap and key != OTHER_KEY:
                return self.cell(dimension, OTHER_KEY, cap + 1)
            found = dimension[key] = _Cell()
        return found


@dataclass
class DimensionSnapshot:
    """Merged window view of one attribution key (route/store/pattern)."""

    key: str
    count: int = 0
    errors: int = 0
    killed: int = 0
    pairs: int = 0
    latency: Histogram = field(
        default_factory=lambda: Histogram("live.latency", _LATENCY_BUCKETS)
    )

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "count": self.count,
            "errors": self.errors,
            "killed": self.killed,
            "pairs": self.pairs,
            "p50_s": self.latency.quantile(0.50),
            "p95_s": self.latency.quantile(0.95),
            "p99_s": self.latency.quantile(0.99),
            "mean_s": self.latency.mean,
        }


@dataclass
class WindowSnapshot:
    """Everything the aggregator knows about one trailing window."""

    window_s: float
    since_unix: float
    until_unix: float
    total: DimensionSnapshot
    routes: dict[str, DimensionSnapshot]
    stores: dict[str, DimensionSnapshot]
    patterns: dict[str, DimensionSnapshot]

    @property
    def error_ratio(self) -> float:
        return self.total.errors / self.total.count if self.total.count else 0.0

    def select(
        self, *, route: str | None = None, store: str | None = None
    ) -> DimensionSnapshot:
        """The cell an SLO objective scopes to (missing keys are empty)."""
        if route is not None:
            return self.routes.get(route, DimensionSnapshot(route))
        if store is not None:
            return self.stores.get(store, DimensionSnapshot(store))
        return self.total

    def report(self, *, top: int = 10) -> dict[str, Any]:
        """The JSON-able windowed report behind ``/v1/admin/stats``."""

        def ranked(cells: dict[str, DimensionSnapshot]) -> list[dict[str, Any]]:
            ordered = sorted(
                cells.values(), key=lambda c: (-c.count, c.key)
            )
            return [cell.to_dict() for cell in ordered[:top]]

        return {
            "window_s": self.window_s,
            "since_unix": self.since_unix,
            "until_unix": self.until_unix,
            "requests": self.total.count,
            "errors": self.total.errors,
            "killed": self.total.killed,
            "error_ratio": self.error_ratio,
            "pairs": self.total.pairs,
            "latency": {
                "p50_s": self.total.latency.quantile(0.50),
                "p95_s": self.total.latency.quantile(0.95),
                "p99_s": self.total.latency.quantile(0.99),
                "mean_s": self.total.latency.mean,
                "count": self.total.latency.count,
            },
            "routes": ranked(self.routes),
            "stores": ranked(self.stores),
            "patterns": ranked(self.patterns),
        }


class WindowedAggregator:
    """Ring-buffered rolling telemetry with O(1) memory.

    Parameters
    ----------
    bucket_s:
        Width of one time bucket; the rotation/merge granularity.
    window_s:
        Longest trailing window the ring can answer (ring length is
        ``ceil(window_s / bucket_s)`` buckets).
    top_k:
        Per-bucket cap on distinct keys per attribution dimension;
        further keys fold into :data:`OTHER_KEY`.
    clock:
        Injectable wall-clock (``time.time`` scale) for rotation tests.
    """

    def __init__(
        self,
        *,
        bucket_s: float = 10.0,
        window_s: float = 3600.0,
        top_k: int = 32,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be > 0, got {bucket_s}")
        if window_s < bucket_s:
            raise ValueError(
                f"window_s ({window_s}) must be >= bucket_s ({bucket_s})"
            )
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.bucket_s = float(bucket_s)
        self.window_s = float(window_s)
        self.top_k = int(top_k)
        self._clock = clock
        self._ring_len = int(-(-window_s // bucket_s))  # ceil division
        self._ring: list[_Bucket | None] = [None] * self._ring_len
        self._lock = threading.Lock()
        self.observed = 0

    # -- ingestion ---------------------------------------------------------

    def observe_request(
        self,
        route: str,
        status: int,
        duration_s: float,
        *,
        store: str | None = None,
        pattern: str | None = None,
        pairs: int = 0,
        killed: bool = False,
        ts: float | None = None,
    ) -> None:
        """Record one finished request outcome into its time bucket."""
        when = self._clock() if ts is None else ts
        error = _classify_error(status, killed)
        shape = None if pattern is None else pattern_shape(pattern)
        duration_s = max(0.0, float(duration_s))
        with self._lock:
            bucket = self._bucket_at(when)
            bucket.total.add(duration_s, error=error, killed=killed, pairs=pairs)
            bucket.cell(bucket.routes, route, self.top_k).add(
                duration_s, error=error, killed=killed, pairs=pairs
            )
            if store is not None:
                bucket.cell(bucket.stores, store, self.top_k).add(
                    duration_s, error=error, killed=killed, pairs=pairs
                )
            if shape is not None:
                bucket.cell(bucket.patterns, shape, self.top_k).add(
                    duration_s, error=error, killed=killed, pairs=pairs
                )
            self.observed += 1

    def observe_event(self, event: Mapping[str, Any]) -> bool:
        """Record one journal **terminal** event (``finish``/``killed``).

        Non-terminal kinds are ignored (returns False), so a whole
        journal can be streamed through unfiltered — this is the offline
        half of the shared code path (``repro-logs slo``).
        """
        kind = event.get("event")
        if kind not in ("finish", "killed"):
            return False
        killed = kind == "killed" or event.get("status_override") == "error"
        status = event.get("http_status")
        if not isinstance(status, int):
            status = 500 if killed else 200
        wall_ms = event.get("wall_ms")
        duration_s = float(wall_ms) / 1000.0 if isinstance(wall_ms, (int, float)) else 0.0
        pairs = event.get("pairs")
        ts = event.get("ts_unix")
        self.observe_request(
            str(event.get("op", "?")),
            status,
            duration_s,
            store=(
                str(event["store"]) if isinstance(event.get("store"), str) else None
            ),
            pattern=(
                str(event["pattern"])
                if isinstance(event.get("pattern"), str)
                else None
            ),
            pairs=int(pairs) if isinstance(pairs, int) else 0,
            killed=killed,
            ts=float(ts) if isinstance(ts, (int, float)) else None,
        )
        return True

    def replay(self, events: Iterable[Mapping[str, Any]]) -> int:
        """Stream a journal through :meth:`observe_event`; returns the
        number of terminal events ingested."""
        return sum(1 for event in events if self.observe_event(event))

    # -- reading -----------------------------------------------------------

    def window(self, seconds: float, *, now: float | None = None) -> WindowSnapshot:
        """Merge the trailing ``seconds`` of buckets into one snapshot.

        ``seconds`` is clamped to the ring span; the current (partial)
        bucket is always included.
        """
        seconds = min(max(float(seconds), self.bucket_s), self.window_s)
        when = self._clock() if now is None else now
        current = int(when // self.bucket_s)
        span = int(-(-seconds // self.bucket_s))
        first = current - span + 1
        total = DimensionSnapshot("total")
        routes: dict[str, DimensionSnapshot] = {}
        stores: dict[str, DimensionSnapshot] = {}
        patterns: dict[str, DimensionSnapshot] = {}
        with self._lock:
            for epoch in range(first, current + 1):
                bucket = self._ring[epoch % self._ring_len]
                if bucket is None or bucket.epoch != epoch:
                    continue  # never written, or stale data from a past lap
                _merge_cell(total, bucket.total)
                for key, cell in bucket.routes.items():
                    _merge_cell(routes.setdefault(key, DimensionSnapshot(key)), cell)
                for key, cell in bucket.stores.items():
                    _merge_cell(stores.setdefault(key, DimensionSnapshot(key)), cell)
                for key, cell in bucket.patterns.items():
                    _merge_cell(
                        patterns.setdefault(key, DimensionSnapshot(key)), cell
                    )
        return WindowSnapshot(
            window_s=seconds,
            since_unix=first * self.bucket_s,
            until_unix=when,
            total=total,
            routes=routes,
            stores=stores,
            patterns=patterns,
        )

    # -- internals ---------------------------------------------------------

    def _bucket_at(self, when: float) -> _Bucket:
        """The live bucket for instant ``when`` (lock held by caller).

        Rotation is lazy: a slot is reset the first time a new epoch
        lands on it, so an idle aggregator costs nothing and a reused
        slot can never leak a previous lap's counts.
        """
        epoch = int(when // self.bucket_s)
        slot = epoch % self._ring_len
        bucket = self._ring[slot]
        if bucket is None:
            bucket = self._ring[slot] = _Bucket(epoch)
        elif bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WindowedAggregator(bucket_s={self.bucket_s}, "
            f"window_s={self.window_s}, observed={self.observed})"
        )


def _merge_cell(snapshot: DimensionSnapshot, cell: _Cell) -> None:
    snapshot.count += cell.count
    snapshot.errors += cell.errors
    snapshot.killed += cell.killed
    snapshot.pairs += cell.pairs
    snapshot.latency.merge(cell.latency)


# ---------------------------------------------------------------------------
# SLOs: objectives, policy, burn-rate engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective.

    ``kind="availability"`` targets the fraction of non-error outcomes;
    ``kind="latency"`` targets the fraction of requests at or under
    ``latency_threshold_s`` (a request over threshold burns budget
    exactly like an error).  ``route``/``store`` scope the objective to
    one attribution cell; both None means the whole service.
    """

    name: str
    kind: str = "availability"
    target: float = 0.999
    latency_threshold_s: float = 0.5
    route: str | None = None
    store: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.latency_threshold_s <= 0:
            raise ValueError(
                f"latency_threshold_s must be > 0, got {self.latency_threshold_s}"
            )
        if self.route is not None and self.store is not None:
            raise ValueError("an objective scopes to a route or a store, not both")

    def bad_ratio(self, cell: DimensionSnapshot) -> float:
        """Fraction of budget-burning outcomes in ``cell``."""
        if cell.count == 0:
            return 0.0
        if self.kind == "availability":
            return cell.errors / cell.count
        return 1.0 - cell.latency.fraction_le(self.latency_threshold_s)


@dataclass(frozen=True)
class SloPolicy:
    """The SLOs one service enforces, plus the burn-alert windows.

    ``burn_threshold`` is in error-budget units: a burn rate of 1.0
    spends exactly the budget over the objective's compliance period;
    the default 1.0 flags any over-budget spend, and operators tune it
    up (Google's 14.4×/6× ladder) for paging-grade alerts.
    """

    objectives: tuple[SloObjective, ...] = ()
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError("SLO windows must be > 0")
        if self.fast_window_s > self.slow_window_s:
            raise ValueError(
                f"fast_window_s ({self.fast_window_s}) must be <= "
                f"slow_window_s ({self.slow_window_s})"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )


class SloEngine:
    """Evaluates a :class:`SloPolicy` against a :class:`WindowedAggregator`.

    Burn rate is the classic definition: observed bad-outcome ratio
    divided by the error budget (``1 - target``).  A burn of 1.0 means
    the budget is being spent exactly at the rate that exhausts it over
    the compliance period; a breach requires **both** the fast and slow
    windows to burn past the policy threshold — the multi-window rule
    that suppresses single-bucket blips without missing sustained
    incidents.
    """

    def __init__(self, policy: SloPolicy, aggregator: WindowedAggregator) -> None:
        self.policy = policy
        self.aggregator = aggregator

    def evaluate(self, *, now: float | None = None) -> list[dict[str, Any]]:
        """One row per objective: budgets, burn rates, breach flag."""
        fast = self.aggregator.window(self.policy.fast_window_s, now=now)
        slow = self.aggregator.window(self.policy.slow_window_s, now=now)
        rows: list[dict[str, Any]] = []
        for objective in self.policy.objectives:
            budget = 1.0 - objective.target
            fast_cell = fast.select(route=objective.route, store=objective.store)
            slow_cell = slow.select(route=objective.route, store=objective.store)
            fast_ratio = objective.bad_ratio(fast_cell)
            slow_ratio = objective.bad_ratio(slow_cell)
            burn_fast = fast_ratio / budget
            burn_slow = slow_ratio / budget
            breach = (
                burn_fast >= self.policy.burn_threshold
                and burn_slow >= self.policy.burn_threshold
            )
            rows.append(
                {
                    "name": objective.name,
                    "kind": objective.kind,
                    "target": objective.target,
                    "route": objective.route,
                    "store": objective.store,
                    "latency_threshold_s": (
                        objective.latency_threshold_s
                        if objective.kind == "latency"
                        else None
                    ),
                    "error_budget": budget,
                    "fast_window_s": self.policy.fast_window_s,
                    "slow_window_s": self.policy.slow_window_s,
                    "fast_requests": fast_cell.count,
                    "slow_requests": slow_cell.count,
                    "fast_bad_ratio": fast_ratio,
                    "slow_bad_ratio": slow_ratio,
                    "burn_fast": burn_fast,
                    "burn_slow": burn_slow,
                    "budget_remaining": max(0.0, 1.0 - slow_ratio / budget),
                    "breach": breach,
                }
            )
        return rows

    def report(self, *, now: float | None = None) -> dict[str, Any]:
        """The JSON-able document behind ``/v1/admin/slo``."""
        rows = self.evaluate(now=now)
        return {
            "burn_threshold": self.policy.burn_threshold,
            "fast_window_s": self.policy.fast_window_s,
            "slow_window_s": self.policy.slow_window_s,
            "breaching": sorted(r["name"] for r in rows if r["breach"]),
            "objectives": rows,
        }

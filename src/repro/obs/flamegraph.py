"""Flamegraph rendering for recorded span trees.

Two formats, both derived from any :class:`~repro.obs.tracer.Span` root
(serial traces and merged parallel traces alike):

* **folded stacks** (:func:`folded_stacks`) — the `stackcollapse`
  interchange format: one line per span, ``root;child;leaf <value>``,
  value = the span's *self* time in integer microseconds.  Feed it to
  any external ``flamegraph.pl``-compatible tool;
* **self-contained HTML** (:func:`flamegraph_html`) — a dependency-free
  icicle flamegraph (root at the top): one absolutely positioned
  ``<div class="frame">`` per span, width proportional to the span's
  share of the root wall time, children packed left-to-right inside
  their parent.  No external scripts, stylesheets or fonts — the file
  opens anywhere, and the machine-readable trace document is embedded
  verbatim in a ``<script type="application/json">`` block so tooling
  can recover the exact tree from the artifact.

Both formats emit **every** span exactly once, including zero-time
spans — the node set of the rendering equals the node set of the trace,
which is what the tests pin.

Layout note: a span's children can sum to more wall time than the span
itself records (clock granularity; merged trees sum independently
measured shards).  The layout normalises each sibling row by
``max(parent_width, sum(children))`` so frames never overflow their
parent, at the cost of a slightly compressed row when the anomaly
occurs.
"""

from __future__ import annotations

import json
from html import escape
from typing import Iterator

from repro.obs.export import trace_to_dict
from repro.obs.tracer import Span

__all__ = ["folded_stacks", "flamegraph_html"]

#: Row height of one stack depth, in pixels.
_ROW_PX = 18

#: Frame fill colours by depth (flame palette, cycled).
_PALETTE = ("#d9534f", "#e8793a", "#f0a830", "#c7803d", "#b3583b")


def _frame_name(span: Span) -> str:
    """A folded-stack frame name: the label with the separators escaped."""
    return (span.label or "(unnamed)").replace(";", ",").replace("\n", " ")


def folded_stacks(root: Span, *, _prefix: str = "") -> str:
    """Render the tree in folded-stacks format (self time, microseconds).

    One line per span, pre-order, so the line count equals the span
    count and the per-stack values sum to the root's total wall time (up
    to integer rounding).
    """
    lines: list[str] = []
    for stack, span in _walk_stacks(root, _prefix):
        lines.append(f"{stack} {round(span.self_s * 1e6)}")
    return "\n".join(lines) + "\n"


def _walk_stacks(span: Span, prefix: str) -> Iterator[tuple[str, Span]]:
    stack = f"{prefix};{_frame_name(span)}" if prefix else _frame_name(span)
    yield stack, span
    for child in span.children:
        yield from _walk_stacks(child, stack)


def _layout(
    span: Span,
    x0: float,
    width: float,
    depth: int,
    out: list[tuple[Span, float, float, int]],
) -> None:
    """Assign ``(x, width, depth)`` fractions of the root width."""
    out.append((span, x0, width, depth))
    if not span.children:
        return
    child_sum = sum(child.elapsed_s for child in span.children)
    # the row is scaled to fit the parent; unused width (self time) stays
    # exposed at the right edge of the parent frame
    denominator = max(span.elapsed_s, child_sum)
    cursor = x0
    for child in span.children:
        if denominator > 0.0:
            child_width = width * (child.elapsed_s / denominator)
        else:
            # a zero-time subtree still renders: share the row equally
            child_width = width / len(span.children)
        _layout(child, cursor, child_width, depth + 1, out)
        cursor += child_width


def _frame_title(span: Span, root_elapsed: float) -> str:
    share = span.elapsed_s / root_elapsed if root_elapsed > 0 else 0.0
    parts = [
        f"{span.elapsed_s * 1e3:.3f}ms total ({share:.1%})",
        f"{span.self_s * 1e3:.3f}ms self",
        f"count={span.count}",
    ]
    for name in ("n1", "n2", "pairs", "incidents"):
        if name in span.metrics:
            parts.append(f"{name}={span.metrics[name]:g}")
    return f"{span.label or '(unnamed)'} — " + ", ".join(parts)


def flamegraph_html(root: Span, *, title: str = "repro trace flamegraph") -> str:
    """A complete, self-contained HTML page for one span tree."""
    frames: list[tuple[Span, float, float, int]] = []
    _layout(root, 0.0, 100.0, 0, frames)
    depth_max = max(depth for _, _, _, depth in frames)

    divs: list[str] = []
    for index, (span, x0, width, depth) in enumerate(frames):
        colour = _PALETTE[depth % len(_PALETTE)]
        label = escape(span.label or "(unnamed)")
        tooltip = escape(_frame_title(span, root.elapsed_s), quote=True)
        divs.append(
            f'<div class="frame" data-path="{index}" '
            f'title="{tooltip}" '
            f'style="left:{x0:.4f}%;width:{width:.4f}%;'
            f"top:{depth * _ROW_PX}px;background:{colour}\">"
            f"<span>{label}</span></div>"
        )

    trace_json = json.dumps(
        trace_to_dict(root), ensure_ascii=False, sort_keys=True
    ).replace("</", "<\\/")

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{escape(title)}</title>
<style>
  body {{ font: 13px/1.4 system-ui, sans-serif; margin: 16px; }}
  h1 {{ font-size: 15px; margin: 0 0 4px; }}
  p.meta {{ color: #555; margin: 0 0 12px; }}
  #flame {{ position: relative; width: 100%;
            height: {(depth_max + 1) * _ROW_PX}px; }}
  .frame {{ position: absolute; height: {_ROW_PX - 1}px; overflow: hidden;
            box-sizing: border-box; border: 1px solid rgba(255,255,255,.55);
            border-radius: 2px; cursor: default; }}
  .frame span {{ padding: 0 4px; font-size: 11px; color: #fff;
                 white-space: nowrap; }}
  .frame:hover {{ filter: brightness(1.15); }}
</style>
</head>
<body>
<h1>{escape(title)}</h1>
<p class="meta">root: {escape(root.label or "(unnamed)")} —
{root.elapsed_s * 1e3:.3f}ms wall, {len(frames)} span(s),
depth {depth_max + 1}. Width = share of root wall time; hover for
self time and payload metrics.</p>
<div id="flame">
{chr(10).join(divs)}
</div>
<script type="application/json" id="trace">{trace_json}</script>
</body>
</html>
"""

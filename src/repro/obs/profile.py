"""Per-node query profiling: measured cost vs. the optimizer's estimate.

:func:`profile_query` evaluates a pattern with tracing and metrics
enabled, then joins the recorded span tree with the cost model of
:mod:`repro.core.optimizer.cost` node by node.  The resulting
:class:`ProfileReport` shows, for every incident-tree node, the operand
cardinalities, the pairs actually examined, the pairs the optimizer
*predicted* (Lemma 1 shapes under estimated cardinalities), the incidents
produced, and the node's self time — and flags the hottest node.  This is
the feedback loop between the paper's cost analysis and reality: a node
whose actual pairs dwarf its prediction is exactly where the cost model
(and therefore the planner) is being misled.

Import note: this module pulls in the evaluation stack, so the ``repro.obs``
package exposes it lazily — engines can import ``repro.obs.tracer`` without
cycling back through ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.eval.base import EvaluationStats
from repro.core.model import Log
from repro.core.optimizer.cost import CostModel, LogStatistics
from repro.core.optimizer.planner import Optimizer
from repro.core.parser import parse
from repro.core.pattern import Atomic, Pattern
from repro.core.query import ENGINES
from repro.obs.export import PROFILE_SCHEMA
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = ["NodeProfile", "ProfileReport", "profile_query"]


@dataclass
class NodeProfile:
    """Measured + predicted cost of one incident-tree node."""

    path: str
    depth: int
    label: str
    kind: str  # "operator" | "leaf"
    count: int
    incidents: int
    elapsed_s: float
    self_s: float
    operator: str | None = None
    n1: int = 0
    n2: int = 0
    pairs: int = 0
    predicted_pairs: float = 0.0
    predicted_incidents: float = 0.0

    def to_dict(self) -> dict:
        node: dict = {
            "path": self.path,
            "label": self.label,
            "kind": self.kind,
            "count": self.count,
            "incidents": self.incidents,
            "predicted_incidents": self.predicted_incidents,
            "elapsed_s": self.elapsed_s,
            "self_s": self.self_s,
        }
        if self.kind == "operator":
            node.update(
                operator=self.operator,
                n1=self.n1,
                n2=self.n2,
                pairs=self.pairs,
                predicted_pairs=self.predicted_pairs,
            )
        return node


@dataclass
class ProfileReport:
    """Everything one profiled evaluation produced."""

    engine: str
    pattern_text: str
    optimized_text: str
    transformations: list[str]
    stats: EvaluationStats
    nodes: list[NodeProfile]
    trace: Span
    registry: MetricsRegistry
    elapsed_s: float = 0.0
    incidents: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def hottest(self) -> NodeProfile:
        """The node with the largest self time (ties: most pairs)."""
        return max(self.nodes, key=lambda n: (n.self_s, n.pairs))

    @property
    def predicted_pairs(self) -> float:
        return sum(n.predicted_pairs for n in self.nodes)

    def to_dict(self) -> dict:
        """Serialise to the ``repro.obs.profile/v1`` schema."""
        return {
            "schema": PROFILE_SCHEMA,
            "engine": self.engine,
            "pattern": self.pattern_text,
            "optimized": self.optimized_text,
            "transformations": list(self.transformations),
            "totals": {
                "operator_evals": self.stats.operator_evals,
                "pairs_examined": self.stats.pairs_examined,
                "incidents_produced": self.stats.incidents_produced,
                "max_live_incidents": self.stats.max_live_incidents,
                "incidents": self.incidents,
                "predicted_pairs": self.predicted_pairs,
                "elapsed_s": self.elapsed_s,
            },
            "hottest": self.hottest.to_dict(),
            "nodes": [n.to_dict() for n in self.nodes],
        }

    def format(self) -> str:
        """Aligned per-node cost breakdown with the hottest node flagged."""
        hottest = self.hottest
        header = (
            "node", "count", "n1", "n2", "pairs", "pred.pairs",
            "incidents", "self(ms)",
        )
        rows: list[tuple[str, ...]] = []
        for node in self.nodes:
            tree_label = "  " * node.depth + node.label
            if node.kind == "operator":
                rows.append((
                    tree_label,
                    str(node.count),
                    str(node.n1),
                    str(node.n2),
                    str(node.pairs),
                    f"{node.predicted_pairs:.1f}",
                    str(node.incidents),
                    f"{node.self_s * 1e3:.2f}"
                    + ("  ◀ hottest" if node is hottest else ""),
                ))
            else:
                rows.append((
                    tree_label, str(node.count), "-", "-", "-", "-",
                    str(node.incidents),
                    f"{node.self_s * 1e3:.2f}"
                    + ("  ◀ hottest" if node is hottest else ""),
                ))
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        lines = [
            f"profile: {self.pattern_text}  (engine={self.engine})",
            f"optimized: {self.optimized_text}",
        ]
        if self.transformations:
            lines.append("transformations: " + "; ".join(self.transformations))
        lines.append("")
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        for row in rows:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        ratio = (
            self.stats.pairs_examined / self.predicted_pairs
            if self.predicted_pairs
            else float("inf") if self.stats.pairs_examined else 1.0
        )
        lines += [
            "",
            f"totals: {self.incidents} incident(s), "
            f"{self.stats.pairs_examined} pairs examined "
            f"(cost model predicted {self.predicted_pairs:.1f}, "
            f"actual/predicted = {ratio:.2f}), "
            f"{self.stats.operator_evals} operator eval(s), "
            f"peak live incidents {self.stats.max_live_incidents}, "
            f"{self.elapsed_s * 1e3:.2f}ms",
            f"hottest node: {hottest.label} at {hottest.path} "
            f"({hottest.self_s * 1e3:.2f}ms self, {hottest.pairs} pairs)",
        ]
        return "\n".join(lines)


def _collect(
    span: Span,
    pattern: Pattern,
    cost: CostModel,
    path: str,
    depth: int,
    out: list[NodeProfile],
) -> None:
    metrics = span.metrics
    if isinstance(pattern, Atomic):
        out.append(
            NodeProfile(
                path=path,
                depth=depth,
                label=span.label,
                kind="leaf",
                count=span.count,
                incidents=int(metrics.get("incidents", 0)),
                predicted_incidents=cost.cardinality(pattern),
                elapsed_s=span.elapsed_s,
                self_s=span.self_s,
            )
        )
        return
    out.append(
        NodeProfile(
            path=path,
            depth=depth,
            label=span.label,
            kind="operator",
            count=span.count,
            incidents=int(metrics.get("incidents", 0)),
            elapsed_s=span.elapsed_s,
            self_s=span.self_s,
            operator=str(span.tags.get("operator", span.label)),
            n1=int(metrics.get("n1", 0)),
            n2=int(metrics.get("n2", 0)),
            pairs=int(metrics.get("pairs", 0)),
            predicted_pairs=cost.pairs_estimate(pattern),
            predicted_incidents=cost.cardinality(pattern),
        )
    )
    if len(span.children) != 2:  # pragma: no cover - engines always trace both
        return
    _collect(span.children[0], pattern.left, cost, f"{path}.0", depth + 1, out)
    _collect(span.children[1], pattern.right, cost, f"{path}.1", depth + 1, out)


def profile_query(
    log: Log,
    pattern: Pattern | str,
    *,
    engine: str = "indexed",
    optimize: bool = True,
    max_incidents: int | None = None,
    jobs: int | None = None,
) -> ProfileReport:
    """Evaluate ``pattern`` over ``log`` with full instrumentation.

    Runs the optimizer (unless disabled), evaluates with a tracing
    engine, and reconciles the span tree with the cost model.  The
    returned report's ``stats``, ``trace`` and ``registry`` carry the raw
    artefacts; ``format()`` / ``to_dict()`` are the CLI surfaces.

    With ``jobs > 1`` the evaluation runs sharded over a process pool
    (:class:`~repro.exec.parallel.ParallelExecutor`); the per-shard span
    trees merge into one tree of the usual serial shape, so the per-node
    breakdown aggregates work across all workers.
    """
    if isinstance(pattern, str):
        pattern = parse(pattern)
    if optimize:
        plan = Optimizer.for_log(log).optimize(pattern)
        evaluated, transformations = plan.optimized, list(plan.transformations)
    else:
        evaluated, transformations = pattern, ["optimization disabled"]
    tracer = Tracer()
    registry = MetricsRegistry()
    extra: dict = {}
    if jobs is not None and jobs > 1:
        from repro.exec.parallel import ParallelExecutor
        from repro.exec.worker import EngineConfig

        executor = ParallelExecutor(
            jobs=jobs,
            backend="process",
            engine=EngineConfig(name=engine, max_incidents=max_incidents),
            tracer=tracer,
            metrics=registry,
        )
        parallel_result = executor.evaluate(log, evaluated)
        assert parallel_result.incidents is not None
        incidents = len(parallel_result.incidents)
        stats = parallel_result.stats
        extra = {
            "jobs": jobs,
            "backend": parallel_result.backend,
            "shards": len(parallel_result.plan),
        }
    else:
        engine_obj = ENGINES[engine](
            max_incidents=max_incidents, tracer=tracer, metrics=registry
        )
        incidents = len(engine_obj.evaluate(log, evaluated))
        assert engine_obj.last_stats is not None
        stats = engine_obj.last_stats

    root = tracer.last_root
    assert root is not None and root.children, "engine produced no trace"
    cost = CostModel(LogStatistics.from_log(log))
    nodes: list[NodeProfile] = []
    _collect(root.children[0], evaluated, cost, "root", 0, nodes)
    return ProfileReport(
        engine=engine,
        pattern_text=str(pattern),
        optimized_text=str(evaluated),
        transformations=transformations,
        stats=stats,
        nodes=nodes,
        trace=root,
        registry=registry,
        elapsed_s=root.elapsed_s,
        incidents=incidents,
        extra=extra,
    )

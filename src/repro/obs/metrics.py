"""Counters, gauges and histograms behind a registry.

The registry is deliberately tiny and dependency-free: metric objects are
plain attribute bags created on first use and looked up by name, so the
hot-path cost of recording is one dict lookup plus an addition.  Fixed
histogram bucket boundaries make snapshots mergeable across processes and
stable for the JSON exporter (:mod:`repro.obs.export`).

>>> registry = MetricsRegistry()
>>> registry.counter("engine.pairs_examined").inc(42)
>>> registry.gauge("engine.max_live_incidents").set_max(7)
>>> registry.histogram("monitor.observe_seconds").observe(0.003)
>>> registry.counter("engine.pairs_examined").value
42
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Exponential boundaries for latency histograms, in seconds (1µs .. 10s).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Powers-of-ten boundaries for size/cardinality histograms.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str, prefix: str) -> str:
    """A legal Prometheus metric name: prefixed, invalid chars to ``_``."""
    sanitized = _PROM_INVALID.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if not sanitized or sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _prometheus_value(value: float) -> str:
    """Shortest exact rendering: integers bare, floats via ``repr``."""
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


#: Canonical label form: ``((name, value), ...)`` sorted by name.
Labels = tuple[tuple[str, str], ...]


def _normalize_labels(labels: Mapping[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the 0.0.4 exposition format: backslash,
    double-quote and line-feed become ``\\\\``, ``\\"`` and ``\\n``."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _metric_key(name: str, labels: Labels) -> str:
    """The registry/snapshot key: ``name`` bare, or ``name{k="v",...}``
    with canonically ordered, escaped labels."""
    if not labels:
        return name
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{body}}}"


def _prometheus_labels(labels: Labels, extra: str = "") -> str:
    """Rendered ``{...}`` sample suffix (sanitised names, escaped values);
    ``extra`` appends a pre-rendered pair such as ``le="0.1"``."""
    parts = [
        f'{_PROM_INVALID.sub("_", k)}="{_escape_label_value(v)}"' for k, v in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _grouped(metrics: Mapping[str, Any]) -> list[tuple[str, list[Any]]]:
    """Series grouped by base metric name, both levels canonically sorted
    — all label sets of one name must sit under a single ``# TYPE``."""
    groups: dict[str, list[Any]] = {}
    for key in sorted(metrics):
        metric = metrics[key]
        groups.setdefault(metric.name, []).append(metric)
    return sorted(groups.items())


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Last-written (or peak-tracked) value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the peak: write only if ``value`` exceeds the current one."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Histogram with fixed, ascending bucket boundaries.

    ``counts[i]`` counts observations ``<= buckets[i]`` (and greater than
    the previous boundary); ``counts[-1]`` is the overflow bucket.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: Labels = (),
    ):
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries or list(boundaries) != sorted(set(boundaries)):
            raise ValueError("bucket boundaries must be non-empty, unique and ascending")
        self.name = name
        self.labels = labels
        self.buckets = boundaries
        self.counts = [0] * (len(boundaries) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # boundaries are inclusive upper bounds: bucket i holds values with
        # buckets[i-1] < value <= buckets[i]
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within the
        fixed buckets (the ``histogram_quantile`` rule).

        The estimate interpolates between a bucket's lower and upper
        boundary proportionally to the rank inside it; observations in
        the overflow bucket clamp to the highest boundary, so the
        estimate never exceeds ``buckets[-1]``.  An empty histogram
        estimates 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, boundary in enumerate(self.buckets):
            in_bucket = self.counts[index]
            if cumulative + in_bucket >= rank:
                if in_bucket == 0:
                    return boundary
                lower = self.buckets[index - 1] if index else 0.0
                fraction = (rank - cumulative) / in_bucket
                return lower + fraction * (boundary - lower)
            cumulative += in_bucket
        return self.buckets[-1]

    def fraction_le(self, value: float) -> float:
        """Estimated fraction of observations ``<= value`` (interpolated
        within the containing bucket); 1.0 on an empty histogram."""
        if self.count == 0:
            return 1.0
        if value >= self.buckets[-1]:
            return 1.0
        cumulative = 0
        for index, boundary in enumerate(self.buckets):
            if value <= boundary:
                lower = self.buckets[index - 1] if index else 0.0
                width = boundary - lower
                fraction = 1.0 if width <= 0 else max(0.0, value - lower) / width
                return (cumulative + fraction * self.counts[index]) / self.count
            cumulative += self.counts[index]
        return 1.0  # pragma: no cover - value < buckets[-1] always returns above

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical boundaries into this one
        (the windowed-aggregation primitive)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different boundaries: "
                f"{self.buckets} vs {other.buckets}"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.sum += other.sum
        self.count += other.count

    def reset(self) -> None:
        """Zero every counter in place (ring-bucket reuse)."""
        for index in range(len(self.counts)):
            self.counts[index] = 0
        self.sum = 0.0
        self.count = 0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6g})"


class MetricsRegistry:
    """Creates and owns metrics; hands out the same object per name.

    A name identifies exactly one metric kind: asking for a counter named
    like an existing gauge (or a histogram with different boundaries)
    raises, which keeps exported snapshots unambiguous.  Metrics may
    carry labels — each distinct ``(name, labels)`` combination is its
    own time series, keyed in snapshots as ``name{k="v",...}`` with
    canonically sorted label names and 0.0.4-escaped values.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- constructors ------------------------------------------------------

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        key = name if not labels else _metric_key(name, _normalize_labels(labels))
        metric = self._counters.get(key)
        if metric is None:
            self._check_fresh(key, self._gauges, self._histograms)
            metric = self._counters[key] = Counter(name, _normalize_labels(labels))
        return metric

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        key = name if not labels else _metric_key(name, _normalize_labels(labels))
        metric = self._gauges.get(key)
        if metric is None:
            self._check_fresh(key, self._counters, self._histograms)
            metric = self._gauges[key] = Gauge(name, _normalize_labels(labels))
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        key = name if not labels else _metric_key(name, _normalize_labels(labels))
        metric = self._histograms.get(key)
        if metric is None:
            self._check_fresh(key, self._counters, self._gauges)
            metric = self._histograms[key] = Histogram(
                name, buckets, _normalize_labels(labels)
            )
        elif metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{metric.buckets}"
            )
        return metric

    def _check_fresh(self, name: str, *other_kinds: dict[str, Any]) -> None:
        if any(name in kind for kind in other_kinds):
            raise ValueError(f"metric {name!r} already registered with another kind")

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of every metric, names sorted."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Metric names are sanitised (``.`` and other invalid characters
        become ``_``) and prefixed; each metric *name* is preceded by
        exactly one ``# TYPE`` line, with all of its labelled series
        grouped under it as the spec requires.  Label values are escaped
        per 0.0.4 (``\\`` → ``\\\\``, ``"`` → ``\\"``, line-feed →
        ``\\n``).  Histograms follow the Prometheus convention:
        **cumulative** ``_bucket`` samples with inclusive ``le`` upper
        bounds (closing with ``le="+Inf"``), plus ``_sum`` and
        ``_count`` — the internal per-bucket counts are converted, not
        re-observed.  Output is sorted by metric name within each kind
        (label sets in canonical order within a name), so the exposition
        is deterministic for golden-file tests.
        """
        lines: list[str] = []
        for name, series in _grouped(self._counters):
            prom = _prometheus_name(name, prefix)
            lines.append(f"# TYPE {prom} counter")
            for metric in series:
                lines.append(f"{prom}{_prometheus_labels(metric.labels)} {metric.value}")
        for name, series in _grouped(self._gauges):
            prom = _prometheus_name(name, prefix)
            lines.append(f"# TYPE {prom} gauge")
            for metric in series:
                lines.append(
                    f"{prom}{_prometheus_labels(metric.labels)} "
                    f"{_prometheus_value(metric.value)}"
                )
        for name, series in _grouped(self._histograms):
            prom = _prometheus_name(name, prefix)
            lines.append(f"# TYPE {prom} histogram")
            for histogram in series:
                cumulative = 0
                for boundary, bucket_count in zip(histogram.buckets, histogram.counts):
                    cumulative += bucket_count
                    le = f'le="{_prometheus_value(boundary)}"'
                    lines.append(
                        f"{prom}_bucket{_prometheus_labels(histogram.labels, le)} "
                        f"{cumulative}"
                    )
                suffix = _prometheus_labels(histogram.labels, 'le="+Inf"')
                lines.append(f"{prom}_bucket{suffix} {histogram.count}")
                plain = _prometheus_labels(histogram.labels)
                lines.append(f"{prom}_sum{plain} {_prometheus_value(histogram.sum)}")
                lines.append(f"{prom}_count{plain} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )

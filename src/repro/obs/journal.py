"""Query-lifecycle journal: structured JSONL events for every query.

The ROADMAP's service north-star needs an audit trail — *what did every
query cost, and why did this one die?* — that spans and metrics alone do
not give: spans are per-evaluation trees and metrics are process-global
aggregates.  The journal is the per-query record in between, one JSON
object per line, each tagged ``repro.obs.journal/v1``:

* ``submit``   — query text, operation, budgets; opens the lifecycle;
* ``plan``     — optimizer outcome (optimized text, whether it changed);
* ``cache``    — a cache probe (result/memo layer) and whether it hit;
* ``shard``    — parallel fan-out shape (shards, backend, jobs, strategy);
* ``evaluate`` — one evaluation body; in parallel runs, one per shard
  worker, stamped with the worker pid and shard index;
* ``finish``   — terminal: wall/CPU time, peak allocation
  (``tracemalloc``), pairs examined, incidents, cache attribution;
* ``killed``   — terminal: the governor stopped the query (reason +
  partial accounting).

Every event carries the ``query_id``/``trace_id`` minted at submission
(:class:`~repro.core.governor.QueryContext`), which propagate across
thread *and* process backends — worker events are built in the worker
(:func:`make_event`), shipped home inside the shard outcome, and
re-sequenced into the parent journal, so a parallel run stitches back
into one query record.

Views over a journal — :func:`slow_queries`, :func:`filter_events`,
:func:`top_patterns` — back the ``repro-logs events`` / ``repro-logs
top`` CLI surfaces.  :func:`validate_journal_event` is the
dependency-free structural validator in the :mod:`repro.obs.export`
style; the CI smoke job runs it over every line it produces.
"""

from __future__ import annotations

import json
import os
import threading
import time
import tracemalloc
from typing import IO, Any, Iterable, Mapping, Sequence, TYPE_CHECKING

from repro.obs.export import SchemaError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eval.base import EvaluationStats
    from repro.core.governor import QueryContext

__all__ = [
    "JOURNAL_SCHEMA",
    "EVENT_KINDS",
    "TERMINAL_KINDS",
    "QueryJournal",
    "RunRecorder",
    "ResourceAccount",
    "make_event",
    "read_journal",
    "validate_journal_event",
    "validate_journal",
    "filter_events",
    "slow_queries",
    "top_patterns",
]

JOURNAL_SCHEMA = "repro.obs.journal/v1"

#: Every event kind, in rough lifecycle order.
EVENT_KINDS: tuple[str, ...] = (
    "submit",
    "plan",
    "cache",
    "shard",
    "evaluate",
    "finish",
    "killed",
)

#: The kinds that close a lifecycle (exactly one per query run).
TERMINAL_KINDS: tuple[str, ...] = ("finish", "killed")


def make_event(
    kind: str, *, query_id: str, trace_id: str, **payload: Any
) -> dict[str, Any]:
    """Build one journal event dict (no sequence number yet).

    Shard workers call this to record their evaluation and ship the
    plain dict home in the outcome — dicts pickle, journals do not.  The
    parent journal assigns ``seq`` on adoption (:meth:`QueryJournal.write`).
    """
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown journal event kind {kind!r}")
    event: dict[str, Any] = {
        "schema": JOURNAL_SCHEMA,
        "event": kind,
        "query_id": query_id,
        "trace_id": trace_id,
        "ts_unix": time.time(),
        "pid": os.getpid(),
    }
    event.update(payload)
    return event


class QueryJournal:
    """A thread-safe JSONL sink for query-lifecycle events.

    Parameters
    ----------
    sink:
        A path (opened in append mode, one JSON object per line) or an
        open text file-like object.  ``None`` keeps events in memory
        only (:attr:`events`) — handy for tests and embedding.
    metrics:
        Optional registry; every written event increments the
        ``journal.events`` counter labelled by event kind.
    memory:
        Whether :class:`ResourceAccount` instances driven by this
        journal sample peak allocation via ``tracemalloc`` (the one
        journal feature with measurable overhead; default on).
    """

    def __init__(
        self,
        sink: "str | os.PathLike[str] | IO[str] | None" = None,
        *,
        metrics: MetricsRegistry | None = None,
        memory: bool = True,
    ) -> None:
        self.metrics = metrics
        self.memory = memory
        self.events: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._seq = 0
        self._owns_stream = False
        self.path: str | None = None
        self._stream: IO[str] | None
        if sink is None:
            self._stream = None
        elif isinstance(sink, (str, os.PathLike)):
            self.path = os.fspath(sink)
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink

    def emit(
        self, kind: str, *, query_id: str, trace_id: str, **payload: Any
    ) -> dict[str, Any]:
        """Build and write one event; returns the written dict."""
        return self.write(
            make_event(kind, query_id=query_id, trace_id=trace_id, **payload)
        )

    def write(self, event: Mapping[str, Any]) -> dict[str, Any]:
        """Sequence and persist one event (possibly built elsewhere).

        Worker-built events (:func:`make_event`) pass through here when
        the parent stitches them in, so ``seq`` is a single monotonic
        series per journal regardless of which process produced the
        event.
        """
        record = dict(event)
        record.setdefault("schema", JOURNAL_SCHEMA)
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            if self._stream is not None:
                self._stream.write(json.dumps(record, ensure_ascii=False) + "\n")
                self._stream.flush()
            else:
                self.events.append(record)
        if self.metrics is not None:
            self.metrics.counter(
                "journal.events", labels={"event": str(record.get("event"))}
            ).inc()
        return record

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "QueryJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = self.path if self.path is not None else "memory"
        return f"QueryJournal({target!r}, seq={self._seq})"


class ResourceAccount:
    """Wall + CPU time and peak-allocation sampling for one query run.

    Wall time uses ``perf_counter``, CPU time ``process_time`` (parent
    process only — worker CPU shows up in the per-shard ``evaluate``
    events instead).  Peak allocation is sampled with ``tracemalloc``:
    if tracing is already on, the peak counter is reset and read;
    otherwise tracing is started for the duration and stopped after, so
    the account never disturbs an enclosing profiler.
    """

    def __init__(self, *, memory: bool = True) -> None:
        self.memory = memory
        self.wall_ms: float | None = None
        self.cpu_ms: float | None = None
        self.peak_alloc_bytes: int | None = None
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._owns_tracemalloc = False
        self._started = False

    def start(self) -> None:
        self._started = True
        if self.memory:
            if tracemalloc.is_tracing():
                tracemalloc.reset_peak()
            else:
                tracemalloc.start()
                self._owns_tracemalloc = True
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def stop(self) -> None:
        """Freeze the counters (idempotent; safe if never started)."""
        if not self._started:
            return
        self._started = False
        self.wall_ms = (time.perf_counter() - self._wall0) * 1000.0
        self.cpu_ms = (time.process_time() - self._cpu0) * 1000.0
        if self.memory:
            self.peak_alloc_bytes = tracemalloc.get_traced_memory()[1]
            if self._owns_tracemalloc:
                tracemalloc.stop()
                self._owns_tracemalloc = False


class RunRecorder:
    """One query run's lifecycle: stamps context onto journal events.

    Built by :class:`~repro.core.query.Query` (and the batch evaluator)
    when a journal is configured; every method is a thin, typed wrapper
    over :meth:`QueryJournal.emit` with the run's ``query_id`` /
    ``trace_id`` applied, plus resource accounting for the terminal
    event.
    """

    def __init__(
        self,
        journal: QueryJournal,
        ctx: "QueryContext",
        *,
        pattern: str,
        op: str = "run",
    ) -> None:
        self.journal = journal
        self.ctx = ctx
        self.pattern = pattern
        self.op = op
        self.account = ResourceAccount(memory=journal.memory)
        self._closed = False

    def _emit(self, kind: str, **payload: Any) -> dict[str, Any]:
        return self.journal.emit(
            kind,
            query_id=self.ctx.query_id,
            trace_id=self.ctx.trace_id,
            **payload,
        )

    def submit(self, **payload: Any) -> None:
        """Open the lifecycle and start the resource account."""
        self._emit(
            "submit",
            pattern=self.pattern,
            op=self.op,
            deadline_ms=self.ctx.deadline_ms,
            max_pairs=self.ctx.max_pairs,
            **payload,
        )
        self.account.start()

    def plan(self, *, optimized: str, changed: bool, **payload: Any) -> None:
        self._emit("plan", optimized=optimized, changed=changed, **payload)

    def cache_probe(self, *, probe: str, hit: bool, **payload: Any) -> None:
        self._emit("cache", probe=probe, hit=hit, **payload)

    def shard(
        self, *, shards: int, backend: str, jobs: int, strategy: str
    ) -> None:
        self._emit(
            "shard", shards=shards, backend=backend, jobs=jobs, strategy=strategy
        )

    def adopt(self, events: Iterable[Mapping[str, Any]]) -> None:
        """Stitch worker-built events into this journal."""
        for event in events:
            self.journal.write(event)

    def evaluate(self, *, pairs: int, incidents: int, **payload: Any) -> None:
        """One (serial) evaluation body; parallel runs adopt per-shard
        worker events instead."""
        self._emit("evaluate", pairs=pairs, incidents=incidents, **payload)

    def finish(
        self,
        *,
        stats: "EvaluationStats | None" = None,
        incidents: int = 0,
        **payload: Any,
    ) -> dict[str, Any]:
        """Terminal success event with the full resource account."""
        self._closed = True
        self.account.stop()
        return self._emit(
            "finish",
            status="ok",
            pattern=self.pattern,
            op=self.op,
            wall_ms=self.account.wall_ms or 0.0,
            cpu_ms=self.account.cpu_ms or 0.0,
            peak_alloc_bytes=self.account.peak_alloc_bytes,
            pairs=0 if stats is None else stats.pairs_examined,
            operator_evals=0 if stats is None else stats.operator_evals,
            incidents=incidents,
            **payload,
        )

    def killed(self, exc: BaseException, **payload: Any) -> dict[str, Any]:
        """Terminal governor-kill event with partial accounting."""
        self._closed = True
        self.account.stop()
        stats = getattr(exc, "partial_stats", None)
        return self._emit(
            "killed",
            reason=type(exc).__name__,
            message=str(exc),
            pattern=self.pattern,
            op=self.op,
            wall_ms=self.account.wall_ms or 0.0,
            cpu_ms=self.account.cpu_ms or 0.0,
            peak_alloc_bytes=self.account.peak_alloc_bytes,
            pairs=0 if stats is None else stats.pairs_examined,
            **payload,
        )

    @property
    def closed(self) -> bool:
        """Whether a terminal event has been emitted."""
        return self._closed


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


#: Required payload fields per event kind: name -> checker tag.
_KIND_FIELDS: dict[str, dict[str, str]] = {
    "submit": {"pattern": "str", "op": "str"},
    "plan": {"optimized": "str", "changed": "bool"},
    "cache": {"probe": "str", "hit": "bool"},
    "shard": {"shards": "int", "backend": "str", "jobs": "int", "strategy": "str"},
    "evaluate": {"pairs": "int", "incidents": "int"},
    "finish": {
        "status": "str",
        "pattern": "str",
        "wall_ms": "num",
        "cpu_ms": "num",
        "pairs": "int",
        "incidents": "int",
    },
    "killed": {"reason": "str", "pattern": "str", "wall_ms": "num", "pairs": "int"},
}

_CHECKS = {
    "str": (lambda v: isinstance(v, str) and bool(v), "a non-empty string"),
    "int": (lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
            "a non-negative integer"),
    "num": (lambda v: _is_num(v) and v >= 0, "a non-negative number"),
    "bool": (lambda v: isinstance(v, bool), "a boolean"),
}


def validate_journal_event(doc: Any) -> None:
    """Raise :class:`SchemaError` unless ``doc`` is a valid journal event."""
    _require(isinstance(doc, Mapping), "journal event must be an object")
    _require(
        doc.get("schema") == JOURNAL_SCHEMA, f"schema must be {JOURNAL_SCHEMA!r}"
    )
    kind = doc.get("event")
    _require(
        kind in EVENT_KINDS,
        f"event must be one of {EVENT_KINDS}, got {kind!r}",
    )
    for field in ("query_id", "trace_id"):
        value = doc.get(field)
        _require(
            isinstance(value, str) and bool(value),
            f"journal event is missing {field!r}",
        )
    _require(
        _is_num(doc.get("ts_unix")) and doc["ts_unix"] >= 0,
        "ts_unix must be a non-negative number",
    )
    seq = doc.get("seq")
    _require(
        isinstance(seq, int) and not isinstance(seq, bool) and seq >= 0,
        "seq must be a non-negative integer",
    )
    pid = doc.get("pid")
    _require(
        isinstance(pid, int) and not isinstance(pid, bool) and pid >= 1,
        "pid must be a positive integer",
    )
    for field, tag in _KIND_FIELDS[str(kind)].items():
        _require(field in doc, f"{kind} event is missing {field!r}")
        check, expected = _CHECKS[tag]
        _require(check(doc[field]), f"{kind} event: {field!r} must be {expected}")


def validate_journal(events: Iterable[Any]) -> int:
    """Validate a whole journal; returns the number of events checked.

    Beyond per-event structure, checks the cross-event invariant that
    every ``query_id`` appearing in a terminal event has exactly one
    terminal event and a matching ``submit``.
    """
    count = 0
    submitted: set[str] = set()
    closed: set[str] = set()
    for index, event in enumerate(events):
        try:
            validate_journal_event(event)
        except SchemaError as error:
            raise SchemaError(f"event {index}: {error}") from None
        count += 1
        qid = event["query_id"]
        if event["event"] == "submit":
            submitted.add(qid)
        elif event["event"] in TERMINAL_KINDS:
            _require(
                qid not in closed,
                f"event {index}: query {qid!r} has two terminal events",
            )
            _require(
                qid in submitted,
                f"event {index}: terminal event for {qid!r} without a submit",
            )
            closed.add(qid)
    return count


def read_journal(
    source: "str | os.PathLike[str] | IO[str]", *, validate: bool = False
) -> list[dict[str, Any]]:
    """Load a JSONL journal file into a list of event dicts.

    Raises :class:`SchemaError` on malformed JSON, and (with
    ``validate=True``) on schema violations.
    """
    if isinstance(source, (str, os.PathLike)):
        stream: IO[str] = open(os.fspath(source), "r", encoding="utf-8")
        owns = True
    else:
        stream, owns = source, False
    events: list[dict[str, Any]] = []
    try:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise SchemaError(f"line {lineno}: not valid JSON ({error})") from None
    finally:
        if owns:
            stream.close()
    if validate:
        validate_journal(events)
    return events


# ---------------------------------------------------------------------------
# views: slow-query log, filtering, per-pattern ranking
# ---------------------------------------------------------------------------

def filter_events(
    events: Iterable[Mapping[str, Any]],
    *,
    query_id: str | None = None,
    kinds: Sequence[str] | None = None,
    pattern: str | None = None,
) -> list[dict[str, Any]]:
    """Events matching every given filter (None filters match all).

    ``pattern`` is a substring match on the event's ``pattern`` field,
    which submit and terminal events carry.
    """
    selected: list[dict[str, Any]] = []
    for event in events:
        if query_id is not None and event.get("query_id") != query_id:
            continue
        if kinds is not None and event.get("event") not in kinds:
            continue
        if pattern is not None and pattern not in str(event.get("pattern", "")):
            continue
        selected.append(dict(event))
    return selected


def slow_queries(
    events: Iterable[Mapping[str, Any]], *, threshold_ms: float
) -> list[dict[str, Any]]:
    """The slow-query log: terminal events at or above ``threshold_ms``
    wall time, slowest first."""
    slow = [
        dict(event)
        for event in events
        if event.get("event") in TERMINAL_KINDS
        and _is_num(event.get("wall_ms"))
        and event["wall_ms"] >= threshold_ms
    ]
    slow.sort(key=lambda e: e["wall_ms"], reverse=True)
    return slow


#: Rankable keys for :func:`top_patterns`.
TOP_KEYS: tuple[str, ...] = ("wall_ms", "cpu_ms", "pairs", "peak_alloc_bytes", "runs")


def top_patterns(
    events: Iterable[Mapping[str, Any]],
    *,
    by: str = "wall_ms",
    limit: int = 10,
) -> list[dict[str, Any]]:
    """Aggregate terminal events per pattern and rank by total cost.

    Each row sums ``wall_ms``/``cpu_ms``/``pairs`` over the pattern's
    runs, takes the max of ``peak_alloc_bytes``, and counts runs and
    governor kills — the ``repro-logs top`` surface.
    """
    if by not in TOP_KEYS:
        raise SchemaError(f"cannot rank by {by!r}; choose one of {TOP_KEYS}")
    rows: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.get("event") not in TERMINAL_KINDS:
            continue
        pattern = str(event.get("pattern", "?"))
        row = rows.setdefault(
            pattern,
            {
                "pattern": pattern,
                "runs": 0,
                "killed": 0,
                "wall_ms": 0.0,
                "cpu_ms": 0.0,
                "pairs": 0,
                "peak_alloc_bytes": 0,
            },
        )
        row["runs"] += 1
        if event["event"] == "killed":
            row["killed"] += 1
        for key in ("wall_ms", "cpu_ms", "pairs"):
            if _is_num(event.get(key)):
                row[key] += event[key]
        peak = event.get("peak_alloc_bytes")
        if _is_num(peak) and peak > row["peak_alloc_bytes"]:
            row["peak_alloc_bytes"] = peak
    ranked = sorted(rows.values(), key=lambda r: r[by], reverse=True)
    return ranked[: limit if limit > 0 else len(ranked)]

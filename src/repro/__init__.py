"""repro — incident-pattern queries over workflow logs.

A complete, production-oriented implementation of the query language of
Tang, Mackey & Su, *Querying Workflow Logs*: a formal log model, the
four-operator incident-pattern algebra (consecutive ⊙, sequential ⊳,
choice ⊗, parallel ⊕), two evaluation engines, a cost-based optimizer
built on the paper's algebraic laws, a workflow-execution simulator that
generates logs, log storage/serialization, ETL/SQL and CEP/automaton
baselines, and an analytics layer.

Quickstart
----------
>>> from repro import Log, Query
>>> log = Log.from_traces([
...     ["GetRefer", "CheckIn", "UpdateRefer", "SeeDoctor", "GetReimburse"],
...     ["GetRefer", "CheckIn", "SeeDoctor"],
... ], interleave=True)
>>> Query("UpdateRefer -> GetReimburse").count(log)
1
"""

from repro.obs.log import install_null_handler as _install_null_handler

# library default: the `repro.*` logging hierarchy stays silent unless the
# application (or the CLI's -v flag) configures a handler
_install_null_handler()

from repro.core import (  # noqa: E402
    END,
    assignment,
    is_incident,
    ENGINES,
    START,
    Atomic,
    Backend,
    BudgetExceededError,
    Choice,
    Consecutive,
    Diagnostic,
    EngineOptions,
    EvaluationError,
    Incident,
    IncidentSet,
    Linter,
    Log,
    LogRecord,
    LogValidationError,
    LogView,
    OptimizerError,
    Parallel,
    Pattern,
    PatternSyntaxError,
    Query,
    ReproError,
    Sequential,
    Severity,
    act,
    choice,
    consecutive,
    lint_pattern,
    neg,
    parallel,
    parse,
    parse_with_spans,
    reference_incidents,
    sequential,
)
from repro.analysis import (  # noqa: E402
    AnalysisError,
    PatternProver,
    verify_rules,
)
from repro.cache import CachePolicy, QueryCache  # noqa: E402
from repro.columnar import ColumnarLog, as_columnar  # noqa: E402
from repro.logstore.store import LogStore  # noqa: E402

__version__ = "1.0.0"

#: The blessed public surface: build applications against these names.
__all__ = [
    "__version__",
    "EngineOptions",
    "Backend",
    "LogView",
    "ColumnarLog",
    "as_columnar",
    "CachePolicy",
    "QueryCache",
    "LogStore",
    "ReproError",
    "LogValidationError",
    "PatternSyntaxError",
    "EvaluationError",
    "BudgetExceededError",
    "OptimizerError",
    "Incident",
    "IncidentSet",
    "reference_incidents",
    "is_incident",
    "assignment",
    "Log",
    "LogRecord",
    "START",
    "END",
    "parse",
    "parse_with_spans",
    "Diagnostic",
    "Linter",
    "Severity",
    "lint_pattern",
    "Pattern",
    "Atomic",
    "Consecutive",
    "Sequential",
    "Choice",
    "Parallel",
    "act",
    "neg",
    "consecutive",
    "sequential",
    "choice",
    "parallel",
    "Query",
    "ENGINES",
    "AnalysisError",
    "PatternProver",
    "verify_rules",
]

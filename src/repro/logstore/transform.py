"""Log transformation utilities.

Operational tooling around logs-as-values: filtering, slicing, merging
and anonymising, each returning a fresh well-formed
:class:`~repro.core.model.Log` (Definition 2 is re-established after
every transformation by re-compacting sequence numbers where needed).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.core.errors import LogValidationError
from repro.core.model import END, START, Log, LogRecord

__all__ = [
    "filter_instances",
    "slice_lsn",
    "project_activities",
    "merge_logs",
    "anonymize",
    "renumber",
]


def renumber(records: Iterable[LogRecord]) -> Log:
    """Rebuild a well-formed log from record *subsequences*.

    Global lsn values are compacted to ``1..n`` preserving order and
    per-instance is-lsn values are recomputed; instances whose START
    record was filtered away are dropped entirely (a log cannot represent
    them, per Definition 2 condition 2).
    """
    ordered = sorted(records, key=lambda r: r.lsn)
    next_pos: dict[int, int] = {}
    started: set[int] = set()
    out: list[LogRecord] = []
    for record in ordered:
        if record.wid not in started:
            if record.activity != START:
                continue  # headless instance: drop
            started.add(record.wid)
        position = next_pos.get(record.wid, 0) + 1
        next_pos[record.wid] = position
        out.append(
            LogRecord(
                lsn=len(out) + 1,
                wid=record.wid,
                is_lsn=position,
                activity=record.activity,
                attrs_in=record.attrs_in,
                attrs_out=record.attrs_out,
            )
        )
    if not out:
        raise LogValidationError("transformation removed every record")
    return Log(out)


def filter_instances(
    log: Log, predicate: Callable[[tuple[LogRecord, ...]], bool]
) -> Log:
    """Keep the instances whose full trace satisfies ``predicate``."""
    keep = [w for w in log.wids if predicate(log.instance(w))]
    if not keep:
        raise LogValidationError("no instance satisfies the predicate")
    return log.restrict_to(keep)


def slice_lsn(log: Log, start: int, stop: int) -> Log:
    """The log restricted to global positions ``start <= lsn < stop``,
    re-anchored to a well-formed log (instances whose START falls outside
    the window are dropped)."""
    if start >= stop:
        raise ValueError("need start < stop")
    return renumber(r for r in log if start <= r.lsn < stop)


def project_activities(log: Log, activities: Iterable[str]) -> Log:
    """Keep only records of the given activities (plus sentinels), the
    classic event-abstraction step before pattern mining."""
    wanted = set(activities) | {START, END}
    return renumber(r for r in log if r.activity in wanted)


def merge_logs(first: Log, second: Log) -> Log:
    """Concatenate two logs into one, remapping the second log's instance
    ids above the first's to keep them disjoint.

    Records keep their relative order (all of ``first`` before all of
    ``second``), modelling a warehouse union of two shards.
    """
    offset = max(first.wids)
    remapped = [
        LogRecord(
            lsn=r.lsn,  # placeholder; renumber() compacts
            wid=r.wid + offset,
            is_lsn=r.is_lsn,
            activity=r.activity,
            attrs_in=r.attrs_in,
            attrs_out=r.attrs_out,
        )
        for r in second
    ]
    combined = list(first.records) + remapped
    for index, record in enumerate(combined):
        combined[index] = LogRecord(
            lsn=index + 1,
            wid=record.wid,
            is_lsn=record.is_lsn,
            activity=record.activity,
            attrs_in=record.attrs_in,
            attrs_out=record.attrs_out,
        )
    return Log(combined)


def anonymize(
    log: Log,
    *,
    activity_map: Mapping[str, str] | None = None,
    drop_attributes: bool = True,
) -> Log:
    """Pseudonymise a log for sharing: activity names are renamed via
    ``activity_map`` (auto-generated ``T01, T02, ...`` when omitted,
    sentinels preserved) and attribute maps are dropped by default."""
    if activity_map is None:
        names = sorted(log.activities - {START, END})
        width = max(2, len(str(len(names))))
        activity_map = {
            name: f"T{i + 1:0{width}d}" for i, name in enumerate(names)
        }
    records = [
        LogRecord(
            lsn=r.lsn,
            wid=r.wid,
            is_lsn=r.is_lsn,
            activity=(
                r.activity
                if r.is_sentinel
                else activity_map.get(r.activity, r.activity)
            ),
            attrs_in=None if drop_attributes else r.attrs_in,
            attrs_out=None if drop_attributes else r.attrs_out,
        )
        for r in log
    ]
    return Log(records)

"""Non-throwing log validation and repair.

:class:`~repro.core.model.Log` raises on the first Definition 2 violation;
operational tooling usually wants *all* problems listed
(:func:`validation_report`) and, where possible, a best-effort repair
(:func:`repair_log`) that salvages the valid prefix of each instance and
re-compacts global sequence numbers.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.model import END, START, Log, LogRecord

__all__ = ["ValidationIssue", "validation_report", "repair_log"]


@dataclass(frozen=True)
class ValidationIssue:
    """One Definition 2 violation found in a record collection."""

    condition: int
    lsn: int | None
    message: str

    def __str__(self) -> str:
        where = f"lsn={self.lsn}" if self.lsn is not None else "log"
        return f"[condition {self.condition}] {where}: {self.message}"


def validation_report(records: Iterable[LogRecord]) -> list[ValidationIssue]:
    """All Definition 2 violations in ``records`` (empty list = valid).

    Unlike :meth:`Log.validate`, this scans the whole input and reports
    every violation, which is what log-ingestion tooling needs.
    """
    issues: list[ValidationIssue] = []
    recs = sorted(records, key=lambda r: r.lsn)
    if not recs:
        return [ValidationIssue(0, None, "log is empty")]

    seen_lsn: set[int] = set()
    for record in recs:
        if record.lsn in seen_lsn:
            issues.append(
                ValidationIssue(1, record.lsn, "duplicate log sequence number")
            )
        seen_lsn.add(record.lsn)
    expected = set(range(1, len(recs) + 1))
    missing = sorted(expected - seen_lsn)
    extra = sorted(seen_lsn - expected)
    if missing:
        issues.append(
            ValidationIssue(
                1, None, f"lsn values are not 1..{len(recs)}: missing {missing[:10]}"
            )
        )
    if extra:
        issues.append(
            ValidationIssue(
                1, None, f"lsn values are not 1..{len(recs)}: unexpected {extra[:10]}"
            )
        )

    last_is_lsn: dict[int, int] = {}
    ended: set[int] = set()
    for record in recs:
        if record.wid in ended:
            issues.append(
                ValidationIssue(
                    4, record.lsn, f"instance {record.wid} continues after END"
                )
            )
        if (record.is_lsn == 1) != (record.activity == START):
            issues.append(
                ValidationIssue(
                    2,
                    record.lsn,
                    f"is-lsn==1 iff activity==START violated "
                    f"(is-lsn={record.is_lsn}, activity={record.activity!r})",
                )
            )
        expected_pos = last_is_lsn.get(record.wid, 0) + 1
        if record.is_lsn != expected_pos:
            issues.append(
                ValidationIssue(
                    3,
                    record.lsn,
                    f"instance {record.wid}: expected is-lsn {expected_pos}, "
                    f"got {record.is_lsn}",
                )
            )
        last_is_lsn[record.wid] = max(
            last_is_lsn.get(record.wid, 0), record.is_lsn
        )
        if record.activity == END:
            ended.add(record.wid)
    return issues


def repair_log(records: Iterable[LogRecord]) -> tuple[Log, list[LogRecord]]:
    """Best-effort repair: salvage the longest valid prefix of every
    instance and rebuild a well-formed log.

    Returns ``(repaired_log, dropped_records)``.  Repair steps:

    * records of an instance whose is-lsn is not the next consecutive
      value (or that follow an END) are dropped, along with the rest of
      that instance;
    * instances that do not begin with a START record get one synthesised
      (with subsequent is-lsn values shifted);
    * global lsn values are re-compacted to ``1..n`` in original order.
    """
    recs = sorted(records, key=lambda r: r.lsn)
    kept: list[LogRecord] = []
    dropped: list[LogRecord] = []
    progress: dict[int, int] = {}
    needs_start_shift: set[int] = set()
    broken: set[int] = set()
    ended: set[int] = set()

    for record in recs:
        wid = record.wid
        if wid in broken or wid in ended:
            dropped.append(record)
            continue
        seen = progress.get(wid, 0)
        expected = seen + 1
        is_lsn = record.is_lsn
        if seen == 0 and record.activity != START:
            # synthesise a START: this instance's records shift by one
            needs_start_shift.add(wid)
        if wid in needs_start_shift:
            is_lsn = record.is_lsn + 1
        if seen == 0 and record.activity != START:
            expected = 2  # after the synthetic START
        if is_lsn != expected:
            broken.add(wid)
            dropped.append(record)
            continue
        progress[wid] = is_lsn
        kept.append(
            LogRecord(
                lsn=record.lsn,
                wid=wid,
                is_lsn=is_lsn,
                activity=record.activity,
                attrs_in=record.attrs_in,
                attrs_out=record.attrs_out,
            )
        )
        if record.activity == END:
            ended.add(wid)

    # materialise synthetic STARTs at each instance's first kept position
    final: list[LogRecord] = []
    started: set[int] = set()
    for record in kept:
        if record.wid in needs_start_shift and record.wid not in started:
            final.append(
                LogRecord(
                    lsn=record.lsn,  # placeholder; compacted below
                    wid=record.wid,
                    is_lsn=1,
                    activity=START,
                )
            )
        started.add(record.wid)
        final.append(record)

    compacted = [
        LogRecord(
            lsn=i + 1,
            wid=r.wid,
            is_lsn=r.is_lsn,
            activity=r.activity,
            attrs_in=r.attrs_in,
            attrs_out=r.attrs_out,
        )
        for i, r in enumerate(final)
    ]
    if not compacted:
        raise ValueError("nothing salvageable: all records were dropped")
    return Log(compacted), dropped

"""Persistent log storage in SQLite.

Unlike the in-memory :class:`~repro.baselines.sql.SqlWarehouse` (a
*query* baseline with a fixed projection), this module is a *storage*
backend: the full record — attribute maps included, JSON-encoded — is
persisted, logs can be appended to across process restarts, and loads
can be restricted to instance subsets.

Schema::

    records(
        lsn       INTEGER PRIMARY KEY,
        wid       INTEGER NOT NULL,
        is_lsn    INTEGER NOT NULL,
        activity  TEXT    NOT NULL,
        attrs_in  TEXT    NOT NULL,   -- JSON object
        attrs_out TEXT    NOT NULL    -- JSON object
    )
    + indices on (wid, is_lsn) and (activity)

Example
-------
>>> db = SqliteLogStore("clinic.db")          # doctest: +SKIP
>>> db.save(log)                              # doctest: +SKIP
>>> log2 = db.load()                          # doctest: +SKIP
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Iterable
from os import PathLike
from typing import Union
from uuid import uuid4

from repro.core.errors import LogStoreError
from repro.core.model import Log, LogRecord

__all__ = ["SqliteLogStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    lsn       INTEGER PRIMARY KEY,
    wid       INTEGER NOT NULL,
    is_lsn    INTEGER NOT NULL,
    activity  TEXT    NOT NULL,
    attrs_in  TEXT    NOT NULL,
    attrs_out TEXT    NOT NULL
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_records_wid_pos
    ON records (wid, is_lsn);
CREATE INDEX IF NOT EXISTS idx_records_activity
    ON records (activity);
"""


class SqliteLogStore:
    """A workflow log persisted in a SQLite database file.

    The store enforces the same append discipline as the in-memory
    :class:`~repro.logstore.store.LogStore`: global lsn values are
    assigned consecutively and records arrive in order.
    """

    def __init__(self, path: Union[str, PathLike] = ":memory:"):
        self.path = str(path)
        self.connection = sqlite3.connect(self.path)
        self.connection.executescript(_SCHEMA)
        self.connection.commit()
        # Provenance for repro.cache: the epoch is the stored record count
        # (append-only, so it only grows while this handle is open); the
        # lineage token is per-handle, because the file may be mutated by
        # other handles/processes between opens.
        self._lineage = f"sqlite:{uuid4().hex}"
        self._epoch = self.count()

    @property
    def epoch(self) -> int:
        """Append epoch: the number of records written through (or found
        by) this handle.  Bumped by :meth:`append_records`/:meth:`save`."""
        return self._epoch

    @property
    def lineage(self) -> str:
        """Cache-identity token, unique per open handle."""
        return self._lineage

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteLogStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def save(self, log: Log, *, replace: bool = False) -> None:
        """Persist a whole log.

        With ``replace`` the table is cleared first; otherwise the store
        must be empty (use :meth:`append_records` to extend).
        """
        if replace:
            self.connection.execute("DELETE FROM records")
            # a replace breaks the append-only invariant, so the old
            # lineage (and any cache entries under it) must not survive
            self._lineage = f"sqlite:{uuid4().hex}"
            self._epoch = 0
        elif self.count() > 0:
            raise LogStoreError(
                "store is not empty; pass replace=True or use append_records"
            )
        self._insert(log.records)

    def append_records(self, records: Iterable[LogRecord]) -> int:
        """Append records continuing the stored sequence; returns how many
        were written.  Each record's lsn must be exactly the next one."""
        return self._insert(records)

    def _insert(self, records: Iterable[LogRecord]) -> int:
        next_lsn = self.count() + 1
        rows = []
        for record in records:
            if record.lsn != next_lsn:
                raise LogStoreError(
                    f"expected lsn {next_lsn}, got {record.lsn} "
                    f"(records must continue the stored sequence)"
                )
            rows.append(
                (
                    record.lsn,
                    record.wid,
                    record.is_lsn,
                    record.activity,
                    json.dumps(dict(record.attrs_in), sort_keys=True),
                    json.dumps(dict(record.attrs_out), sort_keys=True),
                )
            )
            next_lsn += 1
        with self.connection:
            self.connection.executemany(
                "INSERT INTO records VALUES (?, ?, ?, ?, ?, ?)", rows
            )
        self._epoch = next_lsn - 1
        return len(rows)

    # -- reading -----------------------------------------------------------

    def count(self) -> int:
        """Number of stored records."""
        (n,) = self.connection.execute("SELECT COUNT(*) FROM records").fetchone()
        return int(n)

    def wids(self) -> tuple[int, ...]:
        """Stored workflow instance ids."""
        rows = self.connection.execute(
            "SELECT DISTINCT wid FROM records ORDER BY wid"
        )
        return tuple(int(w) for (w,) in rows)

    def load(self, *, wids: Iterable[int] | None = None,
             validate: bool = True) -> Log:
        """Materialise the stored log (optionally only some instances,
        with lsn values re-compacted so the result is well-formed)."""
        if wids is None:
            cursor = self.connection.execute(
                "SELECT lsn, wid, is_lsn, activity, attrs_in, attrs_out "
                "FROM records ORDER BY lsn"
            )
        else:
            wanted = sorted(set(int(w) for w in wids))
            placeholders = ",".join("?" for __ in wanted)
            cursor = self.connection.execute(
                "SELECT lsn, wid, is_lsn, activity, attrs_in, attrs_out "
                f"FROM records WHERE wid IN ({placeholders}) ORDER BY lsn",
                wanted,
            )
        records = []
        for position, row in enumerate(cursor, start=1):
            __, wid, is_lsn, activity, attrs_in, attrs_out = row
            records.append(
                LogRecord(
                    lsn=position,
                    wid=int(wid),
                    is_lsn=int(is_lsn),
                    activity=activity,
                    attrs_in=json.loads(attrs_in),
                    attrs_out=json.loads(attrs_out),
                )
            )
        if not records:
            raise LogStoreError("store holds no matching records")
        if wids is None:
            # a full load re-assigns lsn := position, which for the whole
            # ordered table is the identity, so the result is exactly the
            # stored log and carries the handle's cache provenance; the
            # epoch is the row count actually read, so appends made by
            # other handles to the same file still invalidate
            self._epoch = max(self._epoch, len(records))
            return Log(
                records,
                validate=validate,
                epoch=len(records),
                lineage=self._lineage,
                snapshot=True,
            )
        # partial loads compact lsns, producing records that differ from
        # the stored ones — no store provenance
        return Log(records, validate=validate)

    def activity_histogram(self) -> dict[str, int]:
        """Occurrence counts per activity, computed in the database."""
        rows = self.connection.execute(
            "SELECT activity, COUNT(*) FROM records GROUP BY activity"
        )
        return {activity: int(count) for activity, count in rows}

    def __repr__(self) -> str:
        return f"SqliteLogStore({self.path!r}, {self.count()} records)"

"""XES import/export.

XES (eXtensible Event Stream, IEEE 1849-2016) is the interchange format of
the process-mining ecosystem (ProM, pm4py, Disco).  Exporting lets logs
generated here be analysed by those tools; importing lets their event logs
be queried with incident patterns.

Mapping
-------
* one XES ``<trace>`` per workflow instance; ``concept:name`` = wid;
* one ``<event>`` per log record; ``concept:name`` = activity name;
* the record's αin/αout maps are nested under ``repro:attrs_in`` /
  ``repro:attrs_out`` container attributes;
* on import, events are ordered within each trace by document order, and
  global ``lsn`` values are assigned by an interleaving round-robin when
  the XES file does not carry ``repro:lsn`` hints (XES has no global
  order across traces).  ``START``/``END`` sentinels are added when
  missing, since most external XES logs lack them.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from os import PathLike
from pathlib import Path
from typing import IO, Any, Union

from repro.core.errors import LogStoreError
from repro.core.model import END, START, Log, LogRecord

__all__ = ["write_xes", "read_xes"]

PathOrIO = Union[str, PathLike, IO[str]]


def _attr_element(key: str, value: Any) -> ET.Element:
    """Build a typed XES attribute element for ``value``."""
    if isinstance(value, bool):
        element = ET.Element("boolean")
        element.set("value", "true" if value else "false")
    elif isinstance(value, int):
        element = ET.Element("int")
        element.set("value", str(value))
    elif isinstance(value, float):
        element = ET.Element("float")
        element.set("value", repr(value))
    else:
        element = ET.Element("string")
        element.set("value", str(value))
    element.set("key", key)
    return element


def _parse_attr(element: ET.Element) -> Any:
    value = element.get("value", "")
    tag = element.tag.rsplit("}", 1)[-1]
    if tag == "int":
        return int(value)
    if tag == "float":
        return float(value)
    if tag == "boolean":
        return value == "true"
    return value


def write_xes(log: Log, target: PathOrIO) -> None:
    """Write ``log`` as an XES document (one trace per instance)."""
    root = ET.Element("log")
    root.set("xes.version", "1.0")
    root.set("xmlns", "http://www.xes-standard.org/")
    for wid in log.wids:
        trace = ET.SubElement(root, "trace")
        trace.append(_attr_element("concept:name", str(wid)))
        for record in log.instance(wid):
            event = ET.SubElement(trace, "event")
            event.append(_attr_element("concept:name", record.activity))
            event.append(_attr_element("repro:lsn", record.lsn))
            event.append(_attr_element("repro:is_lsn", record.is_lsn))
            for container_key, attrs in (
                ("repro:attrs_in", record.attrs_in),
                ("repro:attrs_out", record.attrs_out),
            ):
                if not attrs:
                    continue
                container = ET.Element("list")
                container.set("key", container_key)
                values = ET.SubElement(container, "values")
                for key, value in attrs.items():
                    values.append(_attr_element(key, value))
                event.append(container)
    text = ET.tostring(root, encoding="unicode", xml_declaration=True)
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")


def read_xes(source: PathOrIO, *, validate: bool = True) -> Log:
    """Read an XES document into a :class:`Log`.

    Handles both files produced by :func:`write_xes` (global order is
    restored from ``repro:lsn``) and generic third-party XES (traces are
    round-robin interleaved to synthesise a global order, and missing
    ``START``/``END`` sentinels are added).
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text(encoding="utf-8")
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise LogStoreError(f"invalid XES document: {exc}") from exc

    def strip(tag: str) -> str:
        return tag.rsplit("}", 1)[-1]

    traces: list[tuple[int, list[dict]]] = []
    next_wid = 1
    for trace_el in root:
        if strip(trace_el.tag) != "trace":
            continue
        wid: int | None = None
        events: list[dict] = []
        for child in trace_el:
            tag = strip(child.tag)
            if tag != "event":
                if child.get("key") == "concept:name":
                    try:
                        wid = int(child.get("value", ""))
                    except ValueError:
                        wid = None
                continue
            event: dict = {"attrs_in": {}, "attrs_out": {}, "lsn": None}
            for attr in child:
                key = attr.get("key", "")
                if key == "concept:name":
                    event["activity"] = attr.get("value", "")
                elif key == "repro:lsn":
                    event["lsn"] = _parse_attr(attr)
                elif key in ("repro:attrs_in", "repro:attrs_out"):
                    bucket = event["attrs_in" if key.endswith("in") else "attrs_out"]
                    for values in attr:
                        for item in values:
                            bucket[item.get("key", "")] = _parse_attr(item)
            if "activity" not in event:
                raise LogStoreError("XES event without concept:name")
            events.append(event)
        if wid is None:
            wid = next_wid
        next_wid = max(next_wid, wid + 1)
        traces.append((wid, events))

    if not traces:
        raise LogStoreError("XES document contains no traces")

    # Add sentinels when the producer did not include them.
    for __, events in traces:
        names = [e["activity"] for e in events]
        if not names or names[0] != START:
            events.insert(0, {"activity": START, "attrs_in": {}, "attrs_out": {},
                              "lsn": None})
        if names and names[-1] != END and END in names:
            raise LogStoreError("XES trace has END before its final event")

    has_lsn = all(
        event["lsn"] is not None for __, events in traces for event in events
    )

    records: list[LogRecord] = []
    if has_lsn:
        flat = []
        for wid, events in traces:
            for position, event in enumerate(events, start=1):
                flat.append((event["lsn"], wid, position, event))
        flat.sort(key=lambda item: item[0])
        for new_lsn, (__, wid, position, event) in enumerate(flat, start=1):
            records.append(
                LogRecord(
                    lsn=new_lsn,
                    wid=wid,
                    is_lsn=position,
                    activity=event["activity"],
                    attrs_in=event["attrs_in"],
                    attrs_out=event["attrs_out"],
                )
            )
    else:
        # No trustworthy global order: interleave traces round-robin.
        cursors = {wid: 0 for wid, __ in traces}
        order = [wid for wid, __ in traces]
        events_of = dict(traces)
        next_lsn = 1
        remaining = sum(len(events) for __, events in traces)
        while remaining:
            for wid in order:
                i = cursors[wid]
                if i >= len(events_of[wid]):
                    continue
                event = events_of[wid][i]
                records.append(
                    LogRecord(
                        lsn=next_lsn,
                        wid=wid,
                        is_lsn=i + 1,
                        activity=event["activity"],
                        attrs_in=event["attrs_in"],
                        attrs_out=event["attrs_out"],
                    )
                )
                cursors[wid] += 1
                next_lsn += 1
                remaining -= 1
    return Log(records, validate=validate)

"""JSON-lines serialization of workflow logs.

One JSON object per line with keys ``lsn, wid, is_lsn, activity, attrs_in,
attrs_out`` — the canonical on-disk format of this library (lossless for
any JSON-representable attribute values, streamable, appendable).
"""

from __future__ import annotations

import json
from os import PathLike
from pathlib import Path
from typing import IO, Union

from repro.core.errors import LogStoreError
from repro.core.model import Log, LogRecord
from repro.obs.log import get_logger

logger = get_logger("logstore.io")

__all__ = ["write_jsonl", "read_jsonl", "dumps", "loads"]

PathOrIO = Union[str, PathLike, IO[str]]


def dumps(log: Log) -> str:
    """Serialize ``log`` to a JSON-lines string."""
    return "\n".join(json.dumps(r.to_dict(), sort_keys=True) for r in log) + "\n"


def loads(text: str, *, validate: bool = True) -> Log:
    """Parse a JSON-lines string into a :class:`Log`."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(LogRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise LogStoreError(
                f"malformed JSONL record on line {line_number}: {exc}"
            ) from exc
    if not records:
        raise LogStoreError("JSONL input contains no records")
    return Log(records, validate=validate)


def write_jsonl(log: Log, target: PathOrIO) -> None:
    """Write ``log`` to a path or text file object, one record per line."""
    text = dumps(log)
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")
        logger.debug("wrote %d records to %s", len(log), target)


def read_jsonl(source: PathOrIO, *, validate: bool = True) -> Log:
    """Read a log from a path or text file object."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text(encoding="utf-8")
    log = loads(text, validate=validate)
    logger.debug(
        "read %d records / %d instances", len(log), len(log.wids)
    )
    return log

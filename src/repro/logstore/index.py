"""Standalone log indices.

:class:`~repro.core.model.Log` carries the simple per-activity and
per-instance indices Algorithm 2 needs; :class:`LogIndex` is the richer,
incrementally maintainable structure a long-running service keeps next to
an append-only store: positions per (wid, activity), first/last occurrence
maps, and adjacency (directly-follows) lookups used by the consecutive
operator and by analytics.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable
from time import perf_counter

from repro.core.model import Log, LogRecord
from repro.core.view import LogView
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = ["LogIndex"]

logger = get_logger("logstore.index")


class LogIndex:
    """Incremental index over log records.

    Maintains, per workflow instance:

    * ``positions(wid, activity)`` — sorted is-lsn positions of an
      activity (answers atomic patterns in output time);
    * ``record_at(wid, is_lsn)`` — direct record access (answers the
      consecutive operator's ``last+1`` probe in O(1));
    * occurrence counts for cardinality estimation.

    Records must be added in ascending ``lsn`` order.  An optional
    ``metrics`` registry receives the ``index.*`` family (records added,
    bulk-build seconds, instance/activity gauges).
    """

    def __init__(
        self,
        records: Iterable[LogRecord] = (),
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self._positions: dict[tuple[int, str], list[int]] = {}
        self._by_pos: dict[tuple[int, int], LogRecord] = {}
        self._instance_len: dict[int, int] = {}
        self._count: dict[str, int] = {}
        self._last_lsn = 0
        self.metrics = metrics
        started = perf_counter()
        added = 0
        for record in records:
            self.add(record)
            added += 1
        if added and metrics is not None:
            metrics.histogram("index.build_seconds").observe(perf_counter() - started)
        if added:
            logger.debug(
                "built index over %d records in %.3fms",
                added,
                (perf_counter() - started) * 1e3,
            )

    @classmethod
    def from_log(
        cls, log: Log, *, metrics: MetricsRegistry | None = None
    ) -> "LogIndex":
        return cls(log.records, metrics=metrics)

    @classmethod
    def from_view(
        cls, view: LogView, *, metrics: MetricsRegistry | None = None
    ) -> "LogIndex":
        """Build from any :class:`~repro.core.view.LogView` — the
        object-row :class:`~repro.core.model.Log`, a
        :class:`~repro.columnar.ColumnarLog`, or any other implementation
        of the read protocol.  ``records()`` is lsn-ordered by contract,
        which is exactly the arrival order :meth:`add` requires."""
        return cls(view.records(), metrics=metrics)

    def add(self, record: LogRecord) -> None:
        """Index one record (must arrive in ascending lsn order)."""
        if record.lsn <= self._last_lsn:
            raise ValueError(
                f"records must be added in ascending lsn order "
                f"(got {record.lsn} after {self._last_lsn})"
            )
        self._last_lsn = record.lsn
        self._positions.setdefault((record.wid, record.activity), []).append(
            record.is_lsn
        )
        self._by_pos[(record.wid, record.is_lsn)] = record
        self._instance_len[record.wid] = max(
            self._instance_len.get(record.wid, 0), record.is_lsn
        )
        self._count[record.activity] = self._count.get(record.activity, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("index.records_added").inc()
            self.metrics.gauge("index.instances").set(len(self._instance_len))
            self.metrics.gauge("index.activities").set(len(self._count))

    # -- lookups -----------------------------------------------------------

    def positions(self, wid: int, activity: str) -> list[int]:
        """Sorted is-lsn positions of ``activity`` within ``wid``."""
        return list(self._positions.get((wid, activity), ()))

    def record_at(self, wid: int, is_lsn: int) -> LogRecord | None:
        """The record at a given instance position, if any."""
        return self._by_pos.get((wid, is_lsn))

    def first_occurrence(self, wid: int, activity: str) -> int | None:
        """Smallest is-lsn of ``activity`` in ``wid``, or None."""
        positions = self._positions.get((wid, activity))
        return positions[0] if positions else None

    def last_occurrence(self, wid: int, activity: str) -> int | None:
        """Largest is-lsn of ``activity`` in ``wid``, or None."""
        positions = self._positions.get((wid, activity))
        return positions[-1] if positions else None

    def occurrences_between(
        self, wid: int, activity: str, low: int, high: int
    ) -> list[int]:
        """Positions of ``activity`` in ``wid`` with ``low <= pos <= high``."""
        positions = self._positions.get((wid, activity), [])
        return positions[bisect_left(positions, low) : bisect_right(positions, high)]

    def directly_follows(self, wid: int, first: str, then: str) -> int:
        """Number of positions where ``then`` immediately follows
        ``first`` within instance ``wid``."""
        count = 0
        for position in self._positions.get((wid, first), ()):
            successor = self._by_pos.get((wid, position + 1))
            if successor is not None and successor.activity == then:
                count += 1
        return count

    def instance_length(self, wid: int) -> int:
        """Number of records of instance ``wid``."""
        return self._instance_len.get(wid, 0)

    def wid_record_counts(self) -> dict[int, int]:
        """Per-instance record counts (the largest is-lsn seen per wid).

        Exposed for the :mod:`repro.exec` shard planner, which balances
        shards on these sizes without touching the records themselves.
        """
        return dict(self._instance_len)

    def activity_count(self, activity: str) -> int:
        """Global occurrence count of ``activity``."""
        return self._count.get(activity, 0)

    @property
    def wids(self) -> tuple[int, ...]:
        return tuple(sorted(self._instance_len))

    @property
    def activities(self) -> frozenset[str]:
        return frozenset(self._count)

    def __len__(self) -> int:
        return sum(self._instance_len.values())

    def __repr__(self) -> str:
        return (
            f"LogIndex({len(self)} records, {len(self._instance_len)} instances, "
            f"{len(self._count)} activities)"
        )

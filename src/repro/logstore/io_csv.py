"""CSV serialization of workflow logs.

Columns match the log table of the paper's Figure 3: ``lsn, wid, is_lsn,
activity, attrs_in, attrs_out``, with the attribute maps JSON-encoded in
their cells (CSV cannot nest).  Useful for spreadsheet inspection and for
loading into external warehouse tools.
"""

from __future__ import annotations

import csv
import json
from os import PathLike
from pathlib import Path
from typing import IO, Union

from repro.core.errors import LogStoreError
from repro.core.model import Log, LogRecord

__all__ = ["write_csv", "read_csv", "CSV_COLUMNS"]

CSV_COLUMNS = ("lsn", "wid", "is_lsn", "activity", "attrs_in", "attrs_out")

PathOrIO = Union[str, PathLike, IO[str]]


def write_csv(log: Log, target: PathOrIO) -> None:
    """Write ``log`` as CSV with a header row."""
    if hasattr(target, "write"):
        _write(log, target)
    else:
        with open(Path(target), "w", encoding="utf-8", newline="") as handle:
            _write(log, handle)


def _write(log: Log, handle: IO[str]) -> None:
    writer = csv.writer(handle)
    writer.writerow(CSV_COLUMNS)
    for record in log:
        writer.writerow(
            [
                record.lsn,
                record.wid,
                record.is_lsn,
                record.activity,
                json.dumps(dict(record.attrs_in), sort_keys=True),
                json.dumps(dict(record.attrs_out), sort_keys=True),
            ]
        )


def read_csv(source: PathOrIO, *, validate: bool = True) -> Log:
    """Read a log from CSV produced by :func:`write_csv`."""
    if hasattr(source, "read"):
        return _read(source, validate)
    with open(Path(source), encoding="utf-8", newline="") as handle:
        return _read(handle, validate)


def _read(handle: IO[str], validate: bool) -> Log:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise LogStoreError("CSV input is empty") from None
    if tuple(h.strip() for h in header) != CSV_COLUMNS:
        raise LogStoreError(
            f"unexpected CSV header {header!r}; expected {list(CSV_COLUMNS)}"
        )
    records = []
    for row_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(CSV_COLUMNS):
            raise LogStoreError(
                f"CSV row {row_number} has {len(row)} cells, expected "
                f"{len(CSV_COLUMNS)}"
            )
        try:
            records.append(
                LogRecord(
                    lsn=int(row[0]),
                    wid=int(row[1]),
                    is_lsn=int(row[2]),
                    activity=row[3],
                    attrs_in=json.loads(row[4]) if row[4] else {},
                    attrs_out=json.loads(row[5]) if row[5] else {},
                )
            )
        except (ValueError, json.JSONDecodeError) as exc:
            raise LogStoreError(f"malformed CSV row {row_number}: {exc}") from exc
    if not records:
        raise LogStoreError("CSV input contains no records")
    return Log(records, validate=validate)

"""Text rendering of logs, traces and incidents.

Terminal-friendly views used by the CLI's ``show`` subcommand and by the
examples:

* :func:`render_instance` — one instance's trace as a numbered timeline,
  optionally highlighting the records of given incidents;
* :func:`render_log_table` — the Figure 3-style table of a log segment;
* :func:`render_swimlanes` — all instances side by side against global
  log positions, showing the interleaving;
* :func:`dfg_to_dot` — the directly-follows graph as Graphviz DOT text
  (renderable outside this environment).
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.core.incident import Incident
from repro.core.model import Log
from repro.logstore.stats import directly_follows_graph

__all__ = [
    "render_instance",
    "render_log_table",
    "render_swimlanes",
    "dfg_to_dot",
]


def render_instance(
    log: Log,
    wid: int,
    *,
    incidents: Iterable[Incident] = (),
    marker: str = "<<",
) -> str:
    """One instance's trace, one record per line, marking incident
    members.

    >>> print(render_instance(log, 2, incidents=q.run(log)))  # doctest: +SKIP
      1  START
      2  GetRefer
      ...
      5  UpdateRefer        << [1]
    """
    members: dict[int, list[int]] = {}
    for index, incident in enumerate(incidents, start=1):
        if incident.wid != wid:
            continue
        for record in incident:
            members.setdefault(record.lsn, []).append(index)
    lines = []
    for record in log.instance(wid):
        tags = members.get(record.lsn)
        suffix = (
            f"  {marker} {sorted(tags)}" if tags else ""
        )
        lines.append(f"  {record.is_lsn:>3}  {record.activity}{suffix}")
    if not lines:
        return f"  (no records for instance {wid})"
    return "\n".join(lines)


def render_log_table(
    log: Log,
    *,
    start: int = 1,
    limit: int = 25,
    with_attributes: bool = False,
) -> str:
    """A Figure 3-style table of the log records ``start .. start+limit``."""
    if limit < 1:
        raise ValueError("limit must be >= 1")
    header = f"{'lsn':>5} {'wid':>4} {'is-lsn':>6}  activity"
    if with_attributes:
        header += "  αin / αout"
    lines = [header]
    shown = 0
    for record in log:
        if record.lsn < start:
            continue
        if shown >= limit:
            lines.append(f"  ... ({len(log) - record.lsn + 1} more records)")
            break
        row = (
            f"{record.lsn:>5} {record.wid:>4} {record.is_lsn:>6}  "
            f"{record.activity}"
        )
        if with_attributes and (record.attrs_in or record.attrs_out):
            row += (
                f"  {json.dumps(dict(record.attrs_in), sort_keys=True)}"
                f" / {json.dumps(dict(record.attrs_out), sort_keys=True)}"
            )
        lines.append(row)
        shown += 1
    return "\n".join(lines)


def render_swimlanes(log: Log, *, width: int = 78) -> str:
    """Instances as swimlanes over global positions; each cell is the
    first letter of the activity (sentinels: ``>`` start, ``.`` end)."""
    lanes = []
    positions = min(len(log), max(width - 8, 8))
    for wid in log.wids:
        cells = [" "] * positions
        for record in log.instance(wid):
            if record.lsn > positions:
                break
            if record.is_start:
                glyph = ">"
            elif record.is_end:
                glyph = "."
            else:
                glyph = record.activity[0]
            cells[record.lsn - 1] = glyph
        lanes.append(f"wid{wid:>3} |" + "".join(cells))
    clipped = "" if positions >= len(log) else f"  (first {positions} of {len(log)} positions)"
    return "\n".join(lanes) + clipped


def dfg_to_dot(log: Log, *, include_sentinels: bool = False) -> str:
    """The directly-follows graph as Graphviz DOT (edge labels carry
    counts; pen width scales with relative frequency)."""
    graph = directly_follows_graph(log, include_sentinels=include_sentinels)
    if graph.number_of_edges() == 0:
        return "digraph dfg {\n}\n"
    heaviest = max(data["count"] for __, ___, data in graph.edges(data=True))
    lines = ["digraph dfg {", "  rankdir=LR;", "  node [shape=box];"]
    for name in sorted(graph.nodes):
        lines.append(f'  "{name}";')
    for source, target, data in sorted(graph.edges(data=True)):
        weight = data["count"]
        pen = 1.0 + 3.0 * weight / heaviest
        lines.append(
            f'  "{source}" -> "{target}" '
            f'[label="{weight}", penwidth={pen:.2f}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"

"""Descriptive statistics over workflow logs.

Provides the :class:`LogSummary` report the CLI prints, plus the
*directly-follows graph* (the standard process-mining abstraction: an edge
``a → b`` weighted by how often ``b`` immediately follows ``a`` within an
instance), exported as a :mod:`networkx` digraph for downstream analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.model import Log

__all__ = ["LogSummary", "summarize", "directly_follows_graph", "variant_counts"]


@dataclass(frozen=True)
class LogSummary:
    """Aggregate statistics of one log."""

    total_records: int
    instance_count: int
    completed_instances: int
    activity_counts: Counter = field(default_factory=Counter)
    length_min: int = 0
    length_median: float = 0.0
    length_p95: float = 0.0
    length_max: int = 0
    attribute_names: frozenset[str] = frozenset()

    def format(self) -> str:
        """Multi-line human-readable report (used by ``repro-logs stats``)."""
        lines = [
            f"records            : {self.total_records}",
            f"instances          : {self.instance_count} "
            f"({self.completed_instances} completed)",
            f"instance length    : min {self.length_min} / median "
            f"{self.length_median:g} / p95 {self.length_p95:g} / max "
            f"{self.length_max}",
            f"distinct activities: {len(self.activity_counts)}",
            f"attributes         : {len(self.attribute_names)}",
            "top activities:",
        ]
        for name, count in self.activity_counts.most_common(10):
            lines.append(f"  {name:<24} {count}")
        return "\n".join(lines)


def summarize(log: Log) -> LogSummary:
    """Collect a :class:`LogSummary` in one pass over ``log``."""
    activity_counts: Counter = Counter()
    attributes: set[str] = set()
    for record in log:
        activity_counts[record.activity] += 1
        attributes.update(record.attrs_in)
        attributes.update(record.attrs_out)
    lengths = np.array([len(log.instance(w)) for w in log.wids])
    completed = sum(1 for w in log.wids if log.is_complete(w))
    return LogSummary(
        total_records=len(log),
        instance_count=len(log.wids),
        completed_instances=completed,
        activity_counts=activity_counts,
        length_min=int(lengths.min()),
        length_median=float(np.median(lengths)),
        length_p95=float(np.percentile(lengths, 95)),
        length_max=int(lengths.max()),
        attribute_names=frozenset(attributes),
    )


def directly_follows_graph(log: Log, *, include_sentinels: bool = False) -> nx.DiGraph:
    """The directly-follows graph of ``log``.

    Nodes are activity names; edge ``(a, b)`` has attribute ``count`` = the
    number of times ``b`` immediately follows ``a`` within an instance.
    ``START``/``END`` sentinels are dropped unless requested.
    """
    graph = nx.DiGraph()
    for wid in log.wids:
        trace = log.instance(wid)
        if not include_sentinels:
            trace = tuple(r for r in trace if not r.is_sentinel)
        for earlier, later in zip(trace, trace[1:]):
            if graph.has_edge(earlier.activity, later.activity):
                graph[earlier.activity][later.activity]["count"] += 1
            else:
                graph.add_edge(earlier.activity, later.activity, count=1)
    return graph


def variant_counts(log: Log, *, include_sentinels: bool = False) -> Counter:
    """Histogram of trace *variants* (distinct activity sequences).

    Process-mining tools report variants to show behaviour diversity; the
    counter maps each activity-name tuple to its number of instances.
    """
    variants: Counter = Counter()
    for wid in log.wids:
        trace = log.instance(wid)
        if not include_sentinels:
            trace = tuple(r for r in trace if not r.is_sentinel)
        variants[tuple(r.activity for r in trace)] += 1
    return variants

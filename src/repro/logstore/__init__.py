"""Log storage, serialization, indexing, statistics and validation.

The paper notes there is "no standard structure for workflow logs"; this
package provides one concrete, production-usable realisation:

* :mod:`repro.logstore.store` — an append-only in-memory store with the
  bookkeeping (lsn / wid / is-lsn assignment) a workflow engine needs;
* :mod:`repro.logstore.io_jsonl` / :mod:`repro.logstore.io_csv` /
  :mod:`repro.logstore.io_xes` — serialization to JSON-lines, CSV and the
  XES process-mining interchange format;
* :mod:`repro.logstore.index` — standalone activity/instance indices;
* :mod:`repro.logstore.stats` — descriptive statistics and the
  directly-follows graph;
* :mod:`repro.logstore.validate` — non-throwing validation reports and
  log repair;
* :mod:`repro.logstore.transform` — filtering, slicing, projection,
  merging and anonymisation of logs.
"""

from repro.logstore.index import LogIndex
from repro.logstore.io_csv import read_csv, write_csv
from repro.logstore.io_jsonl import read_jsonl, write_jsonl
from repro.logstore.io_xes import read_xes, write_xes
from repro.logstore.render import (
    dfg_to_dot,
    render_instance,
    render_log_table,
    render_swimlanes,
)
from repro.logstore.stats import LogSummary, directly_follows_graph, summarize
from repro.logstore.store import LogStore
from repro.logstore.transform import (
    anonymize,
    filter_instances,
    merge_logs,
    project_activities,
    renumber,
    slice_lsn,
)
from repro.logstore.validate import ValidationIssue, repair_log, validation_report

__all__ = [
    "LogStore",
    "LogIndex",
    "read_jsonl",
    "write_jsonl",
    "read_csv",
    "write_csv",
    "read_xes",
    "write_xes",
    "LogSummary",
    "summarize",
    "directly_follows_graph",
    "ValidationIssue",
    "validation_report",
    "repair_log",
    "renumber",
    "filter_instances",
    "slice_lsn",
    "project_activities",
    "merge_logs",
    "anonymize",
    "render_instance",
    "render_log_table",
    "render_swimlanes",
    "dfg_to_dot",
]

"""Append-only log store.

:class:`LogStore` owns the sequence-number bookkeeping of Definition 2:
it assigns global ``lsn`` values in arrival order, per-instance ``is_lsn``
values consecutively, writes the ``START`` sentinel when an instance is
opened and the ``END`` sentinel when it is closed, and refuses appends to
closed instances.  Logs snapshotted from a store are therefore well-formed
by construction.

Example
-------
>>> store = LogStore()
>>> w = store.open_instance()
>>> _ = store.append(w, "GetRefer", attrs_out={"balance": 1000})
>>> _ = store.append(w, "CheckIn", attrs_in={"balance": 1000})
>>> store.close_instance(w)
>>> [r.activity for r in store.snapshot()]
['START', 'GetRefer', 'CheckIn', 'END']
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING
from uuid import uuid4

from repro.core.errors import LogStoreError
from repro.core.model import END, START, AttrMap, Log, LogRecord
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columnar.column_log import ColumnarLog

__all__ = ["LogStore"]

logger = get_logger("logstore.store")


class LogStore:
    """In-memory append-only workflow log.

    The store is the write-side companion of the read-only
    :class:`~repro.core.model.Log`: workflow engines (or adapters tailing
    a real system) push records in, queries run over snapshots.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving the
        ``logstore.*`` counter family (records appended, instances
        opened/closed, snapshots taken).
    """

    def __init__(self, *, metrics: MetricsRegistry | None = None) -> None:
        self._records: list[LogRecord] = []
        self._next_is_lsn: dict[int, int] = {}
        self._closed: set[int] = set()
        self._next_wid = 1
        self._epoch = 0
        self._lineage = f"logstore:{uuid4().hex}"
        self._columnar: "ColumnarLog | None" = None
        self.metrics = metrics

    @property
    def epoch(self) -> int:
        """Append epoch: bumped once per appended record (sentinels
        included).  Snapshots are stamped with the epoch they were taken
        at, which is what lets the :mod:`repro.cache` result cache
        invalidate precisely on appends."""
        return self._epoch

    @property
    def lineage(self) -> str:
        """Unique identity token of this store instance.  Two snapshots
        share cache state only when their lineage matches."""
        return self._lineage

    # -- instance lifecycle ----------------------------------------------

    def open_instance(self, wid: int | None = None) -> int:
        """Start a new workflow instance and write its ``START`` record.

        Returns the instance id (auto-assigned when ``wid`` is None).
        """
        if wid is None:
            wid = self._next_wid
        if wid in self._next_is_lsn:
            raise LogStoreError(f"instance {wid} is already open")
        if wid < 1:
            raise LogStoreError("wid must be a positive integer")
        self._next_wid = max(self._next_wid, wid + 1)
        self._next_is_lsn[wid] = 1
        self._append_raw(wid, START)
        if self.metrics is not None:
            self.metrics.counter("logstore.instances_opened").inc()
        logger.debug("opened instance %d", wid)
        return wid

    def close_instance(self, wid: int) -> LogRecord:
        """Write the instance's ``END`` record; further appends fail."""
        record = self._append_raw(wid, END)
        self._closed.add(wid)
        if self.metrics is not None:
            self.metrics.counter("logstore.instances_closed").inc()
        logger.debug("closed instance %d at lsn %d", wid, record.lsn)
        return record

    def is_open(self, wid: int) -> bool:
        """Whether the instance exists and has not been closed."""
        return wid in self._next_is_lsn and wid not in self._closed

    # -- appending ---------------------------------------------------------

    def append(
        self,
        wid: int,
        activity: str,
        *,
        attrs_in: AttrMap | None = None,
        attrs_out: AttrMap | None = None,
    ) -> LogRecord:
        """Record the execution of ``activity`` in instance ``wid``."""
        if activity in (START, END):
            raise LogStoreError(
                f"{activity} records are written by open/close_instance"
            )
        return self._append_raw(wid, activity, attrs_in, attrs_out)

    def _append_raw(
        self,
        wid: int,
        activity: str,
        attrs_in: AttrMap | None = None,
        attrs_out: AttrMap | None = None,
    ) -> LogRecord:
        if wid not in self._next_is_lsn:
            raise LogStoreError(f"unknown instance {wid}; call open_instance first")
        if wid in self._closed:
            raise LogStoreError(f"instance {wid} is closed")
        record = LogRecord(
            lsn=len(self._records) + 1,
            wid=wid,
            is_lsn=self._next_is_lsn[wid],
            activity=activity,
            attrs_in=attrs_in,
            attrs_out=attrs_out,
        )
        self._records.append(record)
        self._next_is_lsn[wid] += 1
        self._epoch += 1
        if self.metrics is not None:
            self.metrics.counter("logstore.records_appended").inc()
        return record

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    @property
    def open_instances(self) -> tuple[int, ...]:
        """Instance ids that are open (no ``END`` yet)."""
        return tuple(sorted(set(self._next_is_lsn) - self._closed))

    def tail(self, n: int = 10) -> tuple[LogRecord, ...]:
        """The last ``n`` records."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return tuple(self._records[-n:]) if n else ()

    def snapshot(self) -> Log:
        """An immutable, validated :class:`~repro.core.model.Log` of the
        current contents.  Queries run over snapshots; the store can keep
        appending afterwards."""
        if not self._records:
            raise LogStoreError("cannot snapshot an empty store")
        if self.metrics is not None:
            self.metrics.counter("logstore.snapshots").inc()
        logger.debug(
            "snapshot: %d records / %d instances",
            len(self._records),
            len(self._next_is_lsn),
        )
        return Log(
            self._records,
            epoch=self._epoch,
            lineage=self._lineage,
            snapshot=True,
        )

    def columnar(self) -> "ColumnarLog":
        """The columnar form of the current contents, cached per epoch.

        The first call after any append builds a fresh validated snapshot
        and its :class:`~repro.columnar.ColumnarLog`; subsequent calls at
        the same epoch return the cached view (the store's epoch advances
        with every record, so staleness is impossible).  This is the
        store-side entry point the vectorized and sqlite backends use to
        amortise the columnar build across queries.
        """
        cached = self._columnar
        if cached is not None and cached.epoch == self._epoch:
            return cached
        if self.metrics is not None:
            self.metrics.counter("logstore.columnar_builds").inc()
        self._columnar = self.snapshot().columnar()
        return self._columnar

    def wid_record_counts(self) -> dict[int, int]:
        """Per-instance record counts, in one pass over the store.

        This is the size statistic the :mod:`repro.exec` shard planner
        balances on; it deliberately avoids building a full
        :meth:`snapshot` first.
        """
        counts: dict[int, int] = {}
        for record in self._records:
            counts[record.wid] = counts.get(record.wid, 0) + 1
        return counts

    def extract(self, wids: Iterable[int]) -> Log:
        """A wid-projection of the store's current contents.

        Unlike :meth:`snapshot`, this never materialises (or validates)
        the whole log: records of other instances are filtered out in one
        pass and the kept record objects are shared, not copied.  The
        original ``lsn`` values are preserved, so incident identities in
        the extracted log match those in the full snapshot (see
        :meth:`repro.core.model.Log.project`).
        """
        keep = set(wids)
        return Log(
            (r for r in self._records if r.wid in keep),
            validate=False,
            epoch=self._epoch,
            lineage=self._lineage,
            snapshot=False,
        )

    @classmethod
    def from_log(cls, log: Log) -> "LogStore":
        """Seed a store with an existing log's records (for appending to a
        loaded log)."""
        store = cls()
        store._records = list(log.records)
        store._epoch = len(store._records)
        for record in store._records:
            store._next_is_lsn[record.wid] = max(
                store._next_is_lsn.get(record.wid, 1), record.is_lsn + 1
            )
            if record.is_end:
                store._closed.add(record.wid)
            store._next_wid = max(store._next_wid, record.wid + 1)
        return store

    def __repr__(self) -> str:
        return (
            f"LogStore({len(self._records)} records, "
            f"{len(self._next_is_lsn)} instances, "
            f"{len(self.open_instances)} open)"
        )

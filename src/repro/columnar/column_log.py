"""Immutable columnar representation of a workflow log.

:class:`ColumnarLog` stores one :class:`~repro.core.model.Log` as four
contiguous integer columns plus two interning dictionaries:

* ``lsn``, ``wid_id``, ``is_lsn``, ``act_id`` — ``array('q')`` columns,
  one entry per record, exposed as read-only :class:`memoryview`\\ s;
* the *wid dictionary* — sorted distinct wids; ``wid_id`` holds the
  index of each record's wid in that list;
* the *activity dictionary* — sorted distinct activity names; ``act_id``
  holds the index of each record's activity.

Rows are ordered by ``(wid ascending, is_lsn ascending)``, so every
workflow instance occupies one contiguous row range ``[starts[i],
starts[i+1])``.  Engines operating set-at-a-time (the vectorized engine,
the sqlite pushdown backend) slice per-wid column windows instead of
walking object records; a per-activity row index (ascending row numbers
per ``act_id``) gives the bitmap-filter equivalent of
``Log.with_activity``.

The representation is *derived*, never primary: it keeps a reference to
its source :class:`Log` (for attribute-guarded predicates that need the
full record objects) and :meth:`to_log` reconstructs an equal log from
the source rows.  Provenance (``epoch``/``lineage``/``is_snapshot``/
``fingerprint``) delegates to the source so cache identity is unchanged.
Construction is cached per :class:`Log` (via ``Log.columnar()``) and per
store epoch (via ``LogStore.columnar()``).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections.abc import Iterator

from repro.core.model import Log, LogRecord
from repro.core.view import ActivitySet, RecordsView

__all__ = ["ColumnarLog", "as_columnar"]


class ColumnarLog:
    """Columnar, interned view of one immutable log (see module docs).

    Satisfies the :class:`~repro.core.view.LogView` protocol: engines that
    consume ``LogView`` accept a :class:`ColumnarLog` wherever they accept
    a :class:`~repro.core.model.Log`.
    """

    __slots__ = (
        "_source",
        "_rows",
        "_lsn",
        "_wid_id",
        "_is_lsn",
        "_act_id",
        "_wid_values",
        "_starts",
        "_act_names",
        "_act_index",
        "_act_rows",
        "_by_wid_rows",
        "_records_view",
        "_leaf_spans",
    )

    def __init__(self, source: Log, *, _trusted: bool = False):
        if not _trusted:
            raise TypeError(
                "use ColumnarLog.from_log(log) (or log.columnar()) instead of "
                "constructing ColumnarLog directly"
            )
        self._source = source
        # Rows grouped per instance: (wid asc, is_lsn asc).  Within one wid
        # is_lsn order equals lsn order (Definition 2, condition 3), so each
        # instance window is ascending in every column.
        rows: list[LogRecord] = []
        wid_values = array("q")
        starts = array("q", [0])
        for w in source.wids:
            wid_values.append(w)
            rows.extend(source.instance(w))
            starts.append(len(rows))
        self._rows: tuple[LogRecord, ...] = tuple(rows)
        self._wid_values = wid_values
        self._starts = starts

        act_names = tuple(sorted(source.activities))
        act_index = {name: i for i, name in enumerate(act_names)}
        self._act_names = act_names
        self._act_index = act_index

        n = len(rows)
        lsn_col = array("q", bytes(8 * n))
        wid_col = array("q", bytes(8 * n))
        isl_col = array("q", bytes(8 * n))
        act_col = array("q", bytes(8 * n))
        act_rows: tuple[array, ...] = tuple(array("q") for _ in act_names)
        wid_cursor = 0
        for row, rec in enumerate(rows):
            while row >= starts[wid_cursor + 1]:
                wid_cursor += 1
            aid = act_index[rec.activity]
            lsn_col[row] = rec.lsn
            wid_col[row] = wid_cursor
            isl_col[row] = rec.is_lsn
            act_col[row] = aid
            act_rows[aid].append(row)
        self._lsn = lsn_col
        self._wid_id = wid_col
        self._is_lsn = isl_col
        self._act_id = act_col
        self._act_rows = act_rows
        self._by_wid_rows: dict[int, tuple[LogRecord, ...]] | None = None
        self._records_view: RecordsView | None = None
        self._leaf_spans: dict[int, list[list[tuple]]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_log(cls, log: Log) -> "ColumnarLog":
        """The columnar form of ``log`` (fresh; prefer ``log.columnar()``
        which caches the result on the log)."""
        return cls(log, _trusted=True)

    def to_log(self) -> Log:
        """Reconstruct an object-row :class:`Log` equal to the source.

        Rebuilds from this view's own rows (not by returning the source),
        so the round-trip property ``ColumnarLog.from_log(log).to_log() ==
        log`` genuinely exercises the columnar row set.
        """
        return Log(
            self._rows,
            validate=False,
            epoch=self._source.epoch,
            lineage=self._source.lineage,
            snapshot=self._source.is_snapshot,
        )

    @property
    def source(self) -> Log:
        """The object-row log this view was built from."""
        return self._source

    # -- LogView protocol ----------------------------------------------------

    def records(self) -> RecordsView:
        """All records in ascending ``lsn`` order (callable view, like
        ``Log.records``)."""
        view = self._records_view
        if view is None:
            view = RecordsView(sorted(self._rows, key=lambda r: r.lsn))
            self._records_view = view
        return view

    def wid_slice(self, wid_value: int) -> tuple[LogRecord, ...]:
        """The records of one instance in ``is_lsn`` order (empty when
        absent) — a zero-copy slice of the grouped row tuple."""
        i = bisect_left(self._wid_values, wid_value)
        if i == len(self._wid_values) or self._wid_values[i] != wid_value:
            return ()
        return self._rows[self._starts[i]:self._starts[i + 1]]

    def instance(self, wid_value: int) -> tuple[LogRecord, ...]:
        """Alias of :meth:`wid_slice` (``Log``-compat name)."""
        return self.wid_slice(wid_value)

    def activities(self) -> ActivitySet:
        """The set of activity names occurring in the log."""
        return ActivitySet(self._act_names)

    @property
    def wids(self) -> tuple[int, ...]:
        """All workflow instance ids, sorted ascending."""
        return tuple(self._wid_values)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return (
            f"ColumnarLog({len(self._rows)} rows, "
            f"{len(self._wid_values)} instances, "
            f"{len(self._act_names)} activities, {self.nbytes} column bytes)"
        )

    # -- provenance (cache identity delegates to the source log) -------------

    @property
    def epoch(self) -> int:
        return self._source.epoch

    @property
    def lineage(self) -> str | None:
        return self._source.lineage

    @property
    def is_snapshot(self) -> bool:
        return self._source.is_snapshot

    @property
    def fingerprint(self) -> str:
        return self._source.fingerprint

    # -- columns -------------------------------------------------------------

    @property
    def lsn_col(self) -> memoryview:
        """Read-only ``lsn`` column (row order: wid asc, is_lsn asc)."""
        return memoryview(self._lsn).toreadonly()

    @property
    def wid_id_col(self) -> memoryview:
        """Read-only interned-wid column."""
        return memoryview(self._wid_id).toreadonly()

    @property
    def is_lsn_col(self) -> memoryview:
        """Read-only ``is_lsn`` column."""
        return memoryview(self._is_lsn).toreadonly()

    @property
    def act_id_col(self) -> memoryview:
        """Read-only interned-activity column."""
        return memoryview(self._act_id).toreadonly()

    @property
    def nbytes(self) -> int:
        """Total bytes held by the four integer columns."""
        return sum(
            col.itemsize * len(col)
            for col in (self._lsn, self._wid_id, self._is_lsn, self._act_id)
        )

    # -- dictionaries and indexes --------------------------------------------

    @property
    def act_names(self) -> tuple[str, ...]:
        """The interned activity dictionary (sorted ascending)."""
        return self._act_names

    def act_id_of(self, activity: str) -> int | None:
        """Interned id of ``activity``, or None when it never occurs."""
        return self._act_index.get(activity)

    def act_name_of(self, act_id: int) -> str:
        """Inverse of :meth:`act_id_of`."""
        return self._act_names[act_id]

    def wid_of(self, wid_id: int) -> int:
        """The wid interned as ``wid_id``."""
        return self._wid_values[wid_id]

    def wid_range(self, wid_value: int) -> tuple[int, int]:
        """The contiguous row range ``[lo, hi)`` of one instance
        (``(0, 0)`` when absent)."""
        i = bisect_left(self._wid_values, wid_value)
        if i == len(self._wid_values) or self._wid_values[i] != wid_value:
            return (0, 0)
        return (self._starts[i], self._starts[i + 1])

    def wid_windows(self) -> Iterator[tuple[int, int, int]]:
        """``(wid, lo, hi)`` per instance in wid order — the engines' scan
        loop, read straight off the offsets array (no per-wid bisect)."""
        starts = self._starts
        for i, wid in enumerate(self._wid_values):
            yield wid, starts[i], starts[i + 1]

    def act_rows(self, act_id: int, lo: int = 0, hi: int | None = None) -> array:
        """Ascending row numbers of records with activity ``act_id``,
        optionally clipped to the window ``[lo, hi)`` — the columnar
        analogue of ``Log.with_activity`` restricted to one instance."""
        rows = self._act_rows[act_id]
        if lo == 0 and (hi is None or hi >= len(self._rows)):
            return rows
        left = bisect_left(rows, lo)
        right = bisect_right(rows, hi - 1, left) if hi is not None else len(rows)
        return rows[left:right]

    def leaf_spans(self, act_id: int) -> list[list[tuple]]:
        """Per-instance-window leaf incidents of one activity, as the
        vectorized engine's ``(first, last, positions)`` tuples, indexed
        by window number (the position of the wid in :attr:`wids`).

        These are invariant for a given columnar log, so they are built
        once per activity and cached — positive leaves become lookups.
        The cached lists are shared: callers must treat them as
        immutable.
        """
        spans = self._leaf_spans.get(act_id)
        if spans is None:
            spans = [[] for _ in self._wid_values]
            starts = self._starts
            wi = 0
            for row in self._act_rows[act_id]:
                while row >= starts[wi + 1]:
                    wi += 1
                p = row - starts[wi] + 1
                spans[wi].append((p, p, frozenset((p,))))
            self._leaf_spans[act_id] = spans
        return spans

    def row_record(self, row: int) -> LogRecord:
        """The record object at columnar row ``row``."""
        return self._rows[row]

    def with_activity(self, activity: str) -> tuple[LogRecord, ...]:
        """All records with the given activity, in lsn order
        (``Log``-compat name, used by the counting evaluator)."""
        aid = self._act_index.get(activity)
        if aid is None:
            return ()
        recs = [self._rows[row] for row in self._act_rows[aid]]
        recs.sort(key=lambda r: r.lsn)
        return tuple(recs)

    def record(self, lsn_value: int) -> LogRecord:
        """The record with log sequence number ``lsn_value``
        (``Log``-compat name)."""
        return self._source.record(lsn_value)


def as_columnar(log: "Log | ColumnarLog") -> ColumnarLog:
    """``log`` as a :class:`ColumnarLog` — passes columnar views through,
    and uses the per-log cache (``Log.columnar()``) for object logs."""
    if isinstance(log, ColumnarLog):
        return log
    return log.columnar()

"""SQL pushdown backend over the columnar schema (``backend="sqlite"``).

:mod:`repro.baselines.sql` implements the paper's Figure 1 strawman — an
ETL warehouse with one denormalised text table.  This module promotes
the idea into a first-class backend: patterns compile to self-join SQL
over a schema that *mirrors the columnar layout* of
:class:`~repro.columnar.ColumnarLog`, so the database joins interned
integers instead of comparing activity strings:

* ``records(row, lsn, wid_id, is_lsn, act_id)`` — the four integer
  columns, bulk-loaded straight from the columnar arrays;
* ``activities(act_id, name)`` / ``instances(wid_id, wid)`` — the
  interning dictionaries, used only to decode results and to resolve
  leaf names at compile time (an unknown activity never reaches SQL).

The compiler is the same operator-to-predicate mapping as the baseline
(one alias per leaf; scalar ``MIN``/``MAX`` over subtree positions for
``first``/``last``; ``⊗`` expanded branch-wise through
:func:`~repro.core.algebra.choice_normal_form`), emitting integer
``act_id`` comparisons.  Attribute-guarded leaves cannot be compiled —
the pushed-down projection has no attribute maps — and raise
:class:`~repro.core.errors.EvaluationError`; the auto dispatch therefore
never selects this backend, it must be requested
(``backend=Backend.SQLITE``).

Incident identity is reconstructed from the selected per-leaf ``lsn``
values, so results are byte-for-byte identical to the object engines.
"""

from __future__ import annotations

import sqlite3

from repro.columnar.column_log import ColumnarLog, as_columnar
from repro.core.algebra import choice_normal_form
from repro.core.errors import EvaluationError
from repro.core.eval.base import Engine
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log
from repro.core.pattern import (
    Atomic,
    BinaryPattern,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)

__all__ = ["ColumnarWarehouse", "SqliteEngine", "compile_columnar_sql"]


class ColumnarWarehouse:
    """A columnar log bulk-loaded into SQLite (see module docs)."""

    def __init__(self, columnar: ColumnarLog):
        self.columnar = columnar
        self.connection = sqlite3.connect(":memory:")
        script = """
            CREATE TABLE records (
                row    INTEGER PRIMARY KEY,
                lsn    INTEGER NOT NULL,
                wid_id INTEGER NOT NULL,
                is_lsn INTEGER NOT NULL,
                act_id INTEGER NOT NULL
            );
            CREATE TABLE activities (
                act_id INTEGER PRIMARY KEY,
                name   TEXT NOT NULL
            );
            CREATE TABLE instances (
                wid_id INTEGER PRIMARY KEY,
                wid    INTEGER NOT NULL
            );
            CREATE INDEX idx_wid_act ON records (wid_id, act_id, is_lsn);
            CREATE UNIQUE INDEX idx_wid_pos ON records (wid_id, is_lsn);
        """
        self.connection.executescript(script)
        n = len(columnar)
        self.connection.executemany(
            "INSERT INTO records VALUES (?, ?, ?, ?, ?)",
            zip(
                range(n),
                columnar._lsn,
                columnar._wid_id,
                columnar._is_lsn,
                columnar._act_id,
            ),
        )
        self.connection.executemany(
            "INSERT INTO activities VALUES (?, ?)",
            enumerate(columnar.act_names),
        )
        self.connection.executemany(
            "INSERT INTO instances VALUES (?, ?)",
            enumerate(columnar.wids),
        )
        self.connection.commit()

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "ColumnarWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- query execution -----------------------------------------------------

    def branch_queries(self, pattern: Pattern) -> list[str]:
        """One integer-predicate SELECT per choice-free branch."""
        return compile_columnar_sql(pattern, self.columnar)

    def incidents(self, pattern: Pattern) -> IncidentSet:
        """Evaluate ``pattern`` through SQL and return its incident set."""
        found: set[frozenset[int]] = set()
        for sql in self.branch_queries(pattern):
            for row in self.connection.execute(sql):
                found.add(frozenset(row))
        record = self.columnar.record
        return IncidentSet(
            Incident(record(lsn) for lsn in lsns) for lsns in found
        )

    def exists(self, pattern: Pattern) -> bool:
        """EXISTS-style evaluation with LIMIT 1 per branch."""
        for sql in self.branch_queries(pattern):
            cursor = self.connection.execute(f"{sql} LIMIT 1")
            if cursor.fetchone() is not None:
                return True
        return False


def _scalar_min(columns: list[str]) -> str:
    return columns[0] if len(columns) == 1 else f"MIN({', '.join(columns)})"


def _scalar_max(columns: list[str]) -> str:
    return columns[0] if len(columns) == 1 else f"MAX({', '.join(columns)})"


def _compile_branch(pattern: Pattern, columnar: ColumnarLog) -> str:
    """One choice-free branch → one self-join SELECT over interned ids."""
    aliases: list[str] = []
    predicates: list[str] = []

    def leaf_positions(node: Pattern) -> list[str]:
        """Compile ``node``; returns the is-lsn column list of its leaves."""
        if isinstance(node, Atomic):
            if type(node) is not Atomic:
                # attribute-guarded leaves need the attribute maps, which
                # the pushed-down projection deliberately omits
                raise EvaluationError(
                    "the sqlite pushdown schema has no attribute maps; "
                    f"cannot compile leaf {node!r} — use an in-process engine"
                )
            alias = f"r{len(aliases)}"
            aliases.append(alias)
            act_id = columnar.act_id_of(node.name)
            if act_id is None:
                if not node.negated:
                    # positive leaf on an activity absent from the log:
                    # the branch is unsatisfiable
                    predicates.append("0 = 1")
                # negated leaf on an absent activity matches every record —
                # no activity predicate at all
            else:
                comparison = "!=" if node.negated else "="
                predicates.append(f"{alias}.act_id {comparison} {act_id}")
            if aliases[0] != alias:
                predicates.append(f"{alias}.wid_id = {aliases[0]}.wid_id")
            return [f"{alias}.is_lsn"]
        assert isinstance(node, BinaryPattern)
        left_columns = leaf_positions(node.left)
        right_columns = leaf_positions(node.right)
        if isinstance(node, Consecutive):
            predicates.append(
                f"{_scalar_max(left_columns)} + 1 = {_scalar_min(right_columns)}"
            )
        elif isinstance(node, Sequential):
            predicates.append(
                f"{_scalar_max(left_columns)} < {_scalar_min(right_columns)}"
            )
            window = getattr(node, "bound", None)
            if window is not None:
                predicates.append(
                    f"{_scalar_min(right_columns)} <= "
                    f"{_scalar_max(left_columns)} + {int(window)}"
                )
        elif isinstance(node, Parallel):
            for left_column in left_columns:
                for right_column in right_columns:
                    predicates.append(f"{left_column} != {right_column}")
        else:  # pragma: no cover - choices were expanded away
            raise EvaluationError("unexpected choice in a compiled branch")
        return left_columns + right_columns

    leaf_positions(pattern)
    sql = (
        "SELECT "
        + ", ".join(f"{alias}.lsn" for alias in aliases)
        + " FROM "
        + ", ".join(f"records {alias}" for alias in aliases)
    )
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql


def compile_columnar_sql(pattern: Pattern, columnar: ColumnarLog) -> list[str]:
    """Compile ``pattern`` into one SELECT per choice-free branch, with
    activity names resolved to interned ``act_id`` integers up front.

    Each result row is one incident: the ``lsn`` matched by each leaf.
    Rows may repeat record sets across branches — the caller deduplicates,
    as ``incL`` is a set.
    """
    return [
        _compile_branch(branch, columnar)
        for branch in choice_normal_form(pattern)
    ]


class SqliteEngine(Engine):
    """Engine facade over :class:`ColumnarWarehouse` — the engine behind
    ``backend=Backend.SQLITE``.

    The warehouse is cached per columnar view, so repeated queries over
    one log pay the bulk load once; the columnar view itself is cached on
    the log, making the cache key stable across queries.
    """

    name = "sqlite"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._cache: tuple[ColumnarLog, ColumnarWarehouse] | None = None

    def _warehouse(self, columnar: ColumnarLog) -> ColumnarWarehouse:
        cache = self._cache
        if cache is not None and cache[0] is columnar:
            return cache[1]
        if cache is not None:
            cache[1].close()
        warehouse = ColumnarWarehouse(columnar)
        self._cache = (columnar, warehouse)
        return warehouse

    def evaluate(self, log: "Log | ColumnarLog", pattern: Pattern) -> IncidentSet:
        columnar = as_columnar(log)
        stats = self._new_stats()
        with self.tracer.span(
            "evaluate", key=(), engine=self.name, pattern=str(pattern)
        ):
            warehouse = self._warehouse(columnar)
            found: set[frozenset[int]] = set()
            for branch, sql in enumerate(warehouse.branch_queries(pattern)):
                self._checkpoint(stats)
                with self.tracer.span("branch", key=branch, sql=sql):
                    for row in warehouse.connection.execute(sql):
                        found.add(frozenset(row))
            record = columnar.record
            result = IncidentSet(
                Incident(record(lsn) for lsn in lsns) for lsns in found
            )
            self._check_budget(len(result))
            stats.note_live(len(result))
            stats.incidents_produced += len(result)
        self._finish(stats)
        return result

    def exists(self, log: "Log | ColumnarLog", pattern: Pattern) -> bool:
        columnar = as_columnar(log)
        stats = self._new_stats()
        self._checkpoint(stats)
        hit = self._warehouse(columnar).exists(pattern)
        self._finish(stats)
        return hit

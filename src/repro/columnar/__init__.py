"""Columnar log core: interned, column-backed log representation and the
set-at-a-time backends built on it.

* :class:`~repro.columnar.column_log.ColumnarLog` — immutable columnar
  form of a :class:`~repro.core.model.Log` (interned dictionaries,
  ``array``-backed columns, per-wid contiguous row ranges);
* :func:`~repro.columnar.column_log.as_columnar` — coercion helper;
* :class:`~repro.columnar.sqlite.SqliteEngine` — SQL pushdown backend
  compiling patterns to SQL over a schema mirroring the columnar layout.

The vectorized pairwise engine that evaluates directly over the columns
lives with its siblings in :mod:`repro.core.eval.vectorized`.
"""

from repro.columnar.column_log import ColumnarLog, as_columnar
from repro.columnar.sqlite import ColumnarWarehouse, SqliteEngine

__all__ = ["ColumnarLog", "ColumnarWarehouse", "SqliteEngine", "as_columnar"]

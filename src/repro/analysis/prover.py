"""Decision procedures over the automaton IR: containment, equivalence,
counterexample witnesses, incident membership, canonical language keys,
and the batch subsumption planner.

All procedures reason about the *per-wid incident semantics* of
Definition 4: ``contains(p, q)`` holds iff for every well-formed log
``L``, ``incL(p) ⊆ incL(q)``.  Because incidents never span workflow
instances and the core atoms ignore attributes, this reduces to
language containment of the compiled marked-trace automata over a
single shared alphabet (see :mod:`repro.analysis.automaton`), which
also means a refutation always decodes into a *single-instance*
counterexample log — the :class:`Witness`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.automaton import (
    DEFAULT_MAX_STATES,
    DFA,
    MarkedAlphabet,
    canonical_dfa_bytes,
    compile_pattern,
    determinize,
    difference_word,
    simulate,
)
from repro.core.errors import AnalysisError
from repro.core.incident import Incident, reference_incidents
from repro.core.model import Log, LogRecord
from repro.core.pattern import Pattern, to_text

__all__ = [
    "PatternProver",
    "Witness",
    "IncidentMatcher",
    "SubsumptionPlan",
    "PlanAction",
    "plan_subsumption",
    "contains",
    "equivalent",
    "witness",
    "canonical_key",
    "default_prover",
]


@dataclass(frozen=True)
class Witness:
    """A concrete single-instance log plus incident distinguishing two
    patterns: the marked records form an incident of exactly one side.
    """

    left: Pattern
    right: Pattern
    log: Log
    incident: Incident
    in_left: bool
    in_right: bool

    def replay(self) -> bool:
        """Re-check the claim against the ground-truth recursive oracle
        (:func:`reference_incidents`) — ``True`` iff the witness really
        distinguishes the two patterns."""
        in_left = self.incident in reference_incidents(self.log, self.left)
        in_right = self.incident in reference_incidents(self.log, self.right)
        return in_left == self.in_left and in_right == self.in_right

    def format(self) -> str:
        marked = self.incident.lsns
        trace = " ".join(
            f"[{record.activity}]" if record.lsn in marked else record.activity
            for record in self.log
        )
        holder, misser = (self.left, self.right) if self.in_left else (self.right, self.left)
        return (
            f"counterexample trace (wid 1, incident bracketed): {trace}\n"
            f"  the bracketed records form an incident of {to_text(holder)!r}"
            f" but not of {to_text(misser)!r}"
        )


class IncidentMatcher:
    """Exact incident-membership test for one pattern: is a given record
    set an incident of ``p`` within its instance?  One NFA simulation,
    ``O(|trace| × states)`` — the filter used to *derive* a subsumed
    query's results from its subsumer's."""

    def __init__(
        self,
        pattern: Pattern,
        *,
        alphabet: MarkedAlphabet | None = None,
        max_states: int = DEFAULT_MAX_STATES,
    ):
        self.pattern = pattern
        self._alphabet = alphabet or MarkedAlphabet.for_patterns(pattern)
        self._nfa = compile_pattern(pattern, self._alphabet, max_states)

    def matches(self, incident: Incident, instance: Sequence[LogRecord]) -> bool:
        marked = incident.lsns
        alphabet = self._alphabet
        word = [
            alphabet.symbol(alphabet.classify(record.activity), record.lsn in marked)
            for record in instance
        ]
        return simulate(self._nfa, word)


class PatternProver:
    """Compiles patterns to DFAs (memoized per alphabet) and answers
    containment/equivalence queries, producing witnesses on refutation.
    """

    def __init__(self, *, max_states: int = DEFAULT_MAX_STATES):
        self.max_states = max_states
        self._memo: dict[tuple[Pattern, tuple[str, ...]], DFA] = {}

    def alphabet(self, *patterns: Pattern) -> MarkedAlphabet:
        return MarkedAlphabet.for_patterns(*patterns)

    def _dfa(self, pattern: Pattern, alphabet: MarkedAlphabet) -> DFA:
        key = (pattern, alphabet.names)
        cached = self._memo.get(key)
        if cached is None:
            if len(self._memo) > 1024:
                self._memo.clear()
            nfa = compile_pattern(pattern, alphabet, self.max_states)
            cached = determinize(nfa, self.max_states)
            self._memo[key] = cached
        return cached

    def _difference(
        self, p: Pattern, q: Pattern, alphabet: MarkedAlphabet
    ) -> list[int] | None:
        return difference_word(self._dfa(p, alphabet), self._dfa(q, alphabet))

    def contains(
        self, p: Pattern, q: Pattern, *, alphabet: MarkedAlphabet | None = None
    ) -> bool:
        """``p ⊑ q``: every incident of ``p`` is an incident of ``q``
        on every well-formed log."""
        alphabet = alphabet or self.alphabet(p, q)
        return self._difference(p, q, alphabet) is None

    def equivalent(self, p: Pattern, q: Pattern) -> bool:
        alphabet = self.alphabet(p, q)
        return (
            self._difference(p, q, alphabet) is None
            and self._difference(q, p, alphabet) is None
        )

    def containment_witness(
        self, p: Pattern, q: Pattern, *, alphabet: MarkedAlphabet | None = None
    ) -> Witness | None:
        """A witness refuting ``p ⊑ q``, or ``None`` when it holds."""
        alphabet = alphabet or self.alphabet(p, q)
        word = self._difference(p, q, alphabet)
        if word is None:
            return None
        return self._decode_witness(p, q, word, alphabet, in_left=True)

    def witness(self, p: Pattern, q: Pattern) -> Witness | None:
        """A witness refuting ``p ≡ q``, or ``None`` when equivalent."""
        alphabet = self.alphabet(p, q)
        word = self._difference(p, q, alphabet)
        if word is not None:
            return self._decode_witness(p, q, word, alphabet, in_left=True)
        word = self._difference(q, p, alphabet)
        if word is not None:
            return self._decode_witness(p, q, word, alphabet, in_left=False)
        return None

    def matcher(
        self, pattern: Pattern, *, alphabet: MarkedAlphabet | None = None
    ) -> IncidentMatcher:
        return IncidentMatcher(
            pattern, alphabet=alphabet, max_states=self.max_states
        )

    def canonical_key(self, pattern: Pattern) -> str:
        """A string equal for provably-equivalent patterns (over the
        same mentioned-name set): the digest of the minimal DFA in
        canonical form, prefixed by the alphabet.  Equal keys imply
        equivalence; differing name sets are conservatively distinct.
        """
        alphabet = self.alphabet(pattern)
        digest = hashlib.blake2b(
            canonical_dfa_bytes(self._dfa(pattern, alphabet)), digest_size=16
        ).hexdigest()
        return "v1:" + ",".join(alphabet.names) + ":" + digest

    def _decode_witness(
        self,
        p: Pattern,
        q: Pattern,
        word: list[int],
        alphabet: MarkedAlphabet,
        *,
        in_left: bool,
    ) -> Witness:
        records = []
        marked_positions = []
        for position, sym in enumerate(word):
            index, marked = alphabet.decode(sym)
            records.append(
                LogRecord(
                    lsn=position + 1,
                    wid=1,
                    is_lsn=position + 1,
                    activity=alphabet.activity_name(index),
                )
            )
            if marked:
                marked_positions.append(position)
        log = Log(records)  # construction re-checks Definition 2
        incident = Incident(records[i] for i in marked_positions)
        return Witness(
            left=p,
            right=q,
            log=log,
            incident=incident,
            in_left=in_left,
            in_right=not in_left,
        )


_DEFAULT_PROVER = PatternProver()


def default_prover() -> PatternProver:
    """The process-wide shared prover (its DFA memo amortises repeated
    lint/batch/cache proofs over the same patterns)."""
    return _DEFAULT_PROVER


def contains(p: Pattern, q: Pattern) -> bool:
    return _DEFAULT_PROVER.contains(p, q)


def equivalent(p: Pattern, q: Pattern) -> bool:
    return _DEFAULT_PROVER.equivalent(p, q)


def witness(p: Pattern, q: Pattern) -> Witness | None:
    return _DEFAULT_PROVER.witness(p, q)


def canonical_key(pattern: Pattern) -> str:
    return _DEFAULT_PROVER.canonical_key(pattern)


# ---------------------------------------------------------------------------
# batch subsumption planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanAction:
    """What the batch executor should do for one query position.

    ``scan``   — evaluate against the log as usual;
    ``alias``  — proved equivalent to position ``source``: share its
    result set outright;
    ``derive`` — proved strictly contained in position ``source``:
    filter the source's incidents through this pattern's matcher.
    """

    kind: str
    source: int | None = None


class SubsumptionPlan:
    """A proved evaluation plan for a batch of patterns."""

    def __init__(
        self,
        patterns: Sequence[Pattern],
        actions: Sequence[PlanAction],
        proofs: int,
        prover: PatternProver,
        alphabet: MarkedAlphabet,
    ):
        self.patterns = tuple(patterns)
        self.actions = tuple(actions)
        self.proofs = proofs
        self._prover = prover
        self._alphabet = alphabet
        self._matchers: dict[int, IncidentMatcher] = {}

    @property
    def subsumed(self) -> int:
        """Positions that skip their own log scan."""
        return sum(1 for action in self.actions if action.kind != "scan")

    def filter_incidents(
        self, index: int, incidents: Sequence[Incident], log: Log
    ) -> list[Incident]:
        """Derive position ``index``'s incidents from its subsumer's.

        Exact, not approximate: ``p ⊑ q`` means every ``p``-incident is
        a ``q``-incident, so filtering the subsumer's incidents through
        ``p``'s membership matcher yields precisely ``incL(p)``."""
        matcher = self._matchers.get(index)
        if matcher is None:
            matcher = self._prover.matcher(
                self.patterns[index], alphabet=self._alphabet
            )
            self._matchers[index] = matcher
        return [
            incident
            for incident in incidents
            if matcher.matches(incident, log.instance(incident.wid))
        ]


def plan_subsumption(
    patterns: Sequence[Pattern],
    *,
    prover: PatternProver | None = None,
    max_patterns: int = 24,
) -> SubsumptionPlan:
    """Prove containment/equivalence relations across a batch and plan
    which queries can skip their scan.

    Equivalent patterns collapse onto the first member of their class
    (``alias``); a class leader strictly contained in another leader is
    ``derive``-d from it by filtering.  Any pattern the prover cannot
    handle (budget, unsupported operator) simply stays ``scan`` — the
    planner degrades to the status quo, never fails the batch.
    """
    prover = prover or _DEFAULT_PROVER
    n = len(patterns)
    alphabet = prover.alphabet(*patterns) if patterns else MarkedAlphabet()
    if n < 2 or n > max_patterns:
        return SubsumptionPlan(
            patterns, [PlanAction("scan")] * n, 0, prover, alphabet
        )

    usable = []
    for pattern in patterns:
        try:
            prover._dfa(pattern, alphabet)
            usable.append(True)
        except AnalysisError:
            usable.append(False)

    containment: dict[tuple[int, int], bool] = {}

    def proved_contains(i: int, j: int) -> bool:
        cached = containment.get((i, j))
        if cached is None:
            try:
                cached = prover.contains(
                    patterns[i], patterns[j], alphabet=alphabet
                )
            except AnalysisError:
                cached = False
            containment[(i, j)] = cached
        return cached

    proofs = 0
    leader = list(range(n))
    for j in range(n):
        if not usable[j]:
            continue
        for i in range(j):
            if usable[i] and leader[i] == i \
                    and proved_contains(i, j) and proved_contains(j, i):
                leader[j] = i
                proofs += 1
                break

    source: list[int | None] = [None] * n
    for i in range(n):
        if leader[i] != i or not usable[i]:
            continue
        for j in range(n):
            if j == i or leader[j] != j or not usable[j]:
                continue
            if proved_contains(i, j) and not proved_contains(j, i):
                source[i] = j
                proofs += 1
                break

    actions = []
    for i in range(n):
        if leader[i] != i:
            actions.append(PlanAction("alias", leader[i]))
        elif source[i] is not None:
            actions.append(PlanAction("derive", source[i]))
        else:
            actions.append(PlanAction("scan"))
    return SubsumptionPlan(patterns, actions, proofs, prover, alphabet)

"""Canonical automaton IR for incident patterns.

This module compiles the core pattern algebra (Definition 3) to finite
automata over a *marked alphabet*, the representation underlying every
decision procedure in :mod:`repro.analysis`.  The key observation —
matching SIGNAL's expressive-power results — is that the per-instance
incident semantics of Definition 4 is regular once traces are encoded
as words that carry the incident *in* the word:

* Each letter is a pair ``(activity, marked)``: one log record of a
  single well-formed trace, with ``marked`` true iff the record belongs
  to the candidate incident.  Activities not mentioned by the patterns
  under analysis are collapsed onto a single ``OTHER`` letter — sound
  and complete because every atom treats all unmentioned names
  identically.
* ``lang(p)`` is the set of marked well-formed traces whose marked
  records form an incident of ``p``.  Two patterns are equivalent iff
  their marked languages coincide, and ``p ⊑ q`` iff ``lang(p) ⊆
  lang(q)`` — both decidable by classical automata constructions, and a
  word in the difference decodes directly into a counterexample trace
  plus incident (see :mod:`repro.analysis.prover`).

``lang`` is built by an *anchored* recursion ``A(p)`` over the pattern:
``A(p)`` accepts exactly the words whose first and last letters are
marked and whose marked letters form a ``p``-incident of the word
(unmarked letters may appear inside).  Anchoring makes the operator
cases compositional:

* ``A(t)``          = a single marked letter matching the atom;
* ``A(p1 ⊙ p2)``    = ``A(p1) · A(p2)``                (consecutive);
* ``A(p1 ⊳ p2)``    = ``A(p1) · U* · A(p2)``           (sequential);
* ``A(p1 ⊳[k] p2)`` = ``A(p1) · U^{0..k-1} · A(p2)``   (within-k window);
* ``A(p1 ⊗ p2)``    = ``A(p1) ∪ A(p2)``                (choice);
* ``A(p1 ⊕ p2)``    = first/last-anchored interleavings of
  ``U*·A(p1)·U*`` and ``U*·A(p2)·U*`` where every *marked* letter is
  attributed to exactly one side (parallel = disjoint union).

where ``U`` is the set of unmarked letters.  Finally ``lang(p) =
(U* · A(p) · U*) ∩ WF`` with ``WF`` the 3-state well-formedness DFA of
Definition 2 (``START`` first, ``END`` last-or-absent, sentinels
nowhere else).  The WF intersection is load-bearing: patterns such as
``START ⊙ START`` differ only on ill-formed traces and must not be
distinguished.

Complexity: NFA sizes are linear in pattern size except for parallel
(a product) and the final determinization (exponential worst case, per
Theorem 1's lower bound); every product and subset construction takes a
state budget and raises :class:`AnalysisBudgetError` instead of
exhausting memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.errors import AnalysisBudgetError, UnsupportedPatternError
from repro.core.model import END, START
from repro.core.pattern import (
    Atomic,
    Choice,
    Consecutive,
    Parallel,
    Pattern,
    Sequential,
)
from repro.extensions.windows import Within

__all__ = [
    "DEFAULT_MAX_STATES",
    "MarkedAlphabet",
    "NFA",
    "DFA",
    "compile_pattern",
    "determinize",
    "difference_word",
    "canonical_dfa_bytes",
    "simulate",
]

DEFAULT_MAX_STATES = 20_000


class MarkedAlphabet:
    """The finite alphabet a set of patterns is analysed over.

    Activities are the sorted mentioned names plus the two sentinels,
    plus one ``OTHER`` activity standing for every unmentioned
    non-sentinel name.  Symbols are ``2 * activity_index + marked`` so
    an automaton's transition tables are plain integer-keyed dicts.
    """

    __slots__ = ("names", "other_index", "other_name", "n_symbols", "_index")

    def __init__(self, names: Iterable[str] = ()):
        base = sorted(set(names) | {START, END})
        self.names: tuple[str, ...] = tuple(base)
        self.other_index = len(base)
        other = "other"
        while other in self._taken(base):
            other += "_"
        self.other_name = other
        self._index = {name: i for i, name in enumerate(base)}
        self.n_symbols = 2 * (len(base) + 1)

    @staticmethod
    def _taken(base: list[str]) -> set[str]:
        return set(base)

    @classmethod
    def for_patterns(cls, *patterns: Pattern) -> "MarkedAlphabet":
        names: set[str] = set()
        for pattern in patterns:
            names |= pattern.activity_names()
        return cls(names)

    @property
    def n_activities(self) -> int:
        return self.other_index + 1

    def classify(self, activity: str) -> int:
        """Map a concrete activity name onto its alphabet index."""
        return self._index.get(activity, self.other_index)

    def symbol(self, index: int, marked: bool) -> int:
        return 2 * index + (1 if marked else 0)

    def decode(self, sym: int) -> tuple[int, bool]:
        return sym // 2, bool(sym & 1)

    def activity_name(self, index: int) -> str:
        """The witness name for an alphabet index (``OTHER`` gets a
        fresh name that collides with nothing mentioned)."""
        if index == self.other_index:
            return self.other_name
        return self.names[index]

    def atom_indices(self, atom: Atomic) -> list[int]:
        """Activity indices the atom matches (Definition 4 case 1-2:
        a negated atom matches everything but its name, sentinels and
        ``OTHER`` included)."""
        if atom.negated:
            return [i for i in range(self.n_activities)
                    if self.activity_name(i) != atom.name]
        idx = self._index.get(atom.name)
        return [] if idx is None else [idx]


@dataclass(frozen=True)
class NFA:
    """An ε-free nondeterministic automaton over marked symbols."""

    n_symbols: int
    delta: tuple[dict[int, frozenset[int]], ...]
    starts: frozenset[int]
    accepts: frozenset[int]

    @property
    def n_states(self) -> int:
        return len(self.delta)


@dataclass(frozen=True)
class DFA:
    """A complete deterministic automaton (row-per-state transition
    table; the last-constructed sink makes it total)."""

    n_symbols: int
    start: int
    trans: tuple[tuple[int, ...], ...]
    accepts: frozenset[int]

    @property
    def n_states(self) -> int:
        return len(self.trans)


class _Builder:
    """Thompson-style construction surface: states, labelled edges and
    ε-edges, with ε-elimination at :meth:`build` time."""

    def __init__(self, n_symbols: int):
        self.n_symbols = n_symbols
        self._edges: list[dict[int, set[int]]] = []
        self._eps: list[set[int]] = []

    def state(self) -> int:
        self._edges.append({})
        self._eps.append(set())
        return len(self._edges) - 1

    def edge(self, src: int, sym: int, dst: int) -> None:
        self._edges[src].setdefault(sym, set()).add(dst)

    def eps(self, src: int, dst: int) -> None:
        self._eps[src].add(dst)

    def embed(self, nfa: NFA) -> list[int]:
        """Copy ``nfa``'s states/edges in; return the new state ids."""
        ids = [self.state() for _ in range(nfa.n_states)]
        for q, trans in enumerate(nfa.delta):
            for sym, targets in trans.items():
                for t in targets:
                    self.edge(ids[q], sym, ids[t])
        return ids

    def build(self, starts: Iterable[int], accepts: Iterable[int]) -> NFA:
        n = len(self._edges)
        closures: list[set[int]] = []
        for q in range(n):
            seen = {q}
            stack = [q]
            while stack:
                s = stack.pop()
                for t in self._eps[s]:
                    if t not in seen:
                        seen.add(t)
                        stack.append(t)
            closures.append(seen)
        accept_set = set(accepts)
        delta: list[dict[int, frozenset[int]]] = []
        for q in range(n):
            merged: dict[int, set[int]] = {}
            for p in closures[q]:
                for sym, targets in self._edges[p].items():
                    merged.setdefault(sym, set()).update(targets)
            delta.append({sym: frozenset(t) for sym, t in merged.items()})
        new_accepts = frozenset(
            q for q in range(n) if closures[q] & accept_set
        )
        return NFA(self.n_symbols, tuple(delta), frozenset(starts), new_accepts)


# ---------------------------------------------------------------------------
# combinators
# ---------------------------------------------------------------------------


def _union(a: NFA, b: NFA) -> NFA:
    builder = _Builder(a.n_symbols)
    ia, ib = builder.embed(a), builder.embed(b)
    return builder.build(
        [ia[s] for s in a.starts] + [ib[s] for s in b.starts],
        [ia[s] for s in a.accepts] + [ib[s] for s in b.accepts],
    )


def _concat(*parts: NFA) -> NFA:
    builder = _Builder(parts[0].n_symbols)
    ids = [builder.embed(part) for part in parts]
    for k in range(len(parts) - 1):
        for acc in parts[k].accepts:
            for start in parts[k + 1].starts:
                builder.eps(ids[k][acc], ids[k + 1][start])
    return builder.build(
        [ids[0][s] for s in parts[0].starts],
        [ids[-1][s] for s in parts[-1].accepts],
    )


def _pair_product(
    a: NFA,
    b: NFA,
    move: Callable[[int, int, int], Iterator[tuple[int, int]]],
    limit: int,
) -> NFA:
    """Reachable-pair product over ``move`` (which enumerates the joint
    successors of an ``(a_state, b_state)`` pair on a symbol)."""
    index: dict[tuple[int, int], int] = {}
    order: list[tuple[int, int]] = []

    def state_id(pair: tuple[int, int]) -> int:
        sid = index.get(pair)
        if sid is None:
            if len(order) >= limit:
                raise AnalysisBudgetError(
                    f"automaton product exceeded the {limit}-state budget",
                    limit=limit,
                )
            sid = len(order)
            index[pair] = sid
            order.append(pair)
        return sid

    starts = [state_id((qa, qb)) for qa in sorted(a.starts) for qb in sorted(b.starts)]
    delta: list[dict[int, frozenset[int]]] = []
    i = 0
    while i < len(order):
        qa, qb = order[i]
        row: dict[int, frozenset[int]] = {}
        for sym in range(a.n_symbols):
            targets = frozenset(state_id(p) for p in move(qa, qb, sym))
            if targets:
                row[sym] = targets
        delta.append(row)
        i += 1
    accepts = frozenset(
        sid for sid, (qa, qb) in enumerate(order)
        if qa in a.accepts and qb in b.accepts
    )
    return NFA(a.n_symbols, tuple(delta), frozenset(starts), accepts)


def _intersect(a: NFA, b: NFA, limit: int) -> NFA:
    def move(qa: int, qb: int, sym: int) -> Iterator[tuple[int, int]]:
        for ta in a.delta[qa].get(sym, ()):
            for tb in b.delta[qb].get(sym, ()):
                yield ta, tb

    return _pair_product(a, b, move, limit)


def _shuffle_marked(a: NFA, b: NFA, limit: int) -> NFA:
    """Mark-attribution interleaving: an unmarked letter is read by both
    sides; a marked letter is attributed to exactly one side (which
    reads it marked) while the other side reads its unmarked variant —
    Definition 4's disjoint union of the two sub-incidents."""

    def move(qa: int, qb: int, sym: int) -> Iterator[tuple[int, int]]:
        if sym & 1:  # marked: attribute to one side
            unmarked = sym - 1
            for ta in a.delta[qa].get(sym, ()):
                for tb in b.delta[qb].get(unmarked, ()):
                    yield ta, tb
            for ta in a.delta[qa].get(unmarked, ()):
                for tb in b.delta[qb].get(sym, ()):
                    yield ta, tb
        else:
            for ta in a.delta[qa].get(sym, ()):
                for tb in b.delta[qb].get(sym, ()):
                    yield ta, tb

    return _pair_product(a, b, move, limit)


# ---------------------------------------------------------------------------
# primitive automata
# ---------------------------------------------------------------------------


def _pad(alphabet: MarkedAlphabet) -> NFA:
    """``U*`` — any number of unmarked letters."""
    loop = {
        alphabet.symbol(i, False): frozenset({0})
        for i in range(alphabet.n_activities)
    }
    return NFA(alphabet.n_symbols, (loop,), frozenset({0}), frozenset({0}))


def _gap_up_to(alphabet: MarkedAlphabet, max_gap: int) -> NFA:
    """``U^{0..max_gap}`` — at most ``max_gap`` unmarked letters."""
    delta: list[dict[int, frozenset[int]]] = []
    for state in range(max_gap + 1):
        if state < max_gap:
            delta.append({
                alphabet.symbol(i, False): frozenset({state + 1})
                for i in range(alphabet.n_activities)
            })
        else:
            delta.append({})
    return NFA(
        alphabet.n_symbols,
        tuple(delta),
        frozenset({0}),
        frozenset(range(max_gap + 1)),
    )


def _anchor(alphabet: MarkedAlphabet) -> NFA:
    """Non-empty words whose first and last letters are marked."""
    marked = [alphabet.symbol(i, True) for i in range(alphabet.n_activities)]
    unmarked = [alphabet.symbol(i, False) for i in range(alphabet.n_activities)]
    delta: list[dict[int, frozenset[int]]] = [
        {sym: frozenset({1}) for sym in marked},  # 0: before the first letter
        {},                                       # 1: last letter was marked
        {},                                       # 2: last letter was unmarked
    ]
    for sym in marked:
        delta[1][sym] = frozenset({1})
        delta[2][sym] = frozenset({1})
    for sym in unmarked:
        delta[1][sym] = frozenset({2})
        delta[2][sym] = frozenset({2})
    return NFA(alphabet.n_symbols, tuple(delta), frozenset({0}), frozenset({1}))


def _well_formed(alphabet: MarkedAlphabet) -> NFA:
    """Definition 2 traces (markings free): ``START`` first, body of
    non-sentinel activities, optional trailing ``END``."""
    start_idx = alphabet.classify(START)
    end_idx = alphabet.classify(END)
    delta: list[dict[int, frozenset[int]]] = [{}, {}, {}]
    for m in (False, True):
        delta[0][alphabet.symbol(start_idx, m)] = frozenset({1})
        delta[1][alphabet.symbol(end_idx, m)] = frozenset({2})
        for idx in range(alphabet.n_activities):
            if idx not in (start_idx, end_idx):
                delta[1][alphabet.symbol(idx, m)] = frozenset({1})
    return NFA(alphabet.n_symbols, tuple(delta), frozenset({0}), frozenset({1, 2}))


# ---------------------------------------------------------------------------
# pattern compilation
# ---------------------------------------------------------------------------


def _anchored(pattern: Pattern, alphabet: MarkedAlphabet, limit: int) -> NFA:
    """The anchored language ``A(pattern)`` (see the module docstring)."""
    cls = type(pattern)
    if isinstance(pattern, Atomic):
        if cls is not Atomic:
            raise UnsupportedPatternError(
                f"{cls.__name__} atoms carry attribute predicates outside "
                "the regular fragment; the prover cannot decide them"
            )
        builder = _Builder(alphabet.n_symbols)
        s0, s1 = builder.state(), builder.state()
        for idx in alphabet.atom_indices(pattern):
            builder.edge(s0, alphabet.symbol(idx, True), s1)
        return builder.build([s0], [s1])
    if cls is Within:
        left = _anchored(pattern.left, alphabet, limit)
        right = _anchored(pattern.right, alphabet, limit)
        return _concat(left, _gap_up_to(alphabet, pattern.bound - 1), right)
    if cls is Consecutive:
        return _concat(
            _anchored(pattern.left, alphabet, limit),
            _anchored(pattern.right, alphabet, limit),
        )
    if cls is Sequential:
        return _concat(
            _anchored(pattern.left, alphabet, limit),
            _pad(alphabet),
            _anchored(pattern.right, alphabet, limit),
        )
    if cls is Choice:
        return _union(
            _anchored(pattern.left, alphabet, limit),
            _anchored(pattern.right, alphabet, limit),
        )
    if cls is Parallel:
        pad = _pad(alphabet)
        left = _concat(pad, _anchored(pattern.left, alphabet, limit), pad)
        right = _concat(pad, _anchored(pattern.right, alphabet, limit), pad)
        shuffled = _shuffle_marked(left, right, limit)
        return _intersect(shuffled, _anchor(alphabet), limit)
    raise UnsupportedPatternError(
        f"operator {cls.__name__} is outside the decidable core fragment"
    )


def compile_pattern(
    pattern: Pattern,
    alphabet: MarkedAlphabet,
    max_states: int = DEFAULT_MAX_STATES,
) -> NFA:
    """``lang(pattern)`` — marked well-formed traces whose marked
    records form an incident of ``pattern``."""
    pad = _pad(alphabet)
    padded = _concat(pad, _anchored(pattern, alphabet, max_states), pad)
    return _intersect(padded, _well_formed(alphabet), max_states)


# ---------------------------------------------------------------------------
# decision-procedure machinery
# ---------------------------------------------------------------------------


def determinize(nfa: NFA, max_states: int = DEFAULT_MAX_STATES) -> DFA:
    """Subset construction to a *complete* DFA (empty set = sink)."""
    index: dict[frozenset[int], int] = {}
    order: list[frozenset[int]] = []

    def state_id(subset: frozenset[int]) -> int:
        sid = index.get(subset)
        if sid is None:
            if len(order) >= max_states:
                raise AnalysisBudgetError(
                    f"determinization exceeded the {max_states}-state budget",
                    limit=max_states,
                )
            sid = len(order)
            index[subset] = sid
            order.append(subset)
        return sid

    start = state_id(nfa.starts)
    trans: list[tuple[int, ...]] = []
    i = 0
    while i < len(order):
        subset = order[i]
        row = []
        for sym in range(nfa.n_symbols):
            targets: set[int] = set()
            for q in subset:
                targets.update(nfa.delta[q].get(sym, ()))
            row.append(state_id(frozenset(targets)))
        trans.append(tuple(row))
        i += 1
    accepts = frozenset(
        sid for sid, subset in enumerate(order) if subset & nfa.accepts
    )
    return DFA(nfa.n_symbols, start, tuple(trans), accepts)


def difference_word(p: DFA, q: DFA) -> list[int] | None:
    """A shortest word in ``L(p) \\ L(q)``, or ``None`` if ``L(p) ⊆
    L(q)`` — BFS over the product with parent pointers."""
    start = (p.start, q.start)
    parents: dict[tuple[int, int], tuple[tuple[int, int], int] | None] = {start: None}
    queue: deque[tuple[int, int]] = deque([start])
    hit: tuple[int, int] | None = None
    if start[0] in p.accepts and start[1] not in q.accepts:
        hit = start
    while queue and hit is None:
        pair = queue.popleft()
        sp, sq = pair
        for sym in range(p.n_symbols):
            nxt = (p.trans[sp][sym], q.trans[sq][sym])
            if nxt in parents:
                continue
            parents[nxt] = (pair, sym)
            if nxt[0] in p.accepts and nxt[1] not in q.accepts:
                hit = nxt
                break
            queue.append(nxt)
    if hit is None:
        return None
    word: list[int] = []
    cursor: tuple[int, int] | None = hit
    while parents[cursor] is not None:
        cursor, sym = parents[cursor]  # type: ignore[misc]
        word.append(sym)
    word.reverse()
    return word


def canonical_dfa_bytes(dfa: DFA) -> bytes:
    """A canonical byte serialization of the DFA's minimal form.

    Moore partition refinement to the coarsest congruence, then a BFS
    renumbering from the start block — equivalent DFAs over the same
    alphabet produce identical bytes, so this is a sound equality key
    for pattern languages.
    """
    n = dfa.n_states
    part = [1 if s in dfa.accepts else 0 for s in range(n)]
    n_blocks = len(set(part))
    while True:
        signatures: dict[tuple[int, ...], int] = {}
        new_part = []
        for s in range(n):
            sig = (part[s], *(part[t] for t in dfa.trans[s]))
            block = signatures.setdefault(sig, len(signatures))
            new_part.append(block)
        if len(signatures) == n_blocks:
            part = new_part
            break
        part, n_blocks = new_part, len(signatures)
    block_trans: dict[int, tuple[int, ...]] = {}
    block_accept: dict[int, bool] = {}
    for s in range(n):
        block_trans.setdefault(part[s], tuple(part[t] for t in dfa.trans[s]))
        block_accept.setdefault(part[s], s in dfa.accepts)
    renumber = {part[dfa.start]: 0}
    order = [part[dfa.start]]
    i = 0
    while i < len(order):
        for target in block_trans[order[i]]:
            if target not in renumber:
                renumber[target] = len(order)
                order.append(target)
        i += 1
    pieces = [f"{dfa.n_symbols};"]
    for block in order:
        row = ",".join(str(renumber[t]) for t in block_trans[block])
        pieces.append(f"{int(block_accept[block])}:{row};")
    return "".join(pieces).encode("ascii")


def simulate(nfa: NFA, word: Sequence[int]) -> bool:
    """NFA membership in ``O(len(word) × states)``."""
    current = set(nfa.starts)
    for sym in word:
        nxt: set[int] = set()
        for q in current:
            nxt.update(nfa.delta[q].get(sym, ()))
        if not nxt:
            return False
        current = nxt
    return bool(current & nfa.accepts)

"""Static analysis of incident patterns: a containment/equivalence
prover over a canonical automaton IR, with counterexample witnesses.

The public surface:

* :class:`PatternProver` / :func:`contains` / :func:`equivalent` /
  :func:`witness` — the decision procedures (per-wid incident
  semantics, Definition 4);
* :class:`Witness` — a replayable counterexample trace + incident;
* :class:`IncidentMatcher` — exact incident-membership filter;
* :func:`canonical_key` — an equivalence-class key for result caching;
* :func:`plan_subsumption` — the batch executor's proved scan plan;
* :func:`verify_rules` — optimizer rewrite-rule soundness gating.

Errors raised here all derive from
:class:`repro.core.errors.AnalysisError`.
"""

from repro.analysis.automaton import (
    DEFAULT_MAX_STATES,
    DFA,
    MarkedAlphabet,
    NFA,
    compile_pattern,
    determinize,
)
from repro.analysis.prover import (
    IncidentMatcher,
    PatternProver,
    PlanAction,
    SubsumptionPlan,
    Witness,
    canonical_key,
    contains,
    default_prover,
    equivalent,
    plan_subsumption,
    witness,
)
from repro.analysis.verify import (
    SHIPPED_RULES,
    RuleReport,
    RuleVerification,
    default_corpus,
    verify_rules,
)
from repro.core.errors import (
    AnalysisBudgetError,
    AnalysisError,
    UnsupportedPatternError,
)

__all__ = [
    "DEFAULT_MAX_STATES",
    "DFA",
    "NFA",
    "MarkedAlphabet",
    "compile_pattern",
    "determinize",
    "PatternProver",
    "IncidentMatcher",
    "Witness",
    "PlanAction",
    "SubsumptionPlan",
    "plan_subsumption",
    "contains",
    "equivalent",
    "witness",
    "canonical_key",
    "default_prover",
    "SHIPPED_RULES",
    "RuleReport",
    "RuleVerification",
    "default_corpus",
    "verify_rules",
    "AnalysisError",
    "AnalysisBudgetError",
    "UnsupportedPatternError",
]

"""Static soundness verification of the optimizer's rewrite rules.

``verify_rules()`` proves — not samples — that every registered rewrite
is equivalence-preserving: each rule is applied bottom-up over a corpus
of patterns, and every application that changed the pattern is checked
with the containment prover.  An unsound rule is reported with the
corpus pattern it mangled and a concrete :class:`~repro.analysis.prover.
Witness` trace that the rewritten form classifies differently, so a CI
failure is immediately replayable (``repro-logs analyze --rules``).

The corpus is exhaustive over all two-operator patterns on two letters
(this is where every shipped rule's redexes live) plus seeded random
patterns over three letters with negation, plus windowed-⊳ fixtures —
small scope, but a rewrite rule is a *local* transformation, so a bug
shows up on small redexes or not at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.prover import PatternProver, Witness, default_prover
from repro.core.errors import AnalysisBudgetError, UnsupportedPatternError
from repro.core.optimizer.rules import (
    REWRITE_RULES,
    RewriteRule,
    apply_bottom_up,
    push_choice_out,
)
from repro.core.pattern import (
    Atomic,
    Choice,
    Consecutive,
    Pattern,
    Sequential,
    enumerate_patterns,
    random_pattern,
    to_text,
)
from repro.extensions.windows import Within

__all__ = [
    "SHIPPED_RULES",
    "RuleVerification",
    "RuleReport",
    "default_corpus",
    "verify_rules",
]

#: Every rewrite the optimizer layer ships: the default normal-form set
#: plus the cost-guarded distribution rule the planner applies on demand.
SHIPPED_RULES: tuple[RewriteRule, ...] = REWRITE_RULES + (
    RewriteRule("push-choice-out", "Theorem 5", push_choice_out),
)


def default_corpus(*, samples: int = 40, seed: int = 7) -> list[Pattern]:
    """The standard verification corpus (see the module docstring)."""
    corpus: list[Pattern] = list(enumerate_patterns(["A", "B"], 2))
    rng = random.Random(seed)
    for _ in range(samples):
        corpus.append(random_pattern(rng, ["A", "B", "C"], max_depth=3))
    a, b, c = Atomic("A"), Atomic("B"), Atomic("C")
    corpus += [
        Choice(Within(a, b, bound=2), Within(a, c, bound=2)),
        Choice(Within(a, b, bound=2), Within(a, b, bound=3)),
        Sequential(a, Choice(b, c)),
        Consecutive(Choice(a, b), Choice(a, b)),
    ]
    return corpus


@dataclass(frozen=True)
class RuleVerification:
    """The prover's verdict on one rewrite rule."""

    rule: RewriteRule
    checked: int          # corpus patterns the rule was applied to
    fired: int            # patterns the rule actually changed
    proved: int           # changed patterns proved equivalent
    skipped: int          # proofs abandoned on state budget
    unsound_on: Pattern | None = None
    rewritten_to: Pattern | None = None
    witness: Witness | None = None

    @property
    def sound(self) -> bool:
        return self.witness is None

    def format(self) -> str:
        if self.sound:
            detail = f"{self.proved} rewrite(s) proved equivalence-preserving"
            if self.skipped:
                detail += f", {self.skipped} skipped on budget"
            if not self.fired:
                detail = "never fired on the corpus"
            return f"rule {self.rule.name!r} ({self.rule.theorem}): SOUND — {detail}"
        assert self.unsound_on is not None and self.rewritten_to is not None
        assert self.witness is not None
        return (
            f"rule {self.rule.name!r} ({self.rule.theorem}): UNSOUND\n"
            f"  rewrote {to_text(self.unsound_on)!r} to "
            f"{to_text(self.rewritten_to)!r}, which is not equivalent:\n"
            + "\n".join("  " + line for line in self.witness.format().splitlines())
        )


@dataclass(frozen=True)
class RuleReport:
    """Aggregate result of :func:`verify_rules`."""

    verifications: tuple[RuleVerification, ...]

    @property
    def ok(self) -> bool:
        return all(v.sound for v in self.verifications)

    @property
    def failures(self) -> tuple[RuleVerification, ...]:
        return tuple(v for v in self.verifications if not v.sound)

    def format(self) -> str:
        lines = [v.format() for v in self.verifications]
        verdict = "all rules sound" if self.ok else (
            f"{len(self.failures)} unsound rule(s)"
        )
        lines.append(f"verified {len(self.verifications)} rule(s): {verdict}")
        return "\n".join(lines)


def verify_rules(
    rules: Sequence[RewriteRule] = SHIPPED_RULES,
    *,
    corpus: Iterable[Pattern] | None = None,
    samples: int = 40,
    seed: int = 7,
    prover: PatternProver | None = None,
) -> RuleReport:
    """Prove every rule in ``rules`` equivalence-preserving over the
    corpus; an unsound rule is reported with a replayable witness."""
    prover = prover or default_prover()
    patterns = list(corpus) if corpus is not None \
        else default_corpus(samples=samples, seed=seed)
    verifications = []
    for rule in rules:
        checked = fired = proved = skipped = 0
        failure: tuple[Pattern, Pattern, Witness] | None = None
        for pattern in patterns:
            checked += 1
            rewritten, count = apply_bottom_up(pattern, rule.apply)
            if count == 0 or rewritten == pattern:
                continue
            fired += 1
            try:
                counterexample = prover.witness(pattern, rewritten)
            except (AnalysisBudgetError, UnsupportedPatternError):
                skipped += 1
                continue
            if counterexample is None:
                proved += 1
            else:
                failure = (pattern, rewritten, counterexample)
                break
        verifications.append(
            RuleVerification(
                rule=rule,
                checked=checked,
                fired=fired,
                proved=proved,
                skipped=skipped,
                unsound_on=failure[0] if failure else None,
                rewritten_to=failure[1] if failure else None,
                witness=failure[2] if failure else None,
            )
        )
    return RuleReport(tuple(verifications))

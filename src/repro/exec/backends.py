"""Execution backends for shard fan-out.

A backend maps one picklable task function over a list of tasks and
returns the results *in task order*.  Three implementations:

* :class:`SerialBackend` — a plain loop in the calling process; the
  reference the parallel ones are asserted byte-for-byte equal to.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor``.  Useful when the
  per-shard work releases the GIL (I/O, future native kernels); for the
  pure-Python joins it mostly measures dispatch overhead, which is why
  the auto-dispatcher (:class:`~repro.core.optimizer.cost.DispatchCostModel`)
  never picks it for CPU-bound plans.
* :class:`ProcessBackend` — a ``ProcessPoolExecutor``; tasks and results
  cross process boundaries by pickling, so everything they carry must be
  picklable (asserted by ``tests/exec/test_pickling.py``).

Backends are context managers; pools are created on entry and torn down
on exit, so a short query does not leak worker processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterator, Sequence, TypeVar

from repro.core.errors import ReproError

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "make_backend",
]

T = TypeVar("T")
R = TypeVar("R")

#: Per-result completion hook: called once per task, in task order, as
#: each result becomes available to the caller.
OnResult = Callable[[object], None]


class Backend(ABC):
    """Maps a task function over tasks, preserving order."""

    name = "abstract"

    #: Workers the backend will actually use (1 for serial).
    jobs: int = 1

    @abstractmethod
    def run(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        on_result: OnResult | None = None,
    ) -> list[R]:
        """Apply ``fn`` to every task; results are returned in task order
        and the first raised exception propagates to the caller.

        ``on_result`` (if given) fires in the calling thread once per
        completed task, in task order — the executor uses it for shard
        progress accounting.  Pool backends consume results lazily, so
        the hook fires as workers finish, not after the whole batch.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialBackend(Backend):
    """In-process loop — no pool, no pickling, no concurrency."""

    name = "serial"

    def run(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        on_result: OnResult | None = None,
    ) -> list[R]:
        results: list[R] = []
        for task in tasks:
            results.append(fn(task))
            if on_result is not None:
                on_result(results[-1])
        return results


class _PoolBackend(Backend):
    """Shared plumbing for the ``concurrent.futures`` pools."""

    _executor_cls: type[Executor]

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._executor: Executor | None = None

    def __enter__(self) -> "Backend":
        self._executor = self._executor_cls(max_workers=self.jobs)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def run(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        on_result: OnResult | None = None,
    ) -> list[R]:
        if self._executor is None:
            # usable without the context-manager form, at the cost of a
            # fresh pool per call
            with self._executor_cls(max_workers=self.jobs) as executor:
                return self._drain(executor, executor.map(fn, tasks), on_result)
        return self._drain(self._executor, self._executor.map(fn, tasks), on_result)

    @staticmethod
    def _drain(
        executor: Executor, results: "Iterator[R]", on_result: OnResult | None
    ) -> list[R]:
        drained: list[R] = []
        try:
            for result in results:
                drained.append(result)
                if on_result is not None:
                    on_result(result)
        except Exception:
            # one shard failed (e.g. a governor budget): stop queued
            # siblings immediately; already-running ones observe their
            # cancel token / deadline at the next cooperative checkpoint
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        return drained


class ThreadBackend(_PoolBackend):
    """``ThreadPoolExecutor`` fan-out (shared memory, GIL-bound)."""

    name = "thread"
    _executor_cls = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """``ProcessPoolExecutor`` fan-out (true CPU parallelism)."""

    name = "process"
    _executor_cls = ProcessPoolExecutor


#: Registry of backend constructors, keyed by backend name.
BACKENDS: dict[str, Callable[[int], Backend]] = {
    "serial": lambda jobs: SerialBackend(),
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(name: str, jobs: int) -> Backend:
    """Instantiate a backend by name (``serial``/``thread``/``process``)."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ReproError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
    return factory(jobs)

"""Shared-scan evaluation of multiple queries in one pass.

Workloads that monitor a log usually run *families* of related queries —
the same clinical pathway with different suffixes, the same prefix with
different windows.  Evaluating them independently recomputes every
shared subpattern once per query.  :func:`evaluate_batch` instead:

1. canonicalises every pattern with the optimizer's rule-based
   :func:`~repro.core.optimizer.rules.normalize` (associativity and
   commutativity rewrites bring structurally equal subpatterns to one
   canonical shape, maximising cross-query sharing);
2. evaluates all patterns with one :class:`SharedScanEngine` per shard —
   an :class:`~repro.core.eval.indexed.IndexedEngine` whose per-``(wid,
   subpattern)`` incident lists are memoised, so a subpattern shared by
   several queries (or appearing twice in one) is scanned and joined
   exactly once;
3. runs the :mod:`repro.analysis` subsumption planner over the still-
   pending queries (``analyze=True``): queries *proved* equivalent to a
   sibling alias its result set outright, and queries proved strictly
   contained in a sibling skip their scan — the subsuming query is
   evaluated once and the subsumed one derived by filtering its
   incidents through an exact membership matcher;
4. optionally fans the shared scan out over wid-disjoint shards
   (``jobs``/``backend``, same machinery as
   :class:`~repro.exec.parallel.ParallelExecutor`).

The observable guarantee, asserted in ``tests/exec/test_batch.py`` and
``tests/exec/test_batch_subsumption.py``: the per-query incident sets
equal independent evaluation byte for byte — subsumption derivation is
exact, because ``p ⊑ q`` makes filtering ``incL(q)`` through ``p``'s
matcher yield precisely ``incL(p)`` — while ``stats.pairs_examined``
shrinks whenever any subpattern is shared or any query is subsumed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.errors import QueryGovernorError
from repro.core.eval.base import EvaluationStats
from repro.core.eval.indexed import IndexedEngine
from repro.core.governor import CancelToken, QueryContext, ResourceGovernor
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log
from repro.core.optimizer.rules import normalize
from repro.core.parser import parse
from repro.core.pattern import Pattern
from repro.exec.backends import make_backend
from repro.exec.shard import plan_shards
from repro.obs.journal import QueryJournal, RunRecorder, make_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["SharedScanEngine", "BatchResult", "evaluate_batch"]


class SharedScanEngine(IndexedEngine):
    """Indexed engine with cross-evaluation node memoisation.

    Incident lists are cached per ``(wid, subpattern)``; patterns are
    frozen dataclasses, so structurally equal subpatterns — within one
    pattern or across successive :meth:`evaluate` calls on the same log —
    hit the same entry.  ``shared_hits`` counts the node evaluations the
    in-run memo elided; every hit skips its subtree's scans and joins
    entirely, which is where the batch pairs saving comes from.

    The local memo keys contain no log identity, so it is dropped
    whenever the engine is pointed at a different :class:`Log` object.
    With a :class:`~repro.cache.manager.QueryCache` attached, node
    results are *additionally* written through to its persistent memo
    layer under ``(memo scope, wid, wid record count, subpattern)`` —
    those entries survive across engine instances, across runs, and
    across snapshots of one store lineage for instances untouched by
    later appends (``memo_hits`` counts lookups served from there).  The
    engine's ``max_incidents`` budget participates in the scope, so
    entries computed under one cap never mask the budget error a
    stricter cap would have raised.
    """

    name = "shared-scan"

    def __init__(self, *, cache=None, **kwargs):
        super().__init__(**kwargs)
        self._cache: dict[tuple[int, Pattern], list[Incident]] = {}
        self.shared_hits = 0
        self.memo_hits = 0
        self._shared_cache = cache
        self._memo_scope: tuple[str, ...] | None = None
        self._bound_log: Log | None = None

    def _bind(self, log: Log) -> None:
        """Point the engine at ``log``: the local memo is only valid for
        one log object, the persistent scope is derived per log."""
        if log is self._bound_log:
            return
        self._cache.clear()
        self._bound_log = log
        cache = self._shared_cache
        if cache is not None and cache.policy.caches_memo:
            self._memo_scope = cache.memo_scope(log) + (
                "budget",
                str(self.max_incidents),
            )
        else:
            self._memo_scope = None

    def evaluate(self, log, pattern):
        self._bind(log)
        return super().evaluate(log, pattern)

    def exists(self, log, pattern):
        self._bind(log)
        return super().exists(log, pattern)

    def count(self, log, pattern):
        self._bind(log)
        return super().count(log, pattern)

    def _eval_node(self, log, wid, pattern, stats, key="root"):
        cache_key = (wid, pattern)
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.shared_hits += 1
            return cached
        scope = self._memo_scope
        if scope is not None:
            persisted = self._shared_cache.memo_get(
                scope, wid, len(log.instance(wid)), pattern
            )
            if persisted is not None:
                self.memo_hits += 1
                result = list(persisted)
                self._cache[cache_key] = result
                return result
        result = super()._eval_node(log, wid, pattern, stats, key)
        self._cache[cache_key] = result
        if scope is not None:
            self._shared_cache.memo_put(
                scope, wid, len(log.instance(wid)), pattern, tuple(result)
            )
        return result


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch evaluation.

    ``results[i]`` is the incident set of ``patterns[i]`` (input order);
    ``stats`` aggregates the work over all queries and shards;
    ``shared_hits`` counts node evaluations elided by subpattern sharing.
    """

    patterns: tuple[Pattern, ...]
    results: tuple[IncidentSet, ...]
    stats: EvaluationStats
    shared_hits: int
    backend: str
    jobs: int
    cache_hits: int = 0
    #: queries that skipped their own log scan because the subsumption
    #: planner proved them equivalent to / contained in a sibling
    subsumed: int = 0
    #: successful containment/equivalence proofs the planner used
    proofs: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"BatchResult({len(self.results)} query(ies), "
            f"{self.shared_hits} shared hit(s), "
            f"{self.subsumed} subsumed, backend={self.backend})"
        )


@dataclass(frozen=True)
class _BatchShardTask:
    """Work unit: all patterns over one shard.

    ``cache`` carries the shared :class:`~repro.cache.manager.QueryCache`
    for in-process backends only — a live cache cannot cross a process
    boundary, so process-pool tasks always ship with ``cache=None``
    (which also keeps the task picklable).  ``ctx``/``cancel``/``journal``
    mirror :class:`~repro.exec.worker.ShardTask`: the query context's
    budgets are enforced by a worker-local governor inside the shared
    scan, and ``cancel`` is never set on process-pool tasks.
    """

    shard_index: int
    log: Log
    patterns: tuple[Pattern, ...]
    max_incidents: int | None = None
    cache: object | None = None
    ctx: QueryContext | None = None
    cancel: CancelToken | None = field(default=None, compare=False)
    journal: bool = False


@dataclass(frozen=True)
class _BatchShardOutcome:
    shard_index: int
    per_query: tuple[tuple[Incident, ...], ...]
    stats: EvaluationStats
    shared_hits: int
    events: tuple[dict, ...] = ()


def evaluate_batch_shard(task: _BatchShardTask) -> _BatchShardOutcome:
    """Shared-scan all patterns over one shard (module-level for pickling)."""
    governor = (
        ResourceGovernor.from_context(task.ctx, cancel=task.cancel)
        if task.ctx is not None
        else None
    )
    wall0, cpu0 = time.perf_counter(), time.process_time()
    engine = SharedScanEngine(
        max_incidents=task.max_incidents, cache=task.cache, governor=governor
    )
    per_query: list[tuple[Incident, ...]] = []
    stats = EvaluationStats()
    for pattern in task.patterns:
        per_query.append(tuple(engine.evaluate(task.log, pattern)))
        if engine.last_stats is not None:
            stats.merge(engine.last_stats)
            if governor is not None:
                # each evaluate() starts fresh stats; carry the finished
                # pattern's pairs into the governor so max_pairs bounds
                # the whole batch, not each query separately
                governor.charge(engine.last_stats.pairs_examined)
    events: tuple[dict, ...] = ()
    if task.journal and task.ctx is not None:
        events = (
            make_event(
                "evaluate",
                query_id=task.ctx.query_id,
                trace_id=task.ctx.trace_id,
                shard=task.shard_index,
                engine=engine.name,
                mode="batch",
                records=len(task.log),
                pairs=stats.pairs_examined,
                incidents=sum(len(q) for q in per_query),
                wall_ms=(time.perf_counter() - wall0) * 1000.0,
                cpu_ms=(time.process_time() - cpu0) * 1000.0,
            ),
        )
    return _BatchShardOutcome(
        shard_index=task.shard_index,
        per_query=tuple(per_query),
        stats=stats,
        shared_hits=engine.shared_hits,
        events=events,
    )


def evaluate_batch(
    log: Log,
    patterns,
    *,
    optimize: bool = True,
    analyze: bool = True,
    jobs: int = 1,
    backend: str = "serial",
    strategy: str = "hash",
    max_incidents: int | None = None,
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | None = None,
    cache=None,
    deadline_ms: float | None = None,
    max_pairs: int | None = None,
    journal: QueryJournal | None = None,
    cancel: CancelToken | None = None,
) -> BatchResult:
    """Evaluate N queries over one log with shared subpattern scans.

    Parameters
    ----------
    patterns:
        Patterns or query-text strings (mixed freely).
    optimize:
        Apply rule-based canonicalisation before evaluation (default).
        Unlike the per-query cost-based optimizer, normalisation never
        trades sharing away: equal subpatterns stay equal.
    analyze:
        Run the :func:`repro.analysis.plan_subsumption` prover pass over
        the pending queries (default).  Queries proved equivalent to or
        strictly contained in a sibling skip their own scan; their
        incident sets are shared or derived by exact filtering, and the
        returned batch reports them in ``subsumed`` (``proofs`` counts
        the containment proofs used).  Queries the prover cannot handle
        fall back to a normal scan — analysis never fails a batch.
    jobs / backend / strategy:
        Parallel fan-out controls; the default is a single-shard serial
        shared scan.  With ``jobs > 1`` and a pool backend, each shard
        runs its own shared scan and per-query results merge across
        shards in the canonical incident order.
    cache:
        Optional :class:`~repro.cache.manager.QueryCache` (or any value
        :func:`~repro.cache.manager.resolve_cache` accepts).  Queries
        whose result is already cached skip evaluation entirely
        (``cache_hits`` on the returned batch counts them); cold queries
        are evaluated and stored, and — on in-process backends — the
        shared-scan engines write through to the persistent memo layer,
        so hits survive across ``evaluate_batch`` calls.
    deadline_ms / max_pairs:
        Per-*batch* resource budgets, enforced cooperatively inside the
        shared scans (the pairs budget spans all queries in the batch).
        Tripping one raises the typed
        :class:`~repro.core.errors.QueryTimeout` /
        :class:`~repro.core.errors.QueryBudgetExceeded`, cancels sibling
        shards, and — with a journal attached — records a terminal
        ``killed`` event.
    journal:
        Optional :class:`~repro.obs.journal.QueryJournal` receiving the
        batch's lifecycle events (one ``query_id`` for the whole batch;
        per-shard ``evaluate`` events stitch in across backends).
    """
    from repro.cache.manager import resolve_cache

    live_cache = resolve_cache(cache)
    resolved: list[Pattern] = []
    for pattern in patterns:
        if isinstance(pattern, str):
            pattern = parse(pattern)
        if optimize:
            pattern, _ = normalize(pattern)
        resolved.append(pattern)
    if not resolved:
        raise ValueError("evaluate_batch needs at least one pattern")

    ctx: QueryContext | None = None
    recorder: RunRecorder | None = None
    if (
        journal is not None
        or deadline_ms is not None
        or max_pairs is not None
        or cancel is not None
    ):
        ctx = QueryContext.new(
            deadline_ms=deadline_ms,
            max_pairs=max_pairs,
            journal=journal is not None,
        )
    if journal is not None and ctx is not None:
        label = (
            str(resolved[0])
            if len(resolved) == 1
            else f"{resolved[0]} (+{len(resolved) - 1} more)"
        )
        recorder = RunRecorder(journal, ctx, pattern=label, op="batch")
        recorder.submit(queries=len(resolved))

    # result-layer pre-pass: finished queries never reach the shard scan
    final: list[IncidentSet | None] = [None] * len(resolved)
    keys: list[object | None] = [None] * len(resolved)
    cache_hits = 0
    if live_cache is not None and live_cache.policy.caches_results:
        for index, pattern in enumerate(resolved):
            key = live_cache.result_key(
                log, pattern, max_incidents=max_incidents
            )
            keys[index] = key
            hit = live_cache.get_result(key)
            if hit is not None:
                final[index] = hit.incidents
                cache_hits += 1
        if recorder is not None:
            recorder.cache_probe(probe="result", hit=cache_hits > 0)
    pending = [i for i in range(len(resolved)) if final[i] is None]

    # subsumption pre-pass: prove containment/equivalence across the
    # pending queries, so subsumed ones never reach the shard scan
    plan = None
    proofs = 0
    if analyze and len(pending) > 1:
        from repro.analysis import AnalysisError, plan_subsumption

        try:
            candidate = plan_subsumption([resolved[i] for i in pending])
        except AnalysisError:
            candidate = None
        if candidate is not None:
            proofs = candidate.proofs
            if candidate.subsumed:
                plan = candidate
    subsumed = plan.subsumed if plan is not None else 0
    scan_positions = (
        list(range(len(pending)))
        if plan is None
        else [p for p, action in enumerate(plan.actions) if action.kind == "scan"]
    )

    backend_name = "serial" if jobs <= 1 else backend
    n_shards = 1 if backend_name == "serial" else max(1, jobs * 2)
    merged_stats = EvaluationStats(registry=metrics)
    shared_hits = 0
    trc = tracer if tracer is not None else NULL_TRACER
    with trc.span("batch", key=()) as span:
        if pending:
            if len(log) == 0 or n_shards == 1:
                shard_logs = [log]
            else:
                shard_logs = [
                    shard.log
                    for shard in plan_shards(log, n_shards, strategy=strategy)
                ]
            # a live cache cannot cross a process boundary; in-process
            # backends share it so the memo layer fills/serves
            task_cache = live_cache if backend_name != "process" else None
            # sibling-cancellation token, in-process backends only (an
            # Event does not pickle; process shards self-enforce via the
            # absolute deadline plus ``cancel_futures``)
            if backend_name == "process":
                shard_cancel = None  # events do not pickle
            elif cancel is not None:
                shard_cancel = cancel  # caller-supplied (admin kill hook)
            elif ctx is not None and ctx.governed:
                shard_cancel = CancelToken()
            else:
                shard_cancel = None
            tasks = [
                _BatchShardTask(
                    shard_index=index,
                    log=shard_log,
                    patterns=tuple(
                        resolved[pending[p]] for p in scan_positions
                    ),
                    max_incidents=max_incidents,
                    cache=task_cache,
                    ctx=ctx,
                    cancel=shard_cancel,
                    journal=recorder is not None,
                )
                for index, shard_log in enumerate(shard_logs)
            ]
            if recorder is not None:
                recorder.shard(
                    shards=len(tasks),
                    backend=backend_name,
                    jobs=jobs,
                    strategy=strategy,
                )
            with make_backend(backend_name, jobs) as runner:
                try:
                    outcomes = runner.run(evaluate_batch_shard, tasks)
                except QueryGovernorError as exc:
                    # set the token before the pool joins, so running
                    # siblings bail at their next cooperative checkpoint
                    if shard_cancel is not None:
                        shard_cancel.set()
                    if recorder is not None:
                        recorder.killed(exc, queries=len(resolved))
                    raise

            per_query: list[list[Incident]] = [[] for _ in scan_positions]
            for outcome in outcomes:
                merged_stats.merge(outcome.stats)
                shared_hits += outcome.shared_hits
                if recorder is not None:
                    recorder.adopt(outcome.events)
                for slot, incidents in enumerate(outcome.per_query):
                    per_query[slot].extend(incidents)
            incident_lists: dict[int, list[Incident]] = {
                position: per_query[slot]
                for slot, position in enumerate(scan_positions)
            }
            position_sets: dict[int, IncidentSet] = {
                position: IncidentSet(incidents)
                for position, incidents in incident_lists.items()
            }
            if plan is not None:
                # resolve aliases/derivations in dependency order; strict
                # containment is a partial order, so every pass makes
                # progress (a derive chain bottoms out at a scanned leader)
                remaining = [
                    p for p, action in enumerate(plan.actions)
                    if action.kind != "scan"
                ]
                while remaining:
                    deferred = []
                    for position in remaining:
                        action = plan.actions[position]
                        if action.source not in position_sets:
                            deferred.append(position)
                            continue
                        if action.kind == "alias":
                            incident_lists[position] = incident_lists[action.source]
                            position_sets[position] = position_sets[action.source]
                        else:
                            derived = plan.filter_incidents(
                                position, incident_lists[action.source], log
                            )
                            incident_lists[position] = derived
                            position_sets[position] = IncidentSet(derived)
                    assert len(deferred) < len(remaining)
                    remaining = deferred
            for position, index in enumerate(pending):
                incident_set = position_sets[position]
                final[index] = incident_set
                if keys[index] is not None:
                    live_cache.put_result(keys[index], incident_set)
        merged_stats.publish()
        if metrics is not None:
            metrics.counter("exec.batch_shared_hits").inc(shared_hits)
            metrics.counter("analysis.subsumed").inc(subsumed)
            metrics.counter("analysis.proofs").inc(proofs)
        span.add(
            queries=len(resolved),
            shards=len(tasks) if pending else 0,
            shared_hits=shared_hits,
            cache_hits=cache_hits,
            subsumed=subsumed,
            proofs=proofs,
            pairs=merged_stats.pairs_examined,
        )

    results = tuple(final)
    assert all(r is not None for r in results)
    if recorder is not None:
        recorder.finish(
            stats=merged_stats,
            incidents=sum(len(r) for r in results if r is not None),
            queries=len(resolved),
            shared_hits=shared_hits,
            cache_hits=cache_hits,
            subsumed=subsumed,
        )
    return BatchResult(
        patterns=tuple(resolved),
        results=results,  # type: ignore[arg-type]
        stats=merged_stats,
        shared_hits=shared_hits,
        backend=backend_name,
        jobs=jobs,
        cache_hits=cache_hits,
        subsumed=subsumed,
        proofs=proofs,
    )

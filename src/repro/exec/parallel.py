"""Parallel shard-fan-out evaluation.

:class:`ParallelExecutor` ties the subsystem together: it partitions a
log into wid-disjoint shards (:mod:`repro.exec.shard`), evaluates every
shard with a per-shard engine over an execution backend
(:mod:`repro.exec.backends` / :mod:`repro.exec.worker`), and merges the
per-shard outcomes into one result that is **byte-for-byte identical**
to a serial whole-log evaluation:

* *incidents* — shard logs keep original ``lsn`` values, so per-shard
  incidents have the same identity keys as their whole-log counterparts;
  the union, sorted in the canonical incident order
  (:attr:`~repro.core.incident.Incident.sort_key`), is exactly the serial
  :class:`~repro.core.incident.IncidentSet`;
* *statistics* — per-shard :class:`~repro.core.eval.base.EvaluationStats`
  fold together with :meth:`~repro.core.eval.base.EvaluationStats.merge`
  and publish **once** to the caller's metrics registry;
* *spans* — each worker traces its shard with a private tracer; the
  structurally matching trees merge via
  :func:`~repro.obs.tracer.merge_span_trees` and the single combined tree
  is adopted into the caller's tracer, so ``repro-logs profile`` and the
  exporters see the familiar serial shape.

Backend choice defaults to ``"auto"``: the
:class:`~repro.core.optimizer.cost.DispatchCostModel` compares the
estimated join work (:meth:`~repro.core.optimizer.cost.CostModel.plan_cost`)
with process-pool dispatch overhead and keeps cheap queries in-process.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.core.backend import Backend
from repro.core.errors import QueryGovernorError
from repro.core.eval.base import Engine, EvaluationStats
from repro.core.governor import CancelToken, QueryContext
from repro.core.incident import Incident, IncidentSet
from repro.core.model import Log
from repro.core.optimizer.cost import CostModel, DispatchCostModel, LogStatistics
from repro.core.pattern import Pattern
from repro.exec.backends import make_backend
from repro.exec.shard import Shard, ShardPlan, plan_shards
from repro.exec.worker import EngineConfig, ShardOutcome, ShardTask, evaluate_shard
from repro.logstore.store import LogStore
from repro.obs.journal import QueryJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer, merge_span_trees

__all__ = ["ParallelExecutor", "ParallelResult", "default_jobs"]


def default_jobs() -> int:
    """Worker count used when none is requested: one per CPU."""
    return os.cpu_count() or 1


def _source_statistics(source: Log | LogStore) -> LogStatistics:
    """Log statistics for either source kind, in one record pass."""
    counts: Counter = Counter()
    wids: set[int] = set()
    total = 0
    for record in source:
        counts[record.activity] += 1
        wids.add(record.wid)
        total += 1
    return LogStatistics(
        total_records=total, instance_count=len(wids), activity_counts=counts
    )


@dataclass(frozen=True)
class ParallelResult:
    """Merged outcome of one sharded evaluation.

    ``incidents`` is None for ``mode="count"`` runs (counting never
    materialises); ``span`` is None when the executor ran untraced.
    """

    incidents: IncidentSet | None
    count: int
    stats: EvaluationStats
    plan: ShardPlan
    backend: str
    jobs: int
    span: Span | None = None
    cache_layer: str | None = None

    def __repr__(self) -> str:
        return (
            f"ParallelResult({self.count} incident(s), backend={self.backend}, "
            f"jobs={self.jobs}, {len(self.plan)} shard(s))"
        )


class ParallelExecutor:
    """Evaluates patterns over wid-disjoint shards in parallel.

    Parameters
    ----------
    jobs:
        Worker count; defaults to the CPU count.
    backend:
        A :class:`~repro.core.backend.Backend` member or string value —
        one of :meth:`Backend.executor() <repro.core.backend.Backend.executor>`
        (``"auto"`` default).  Auto consults the dispatch cost model per
        query and stays serial for plans too cheap to amortise a pool.
        ``Backend.SQLITE`` is rejected here: SQL pushdown evaluates
        in-database and never shards (route it through
        :class:`~repro.core.query.Query` instead).
    strategy:
        Shard-partitioning strategy, ``"hash"`` (default) or ``"range"``.
    engine:
        Engine name (any :data:`~repro.core.query.ENGINES` key, or
        ``"incremental"``), an :class:`~repro.exec.worker.EngineConfig`,
        or an :class:`~repro.core.eval.base.Engine` instance (its name
        and budget are extracted; its tracer/metrics are *not* shipped to
        workers — pass them to the executor instead).
    max_incidents:
        Per-shard incident budget forwarded to every worker engine.
    tracer / metrics:
        Caller-side observability: the merged span tree is adopted into
        ``tracer``, the merged statistics publish once into ``metrics``.
    dispatch:
        Override the :class:`~repro.core.optimizer.cost.DispatchCostModel`
        used by ``backend="auto"``.
    progress:
        Optional per-shard completion hook, called in the calling thread
        as ``progress(done, total)`` each time a shard finishes.  The
        same events are published to ``metrics`` as the
        ``exec.shards_completed`` counter and ``exec.shards_total``
        gauge, so a registry alone is enough to observe a run.
    cache:
        Optional :class:`~repro.cache.manager.QueryCache` (or any value
        :func:`~repro.cache.manager.resolve_cache` accepts).  The result
        layer is consulted before shards are even planned — a warm hit
        skips the whole fan-out (``cache_layer="result"`` on the
        returned outcome) — and filled after a cold ``evaluate``.  The
        memo layer never crosses the executor: worker engines may run in
        other processes.  (:class:`~repro.core.query.Query` handles the
        result layer itself and leaves this unset.)
    ctx:
        Optional :class:`~repro.core.governor.QueryContext` propagated to
        every shard task: workers enforce its budgets locally (absolute
        deadline, pairs cap) and stamp its ``query_id``/``trace_id`` on
        their journal events.  When a shard trips a budget, the executor
        sets the shared cancel token (thread backend) and the pool
        cancels queued siblings, so the run stops promptly instead of
        finishing the fan-out.
    journal:
        Optional :class:`~repro.obs.journal.QueryJournal`: the executor
        emits a ``shard`` event describing the fan-out and re-sequences
        the workers' ``evaluate`` events into the journal as outcomes
        arrive.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        backend: Backend | str = Backend.AUTO,
        strategy: str = "hash",
        engine: str | Engine | EngineConfig | None = None,
        max_incidents: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        dispatch: DispatchCostModel | None = None,
        progress: Callable[[int, int], None] | None = None,
        cache=None,
        ctx: QueryContext | None = None,
        journal: QueryJournal | None = None,
    ):
        from repro.cache.manager import resolve_cache

        self.jobs = jobs if jobs is not None else default_jobs()
        self.backend = Backend.coerce(
            backend, allow=Backend.executor(), where="executor backend"
        )
        self.strategy = strategy
        self.engine = _engine_config(engine, max_incidents)
        self.tracer = tracer
        self.metrics = metrics
        self.dispatch = dispatch if dispatch is not None else DispatchCostModel()
        self.progress = progress
        self.cache = resolve_cache(cache)
        self.ctx = ctx
        self.journal = journal
        self.last_result: ParallelResult | None = None

    # -- public API --------------------------------------------------------

    def evaluate(self, source: Log | LogStore, pattern: Pattern) -> ParallelResult:
        """Full incident set of ``pattern``, merged across shards."""
        return self._run(source, pattern, mode="evaluate")

    def count(self, source: Log | LogStore, pattern: Pattern) -> int:
        """Incident count: per-shard counts (counting DP where it
        applies) summed — no incident ever crosses a process boundary."""
        return self._run(source, pattern, mode="count").count

    # -- machinery ---------------------------------------------------------

    def _run(self, source: Log | LogStore, pattern: Pattern, *, mode: str) -> ParallelResult:
        cache_key = None
        if self.cache is not None and self.cache.policy.caches_results:
            cache_key = self.cache.result_key(
                source, pattern, max_incidents=self.engine.max_incidents
            )
            hit = self.cache.get_result(cache_key)
            if hit is not None:
                result = ParallelResult(
                    incidents=hit.incidents if mode == "evaluate" else None,
                    count=len(hit.incidents),
                    stats=hit.stats if hit.stats is not None else EvaluationStats(),
                    plan=ShardPlan(
                        strategy=self.strategy, shards=(), total_records=0
                    ),
                    backend="cache",
                    jobs=self.jobs,
                    cache_layer="result",
                )
                self.last_result = result
                return result

        backend = self._choose_backend(source, pattern)
        n_shards = 1 if backend == "serial" else max(1, self.jobs * 2)
        trace = self.tracer is not None and getattr(self.tracer, "enabled", False)

        plan = self._plan(source, n_shards)
        # sibling-cancellation token: only for in-process backends — an
        # Event does not pickle, and process workers self-enforce via the
        # context's absolute deadline plus ``cancel_futures`` in the pool
        cancel = (
            CancelToken()
            if self.ctx is not None and self.ctx.governed and backend != "process"
            else None
        )
        journal_shards = (
            self.journal is not None and self.ctx is not None and self.ctx.journal
        )
        tasks = [
            ShardTask(
                shard_index=shard.index,
                log=shard.log,
                pattern=pattern,
                engine=self.engine,
                mode=mode,
                trace=trace,
                ctx=self.ctx,
                cancel=cancel,
                journal=bool(journal_shards),
            )
            for shard in plan
        ]
        if journal_shards:
            assert self.journal is not None and self.ctx is not None
            self.journal.emit(
                "shard",
                query_id=self.ctx.query_id,
                trace_id=self.ctx.trace_id,
                shards=len(tasks),
                backend=backend,
                jobs=self.jobs,
                strategy=self.strategy,
            )
        with make_backend(backend, self.jobs) as runner:
            try:
                outcomes = runner.run(
                    evaluate_shard, tasks, on_result=self._shard_done(len(tasks))
                )
            except QueryGovernorError:
                # set the token BEFORE the with-block exit joins the pool,
                # so running sibling shards bail at their next checkpoint
                # instead of finishing their join
                if cancel is not None:
                    cancel.set()
                raise
        self._adopt_events(outcomes)
        result = self._merge(outcomes, plan, backend, mode)
        if cache_key is not None and result.incidents is not None:
            self.cache.put_result(cache_key, result.incidents, result.stats)
        self.last_result = result
        return result

    def _adopt_events(self, outcomes: list[ShardOutcome]) -> None:
        """Re-sequence worker journal events into the live journal."""
        if self.journal is None:
            return
        for outcome in outcomes:
            for event in outcome.events:
                self.journal.write(dict(event))

    def _shard_done(self, total: int) -> Callable[[object], None] | None:
        """Per-shard completion hook: metrics first, then ``progress``.

        Returns None when nobody is listening, so the backends skip the
        per-result bookkeeping entirely on plain runs.
        """
        if self.metrics is None and self.progress is None:
            return None
        completed = None
        if self.metrics is not None:
            self.metrics.gauge("exec.shards_total").set(total)
            completed = self.metrics.counter("exec.shards_completed")
        progress = self.progress
        done = 0

        def on_result(_outcome: object) -> None:
            nonlocal done
            done += 1
            if completed is not None:
                completed.inc()
            if progress is not None:
                progress(done, total)

        return on_result

    def _choose_backend(self, source: Log | LogStore, pattern: Pattern) -> str:
        if self.backend != "auto":
            return self.backend
        stats = _source_statistics(source)
        plan_cost = CostModel(stats).plan_cost(pattern)
        return self.dispatch.choose_backend(self.jobs, stats.total_records, plan_cost)

    def _plan(self, source: Log | LogStore, n_shards: int) -> ShardPlan:
        if len(source) == 0:
            # empty source: one task over an empty log, so the merged
            # result matches what a direct engine call would produce
            shard = Shard(index=0, wids=(), log=Log((), validate=False))
            return ShardPlan(strategy=self.strategy, shards=(shard,), total_records=0)
        return plan_shards(source, n_shards, strategy=self.strategy)

    def _merge(
        self,
        outcomes: list[ShardOutcome],
        plan: ShardPlan,
        backend: str,
        mode: str,
    ) -> ParallelResult:
        merged_stats = EvaluationStats(registry=self.metrics)
        incidents: list[Incident] = []
        count = 0
        spans: list[Span] = []
        for outcome in outcomes:
            merged_stats.merge(outcome.stats)
            incidents.extend(outcome.incidents)
            count += outcome.count
            if outcome.span is not None:
                spans.append(outcome.span)
        merged_stats.publish()

        span: Span | None = None
        if spans and self.tracer is not None:
            span = merge_span_trees(spans)
            self.tracer.adopt(span)

        return ParallelResult(
            incidents=IncidentSet(incidents) if mode == "evaluate" else None,
            count=count,
            stats=merged_stats,
            plan=plan,
            backend=backend,
            jobs=self.jobs,
            span=span,
        )

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(jobs={self.jobs}, backend={self.backend!r}, "
            f"strategy={self.strategy!r}, engine={self.engine.name!r})"
        )


def _engine_config(
    engine: str | Engine | EngineConfig | None, max_incidents: int | None
) -> EngineConfig:
    if engine is None:
        return EngineConfig(max_incidents=max_incidents)
    if isinstance(engine, EngineConfig):
        if max_incidents is not None and engine.max_incidents is None:
            return EngineConfig(name=engine.name, max_incidents=max_incidents)
        return engine
    if isinstance(engine, Engine):
        budget = engine.max_incidents if engine.max_incidents is not None else max_incidents
        return EngineConfig(name=engine.name, max_incidents=budget)
    return EngineConfig(name=engine, max_incidents=max_incidents)

"""Parallel sharded execution (``repro.exec``).

Incidents never span workflow instances (Definition 4), which makes
pattern evaluation embarrassingly parallel across ``wid`` values.  This
package exploits that:

* :mod:`repro.exec.shard` — lossless wid-disjoint partitioning of a
  :class:`~repro.core.model.Log` or live
  :class:`~repro.logstore.store.LogStore` (hash and balanced
  contiguous-range strategies);
* :mod:`repro.exec.backends` — serial / thread-pool / process-pool
  execution backends with an order-preserving ``map`` interface;
* :mod:`repro.exec.worker` — picklable per-shard evaluation entry
  points wrapping every existing engine;
* :mod:`repro.exec.parallel` — the :class:`ParallelExecutor` fanning
  shards over a backend and merging incidents, statistics and trace
  spans into a result byte-for-byte identical to serial evaluation;
* :mod:`repro.exec.batch` — shared-scan evaluation of N queries at
  once, deduplicating common subpatterns across queries.

High-level entry points: ``Query(..., jobs=4)`` routes single queries
through the executor; :func:`evaluate_batch` (also exposed as
``Query.evaluate_batch``) runs query batches.  See ``docs/PARALLELISM.md``.
"""

from repro.exec.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.exec.batch import BatchResult, SharedScanEngine, evaluate_batch
from repro.exec.parallel import ParallelExecutor, ParallelResult, default_jobs
from repro.exec.shard import (
    SHARD_STRATEGIES,
    Shard,
    ShardPlan,
    assign_wids,
    plan_shards,
)
from repro.exec.worker import EngineConfig, ShardOutcome, ShardTask, evaluate_shard

__all__ = [
    "BACKENDS",
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "BatchResult",
    "SharedScanEngine",
    "evaluate_batch",
    "ParallelExecutor",
    "ParallelResult",
    "default_jobs",
    "SHARD_STRATEGIES",
    "Shard",
    "ShardPlan",
    "assign_wids",
    "plan_shards",
    "EngineConfig",
    "ShardOutcome",
    "ShardTask",
    "evaluate_shard",
]

"""Wid-disjoint sharding of workflow logs.

Definition 4 makes every incident local to a single workflow instance:
all records of an incident share one ``wid``, and every operator joins
incidents only within a ``wid``.  Consequently, for any partition of a
log's instances into disjoint wid sets ``W1 ∪ … ∪ Wn``::

    incL(p)  =  inc(L|W1)(p)  ∪  …  ∪  inc(L|Wn)(p)

where ``L|Wi`` is the wid-projection of ``L`` (original ``lsn`` values
preserved, see :meth:`repro.core.model.Log.project`).  Sharding is
therefore *lossless*: evaluating each shard independently and taking the
union reproduces the whole-log incident set exactly — the property the
parallel executor (:mod:`repro.exec.parallel`) builds on and the test
suite asserts over random logs and patterns.

Two partitioning strategies are provided:

* ``"hash"`` — each wid is scrambled through a fixed 64-bit mix (a
  splitmix64 round, deterministic across processes and runs, unlike
  Python's randomised string hashing) and assigned to ``mix(wid) % n``.
  Spreads hot instances uniformly regardless of arrival order.
* ``"range"`` — wids are sorted and cut into contiguous runs, greedily
  balanced so each shard carries roughly ``total_records / n`` records
  (sizes come from :class:`~repro.core.model.Log` instance lengths or
  :meth:`repro.logstore.store.LogStore.wid_record_counts`).  Preserves
  locality of consecutive instances, which matters once shards map onto
  range-partitioned storage.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.core.model import Log, LogRecord
from repro.core.view import LogView
from repro.logstore.store import LogStore

__all__ = ["Shard", "ShardPlan", "SHARD_STRATEGIES", "assign_wids", "plan_shards"]

#: Supported partitioning strategies.
SHARD_STRATEGIES: tuple[str, ...] = ("hash", "range")


def _mix64(value: int) -> int:
    """One splitmix64 finalisation round: a deterministic, well-spread
    64-bit scramble (Python's ``hash`` on small ints is the identity,
    which would turn ``% n`` into plain round-robin on dense wids)."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass(frozen=True)
class Shard:
    """One wid-disjoint partition of a log.

    Attributes
    ----------
    index:
        Position of the shard within its plan (``0 .. n-1``).
    wids:
        The workflow instances assigned to this shard, sorted.
    log:
        The wid-projection holding exactly those instances' records, with
        original ``lsn`` values (record objects are shared with the
        source, never copied).
    """

    index: int
    wids: tuple[int, ...]
    log: Log

    @property
    def record_count(self) -> int:
        return len(self.log)

    def __repr__(self) -> str:
        return (
            f"Shard({self.index}, {len(self.wids)} instance(s), "
            f"{self.record_count} record(s))"
        )


@dataclass(frozen=True)
class ShardPlan:
    """A complete, lossless partition of one log into shards."""

    strategy: str
    shards: tuple[Shard, ...]
    total_records: int

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def verify_lossless(self) -> None:
        """Assert the wid-partition invariants: shards are pairwise
        disjoint and jointly cover every record of the source log."""
        seen: set[int] = set()
        records = 0
        for shard in self.shards:
            overlap = seen.intersection(shard.wids)
            if overlap:
                raise ReproError(
                    f"shard plan is not wid-disjoint: {sorted(overlap)} "
                    f"appear in more than one shard"
                )
            seen.update(shard.wids)
            records += shard.record_count
        if records != self.total_records:
            raise ReproError(
                f"shard plan drops records: {records} sharded vs "
                f"{self.total_records} in the source log"
            )

    def skew(self) -> float:
        """Largest shard record count over the balanced ideal (1.0 is a
        perfect split; the planner keeps this low, the tests bound it)."""
        if not self.shards or self.total_records == 0:
            return 1.0
        ideal = self.total_records / len(self.shards)
        return max(s.record_count for s in self.shards) / max(ideal, 1.0)

    def __repr__(self) -> str:
        sizes = ", ".join(str(s.record_count) for s in self.shards)
        return f"ShardPlan({self.strategy}, {len(self.shards)} shard(s): [{sizes}])"


def assign_wids(
    wid_sizes: Mapping[int, int], n_shards: int, strategy: str = "hash"
) -> list[tuple[int, ...]]:
    """Partition wids into at most ``n_shards`` disjoint groups.

    ``wid_sizes`` maps each wid to its record count (the balancing
    weight).  Returns the non-empty groups, each sorted; group order is
    deterministic for a given input.
    """
    if n_shards < 1:
        raise ReproError(f"shard count must be >= 1, got {n_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ReproError(
            f"unknown shard strategy {strategy!r}; available: {SHARD_STRATEGIES}"
        )
    wids = sorted(wid_sizes)
    n_shards = min(n_shards, len(wids)) or 1
    groups: list[list[int]] = [[] for _ in range(n_shards)]
    if strategy == "hash":
        for wid in wids:
            groups[_mix64(wid) % n_shards].append(wid)
    else:  # contiguous ranges, greedily balanced on record counts
        total = sum(wid_sizes[w] for w in wids)
        target = total / n_shards
        current = 0
        shard_index = 0
        for position, wid in enumerate(wids):
            remaining_wids = len(wids) - position
            remaining_shards = n_shards - shard_index
            # never let trailing shards starve: leave one wid per shard
            must_advance = remaining_wids == remaining_shards
            over_target = current >= target and groups[shard_index]
            if (must_advance or over_target) and shard_index < n_shards - 1:
                if groups[shard_index]:
                    shard_index += 1
                    current = 0
            groups[shard_index].append(wid)
            current += wid_sizes[wid]
    return [tuple(group) for group in groups if group]


def _wid_sizes(source: "LogView | LogStore") -> dict[int, int]:
    if isinstance(source, LogStore):
        return source.wid_record_counts()
    # any LogView (object-row Log, ColumnarLog, ...) answers through the
    # protocol surface only
    return {wid: len(source.wid_slice(wid)) for wid in source.wids}


def plan_shards(
    source: "LogView | LogStore", n_shards: int, *, strategy: str = "hash"
) -> ShardPlan:
    """Partition ``source`` into up to ``n_shards`` wid-disjoint shards.

    Accepts any read-only :class:`~repro.core.view.LogView` (the
    object-row :class:`~repro.core.model.Log`, a
    :class:`~repro.columnar.ColumnarLog`, ...) or a live
    :class:`~repro.logstore.store.LogStore` (sharded directly from its
    append buffer, without a full validated snapshot).  Shards that would
    be empty (more shards than instances) are dropped, so the returned
    plan may hold fewer than ``n_shards`` shards; it always covers every
    record exactly once (:meth:`ShardPlan.verify_lossless`).
    """
    sizes = _wid_sizes(source)
    if not sizes:
        raise ReproError("cannot shard an empty log")
    groups = assign_wids(sizes, n_shards, strategy)

    # one pass over the records, routing each to its shard
    shard_of: dict[int, int] = {}
    for index, group in enumerate(groups):
        for wid in group:
            shard_of[wid] = index
    buckets: list[list[LogRecord]] = [[] for _ in groups]
    records: Iterable[LogRecord] = source
    total = 0
    for record in records:
        buckets[shard_of[record.wid]].append(record)
        total += 1
    # shard logs inherit the source's cache provenance (never as full
    # snapshots), so per-wid memo entries are shared between sharded and
    # serial evaluation of the same store
    epoch, lineage = source.epoch, source.lineage
    shards = tuple(
        Shard(
            index=i,
            wids=groups[i],
            log=Log(
                buckets[i],
                validate=False,
                epoch=epoch,
                lineage=lineage,
                snapshot=False,
            ),
        )
        for i in range(len(groups))
    )
    return ShardPlan(strategy=strategy, shards=shards, total_records=total)

"""Picklable per-shard evaluation entry points.

The process backend ships work to pool workers by pickling; everything
here is therefore module-level and built from picklable pieces only
(frozen dataclasses, :class:`~repro.core.model.Log`, patterns).  Workers
run without a metrics registry — counters cross back inside the returned
:class:`~repro.core.eval.base.EvaluationStats` and are published once by
the caller — and with a private :class:`~repro.obs.tracer.Tracer` when
tracing is requested, whose root span rides home in the outcome for
:func:`~repro.obs.tracer.merge_span_trees`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ReproError
from repro.core.eval.base import Engine, EvaluationStats
from repro.core.governor import CancelToken, QueryContext, ResourceGovernor
from repro.core.incident import Incident
from repro.core.model import Log
from repro.core.pattern import Pattern
from repro.obs.tracer import Span, Tracer

__all__ = ["EngineConfig", "ShardTask", "ShardOutcome", "evaluate_shard"]

#: Engine names accepted by :class:`EngineConfig`, beyond the ``ENGINES``
#: registry: the incremental evaluator is not a batch ``Engine`` subclass
#: but replays a shard through its streaming path.
INCREMENTAL = "incremental"


@dataclass(frozen=True)
class EngineConfig:
    """A picklable recipe for one evaluation engine.

    Engine *instances* hold tracers and metrics registries that must not
    cross process boundaries, so workers receive this recipe and build a
    fresh engine locally.
    """

    name: str = "indexed"
    max_incidents: int | None = None

    def build(
        self,
        *,
        tracer: Tracer | None = None,
        governor: ResourceGovernor | None = None,
    ) -> Engine:
        from repro.core.query import ENGINES

        try:
            cls = ENGINES[self.name]
        except KeyError:
            raise ReproError(
                f"unknown engine {self.name!r}; available: "
                f"{sorted(ENGINES) + [INCREMENTAL]}"
            ) from None
        return cls(
            max_incidents=self.max_incidents, tracer=tracer, governor=governor
        )


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: evaluate ``pattern`` over one shard's log.

    ``mode`` selects what the worker computes:

    * ``"evaluate"`` — the full incident list (canonically sorted);
    * ``"count"`` — only the incident count (engines use the counting DP
      where it applies, so no incident crosses back).

    ``ctx`` carries the query's identity and budgets
    (:class:`~repro.core.governor.QueryContext` — frozen and picklable,
    with an *absolute* deadline so process workers observe the same
    cutoff as the parent).  ``cancel`` is the in-process sibling
    cancellation token; it is never set on tasks bound for a process
    pool (events do not pickle — process shards self-enforce via the
    absolute deadline and ``cancel_futures``).  With ``journal`` true
    the worker records an ``evaluate`` journal event and ships it home
    in the outcome as a plain dict.
    """

    shard_index: int
    log: Log
    pattern: Pattern
    engine: EngineConfig = field(default_factory=EngineConfig)
    mode: str = "evaluate"
    trace: bool = False
    ctx: QueryContext | None = None
    cancel: CancelToken | None = field(default=None, compare=False)
    journal: bool = False


@dataclass(frozen=True)
class ShardOutcome:
    """What one worker sends back for one shard.

    ``events`` holds the worker's journal events as plain picklable
    dicts (built with :func:`repro.obs.journal.make_event`); the parent
    executor re-sequences them into the live journal so a parallel run
    stitches into one query record.
    """

    shard_index: int
    incidents: tuple[Incident, ...]
    count: int
    stats: EvaluationStats
    span: Span | None = None
    events: tuple[dict, ...] = ()


def _shard_governor(task: ShardTask) -> ResourceGovernor | None:
    """The worker-local governor for this shard, or None ungoverned."""
    if task.ctx is None:
        return None
    return ResourceGovernor.from_context(task.ctx, cancel=task.cancel)


def _shard_event(
    task: ShardTask, stats: EvaluationStats, count: int, wall_ms: float, cpu_ms: float
) -> tuple[dict, ...]:
    """The worker's ``evaluate`` journal event (empty when not journaling)."""
    if not task.journal or task.ctx is None:
        return ()
    from repro.obs.journal import make_event

    event: dict[str, Any] = make_event(
        "evaluate",
        query_id=task.ctx.query_id,
        trace_id=task.ctx.trace_id,
        shard=task.shard_index,
        engine=task.engine.name,
        mode=task.mode,
        records=len(task.log),
        pairs=stats.pairs_examined,
        incidents=count,
        wall_ms=wall_ms,
        cpu_ms=cpu_ms,
    )
    return (event,)


def evaluate_shard(task: ShardTask) -> ShardOutcome:
    """Evaluate one shard; the module-level function handed to backends.

    Runs in the worker process (or inline, for the serial and thread
    backends).  The shard log has original ``lsn`` values, so the
    returned incidents are identical — same identity keys, same canonical
    sort position — to the ones a whole-log evaluation produces for the
    shard's wids.

    When the task carries a governed :class:`QueryContext`, the worker
    builds a local :class:`~repro.core.governor.ResourceGovernor` — the
    typed budget error it raises propagates to the caller (picklable by
    construction), and the remaining shards are cancelled there.
    """
    tracer = Tracer() if task.trace else None
    governor = _shard_governor(task)
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if task.engine.name == INCREMENTAL:
        return _evaluate_incremental(task, tracer, governor, wall0, cpu0)
    engine = task.engine.build(tracer=tracer, governor=governor)
    if task.mode == "count":
        count = engine.count(task.log, task.pattern)
        incidents: tuple[Incident, ...] = ()
    elif task.mode == "evaluate":
        incidents = tuple(engine.evaluate(task.log, task.pattern))
        count = len(incidents)
    else:
        raise ReproError(f"unknown shard mode {task.mode!r}")
    stats = engine.last_stats or EvaluationStats()
    wall_ms = (time.perf_counter() - wall0) * 1000.0
    cpu_ms = (time.process_time() - cpu0) * 1000.0
    return ShardOutcome(
        shard_index=task.shard_index,
        incidents=incidents,
        count=count,
        stats=stats,
        span=tracer.last_root if tracer is not None else None,
        events=_shard_event(task, stats, count, wall_ms, cpu_ms),
    )


def _evaluate_incremental(
    task: ShardTask,
    tracer: Tracer | None,
    governor: ResourceGovernor | None = None,
    wall0: float = 0.0,
    cpu0: float = 0.0,
) -> ShardOutcome:
    """Replay the shard through the streaming evaluator.

    Shard logs keep whole instances in original order, so the stream
    invariants (ascending ``lsn``, per-instance consecutive ``is_lsn``)
    hold and the accumulated state equals the batch ``incL``.
    """
    from repro.core.eval.incremental import IncrementalEvaluator

    evaluator = IncrementalEvaluator(
        task.pattern,
        task.log,
        max_incidents=task.engine.max_incidents,
        tracer=tracer,
        governor=governor,
    )
    incidents = tuple(evaluator.incidents())
    wall_ms = (time.perf_counter() - wall0) * 1000.0
    cpu_ms = (time.process_time() - cpu0) * 1000.0
    return ShardOutcome(
        shard_index=task.shard_index,
        incidents=() if task.mode == "count" else incidents,
        count=len(incidents),
        stats=evaluator.stats,
        span=tracer.last_root if tracer is not None else None,
        events=_shard_event(task, evaluator.stats, len(incidents), wall_ms, cpu_ms),
    )

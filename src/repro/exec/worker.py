"""Picklable per-shard evaluation entry points.

The process backend ships work to pool workers by pickling; everything
here is therefore module-level and built from picklable pieces only
(frozen dataclasses, :class:`~repro.core.model.Log`, patterns).  Workers
run without a metrics registry — counters cross back inside the returned
:class:`~repro.core.eval.base.EvaluationStats` and are published once by
the caller — and with a private :class:`~repro.obs.tracer.Tracer` when
tracing is requested, whose root span rides home in the outcome for
:func:`~repro.obs.tracer.merge_span_trees`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ReproError
from repro.core.eval.base import Engine, EvaluationStats
from repro.core.incident import Incident
from repro.core.model import Log
from repro.core.pattern import Pattern
from repro.obs.tracer import Span, Tracer

__all__ = ["EngineConfig", "ShardTask", "ShardOutcome", "evaluate_shard"]

#: Engine names accepted by :class:`EngineConfig`, beyond the ``ENGINES``
#: registry: the incremental evaluator is not a batch ``Engine`` subclass
#: but replays a shard through its streaming path.
INCREMENTAL = "incremental"


@dataclass(frozen=True)
class EngineConfig:
    """A picklable recipe for one evaluation engine.

    Engine *instances* hold tracers and metrics registries that must not
    cross process boundaries, so workers receive this recipe and build a
    fresh engine locally.
    """

    name: str = "indexed"
    max_incidents: int | None = None

    def build(self, *, tracer: Tracer | None = None) -> Engine:
        from repro.core.query import ENGINES

        try:
            cls = ENGINES[self.name]
        except KeyError:
            raise ReproError(
                f"unknown engine {self.name!r}; available: "
                f"{sorted(ENGINES) + [INCREMENTAL]}"
            ) from None
        return cls(max_incidents=self.max_incidents, tracer=tracer)


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: evaluate ``pattern`` over one shard's log.

    ``mode`` selects what the worker computes:

    * ``"evaluate"`` — the full incident list (canonically sorted);
    * ``"count"`` — only the incident count (engines use the counting DP
      where it applies, so no incident crosses back).
    """

    shard_index: int
    log: Log
    pattern: Pattern
    engine: EngineConfig = field(default_factory=EngineConfig)
    mode: str = "evaluate"
    trace: bool = False


@dataclass(frozen=True)
class ShardOutcome:
    """What one worker sends back for one shard."""

    shard_index: int
    incidents: tuple[Incident, ...]
    count: int
    stats: EvaluationStats
    span: Span | None = None


def evaluate_shard(task: ShardTask) -> ShardOutcome:
    """Evaluate one shard; the module-level function handed to backends.

    Runs in the worker process (or inline, for the serial and thread
    backends).  The shard log has original ``lsn`` values, so the
    returned incidents are identical — same identity keys, same canonical
    sort position — to the ones a whole-log evaluation produces for the
    shard's wids.
    """
    tracer = Tracer() if task.trace else None
    if task.engine.name == INCREMENTAL:
        return _evaluate_incremental(task, tracer)
    engine = task.engine.build(tracer=tracer)
    if task.mode == "count":
        count = engine.count(task.log, task.pattern)
        incidents: tuple[Incident, ...] = ()
    elif task.mode == "evaluate":
        incidents = tuple(engine.evaluate(task.log, task.pattern))
        count = len(incidents)
    else:
        raise ReproError(f"unknown shard mode {task.mode!r}")
    stats = engine.last_stats or EvaluationStats()
    return ShardOutcome(
        shard_index=task.shard_index,
        incidents=incidents,
        count=count,
        stats=stats,
        span=tracer.last_root if tracer is not None else None,
    )


def _evaluate_incremental(task: ShardTask, tracer: Tracer | None) -> ShardOutcome:
    """Replay the shard through the streaming evaluator.

    Shard logs keep whole instances in original order, so the stream
    invariants (ascending ``lsn``, per-instance consecutive ``is_lsn``)
    hold and the accumulated state equals the batch ``incL``.
    """
    from repro.core.eval.incremental import IncrementalEvaluator

    evaluator = IncrementalEvaluator(
        task.pattern,
        task.log,
        max_incidents=task.engine.max_incidents,
        tracer=tracer,
    )
    incidents = tuple(evaluator.incidents())
    return ShardOutcome(
        shard_index=task.shard_index,
        incidents=() if task.mode == "count" else incidents,
        count=len(incidents),
        stats=evaluator.stats,
        span=tracer.last_root if tracer is not None else None,
    )

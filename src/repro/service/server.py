"""The socket layer: stdlib threaded HTTP over :class:`QueryService`.

One :class:`~http.server.ThreadingHTTPServer` (daemon threads, one per
connection) adapts HTTP to :meth:`QueryService.dispatch`.  Everything
interesting — routing, admission, clamping, journaling, error mapping —
lives transport-side in :mod:`repro.service.handlers`; this module only
reads bodies (enforcing the 413 cap *before* buffering unbounded input),
writes responses with explicit ``Content-Length``, and wires shutdown.

:func:`serve` is the blocking entry point the CLI uses: it installs
SIGINT/SIGTERM handlers that drain the service (new work → 503), stop
the listener, and flush the journal sink — a clean shutdown leaves a
valid journal artifact behind.
"""

from __future__ import annotations

import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable

from repro.service.errors import payload_too_large
from repro.service.handlers import QueryService, ServiceResponse, _error_response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.config import ServiceConfig

__all__ = ["ServiceServer", "serve"]


class _Handler(BaseHTTPRequestHandler):
    """Byte adapter: one request in, one :class:`ServiceResponse` out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"
    #: injected by :class:`ServiceServer`
    service: QueryService

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the journal and /metrics are the observability surface

    def _read_body(self) -> bytes | None:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return None
        try:
            length = int(length_header)
        except ValueError:
            return None
        limit = self.service.config.max_body_bytes
        if length > limit:
            raise payload_too_large(length, limit)
        return self.rfile.read(length) if length > 0 else b""

    def _respond(self, response: ServiceResponse) -> None:
        body = response.body()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _handle(self, method: str) -> None:
        try:
            body = self._read_body()
        except Exception as exc:  # 413 (or any read failure surfaced as it)
            from repro.service.errors import ServiceError

            if isinstance(exc, ServiceError):
                self._respond(_error_response(exc))
            else:
                self._respond(
                    _error_response(
                        ServiceError(
                            "failed to read request body",
                            status=400,
                            code="bad_request",
                        )
                    )
                )
            return
        self._respond(self.service.dispatch(method, self.path, body))

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802 - http.server contract
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server contract
        self._handle("DELETE")


class ServiceServer:
    """A running (or startable) daemon around one :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        *,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        self.service = service
        bind_host = host if host is not None else service.config.host
        bind_port = port if port is not None else service.config.port
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self._httpd = ThreadingHTTPServer((bind_host, bind_port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        """The bound port (resolved when configured port was 0)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve from a background thread (tests, embedding)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain, stop the listener, flush the journal (idempotent)."""
        self.service.drain()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(
    service: QueryService,
    *,
    host: str | None = None,
    port: int | None = None,
    announce: Callable[[str], None] | None = None,
) -> int:
    """Run the daemon until SIGINT/SIGTERM; returns the exit code.

    The signal handler only sets an event — drain, listener stop and
    journal flush run on the main thread after the wait, so shutdown
    work never happens in signal context.
    """
    server = ServiceServer(service, host=host, port=port)
    stop = threading.Event()

    def _signalled(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _signalled)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        server.start()
        if announce is not None:
            announce(server.url)
        stop.wait()
    finally:
        server.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0

"""Transport-independent request handling for the query daemon.

:class:`QueryService` is the whole service minus the sockets: it owns
the :class:`~repro.service.catalog.StoreCatalog`, the shared
:class:`~repro.cache.manager.QueryCache`, the
:class:`~repro.obs.metrics.MetricsRegistry`, the optional
:class:`~repro.obs.journal.QueryJournal`, and the
:class:`~repro.service.admission.AdmissionController`, and routes one
``(method, path, body)`` triple to one :class:`ServiceResponse`.  The
HTTP layer (:mod:`repro.service.server`) is a thin byte adapter over
:meth:`QueryService.dispatch`; tests and the bench registry call
``dispatch`` directly and exercise the identical code path.

Request lifecycle of an evaluation endpoint (``/v1/query``,
``/v1/batch``, ``/v1/explain``, ``/v1/analyze``):

1. schema-validate the body (:mod:`repro.service.schemas`, 400 on
   violation);
2. clamp the requested options against the server ceilings
   (:meth:`~repro.service.config.ServiceConfig.clamp`);
3. take an admission slot (429 when saturated);
4. mint a :class:`~repro.core.governor.QueryContext` — its
   ``query_id``/``trace_id`` are echoed as ``X-Query-Id`` /
   ``X-Trace-Id`` response headers and stamp the journal lifecycle;
5. evaluate under the governor; map kills and library errors through
   :func:`~repro.service.errors.map_exception` (the server survives,
   the client gets structured JSON with partial stats).

Anything not mapped there becomes an opaque 500 — internal details
never leak onto the wire.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping
from urllib.parse import parse_qs

from repro import __version__
from repro.cache.manager import QueryCache
from repro.cache.policy import CachePolicy
from repro.core.errors import LogStoreError, ReproError
from repro.core.governor import QueryContext, new_query_id, new_trace_id
from repro.core.options import EngineOptions
from repro.core.query import Query
from repro.obs.live import SloEngine, WindowedAggregator
from repro.obs.log import get_logger
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from repro.service.admission import AdmissionController
from repro.service.catalog import StoreCatalog
from repro.service.config import ClampedOptions, ServiceConfig
from repro.service.errors import (
    ServiceError,
    map_exception,
    method_not_allowed,
    not_found,
    stats_to_dict,
    unavailable,
)
from repro.service.inflight import InflightEntry, InflightRegistry
from repro.service.schemas import (
    decode_json_body,
    parse_analyze_request,
    parse_append_request,
    parse_batch_request,
    parse_explain_request,
    parse_lint_request,
    parse_query_request,
    parse_window_param,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import Log
    from repro.obs.journal import QueryJournal, RunRecorder

__all__ = ["QueryService", "ServiceResponse"]

#: The structured access-log channel (one JSON line per request when
#: :attr:`ServiceConfig.access_log` is on).
_ACCESS_LOG = get_logger("service.access")


@dataclass
class ServiceResponse:
    """One rendered response: status, JSON payload (or raw text), headers.

    ``media_type`` overrides the content type the transport sends (the
    dashboard serves HTML); without it, ``text`` responses use the
    Prometheus 0.0.4 type and payload responses JSON.  The encoded body
    is cached — telemetry measures response sizes, so the transport
    must not pay a second encode.
    """

    status: int
    payload: Any = None
    text: str | None = None
    headers: dict[str, str] = field(default_factory=dict)
    media_type: str | None = None
    _encoded: bytes | None = field(default=None, repr=False, compare=False)

    @property
    def content_type(self) -> str:
        if self.media_type is not None:
            return self.media_type
        if self.text is not None:
            return "text/plain; version=0.0.4; charset=utf-8"
        return "application/json; charset=utf-8"

    def body(self) -> bytes:
        if self._encoded is None:
            if self.text is not None:
                self._encoded = self.text.encode("utf-8")
            else:
                self._encoded = (
                    json.dumps(self.payload, sort_keys=True, default=str) + "\n"
                ).encode("utf-8")
        return self._encoded


class _RequestNote(threading.local):
    """Per-thread attribution scratchpad for the request in flight.

    The evaluation plumbing knows the pattern/store/pairs; the dispatch
    loop owns timing and the single telemetry ingestion point.  A
    thread-local bridges them without touching handler signatures on
    the error unwind path.
    """

    store: str | None = None
    pattern: str | None = None
    pairs: int = 0
    clamped: tuple[str, ...] = ()
    query_id: str | None = None

    def reset(self) -> None:
        self.store = None
        self.pattern = None
        self.pairs = 0
        self.clamped = ()
        self.query_id = None


def _error_response(
    error: ServiceError, *, headers: dict[str, str] | None = None
) -> ServiceResponse:
    merged = dict(headers or {})
    merged.update(error.headers())
    return ServiceResponse(error.status, payload=error.payload(), headers=merged)


class QueryService:
    """The daemon's brain: routing, admission, evaluation, journaling."""

    def __init__(
        self,
        catalog: StoreCatalog,
        config: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        journal: "QueryJournal | None" = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if catalog.metrics is None:
            catalog.metrics = self.metrics
        self.catalog = catalog
        self.journal = journal
        policy = CachePolicy()
        if self.config.cache_bytes is not None:
            policy = policy.with_budget(self.config.cache_bytes)
        self.cache = QueryCache(policy, metrics=self.metrics)
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            queue_timeout_ms=self.config.queue_timeout_ms,
            retry_after_s=self.config.retry_after_s,
            metrics=self.metrics,
        )
        self.inflight = InflightRegistry()
        self.live: WindowedAggregator | None = None
        self.slo: SloEngine | None = None
        if self.config.telemetry:
            self.live = WindowedAggregator(
                bucket_s=self.config.telemetry_bucket_s,
                window_s=self.config.telemetry_window_s,
                top_k=self.config.telemetry_top_k,
            )
            self.slo = SloEngine(self.config.slo_policy(), self.live)
        self._note = _RequestNote()
        self._draining = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        """Refuse new evaluation/append work (503); in-flight finishes."""
        self._draining.set()

    def close(self) -> None:
        """Drain and flush the journal sink (idempotent)."""
        self.drain()
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self, method: str, path: str, body: bytes | None = None
    ) -> ServiceResponse:
        """Route one request; never raises — errors become responses.

        This is also the single telemetry ingestion point: every
        response — success, mapped error, opaque 500 — flows through
        :meth:`_observe` exactly once, so the windowed aggregator, the
        ``service.*`` duration/size histograms and the access log can
        never disagree about what happened.
        """
        started = time.perf_counter()
        method = method.upper()
        path, _, query_string = path.partition("?")
        params: dict[str, list[str]] = (
            parse_qs(query_string) if query_string else {}
        )
        headers = {
            "X-Query-Id": new_query_id(),
            "X-Trace-Id": new_trace_id(),
        }
        note = self._note
        note.reset()
        killed = False
        try:
            response = self._route(
                method, path.rstrip("/") or "/", body, headers, params
            )
        except ServiceError as error:
            killed = error.partial_stats is not None
            response = _error_response(error, headers=headers)
        except Exception as exc:  # noqa: BLE001 - the opaque-500 contract
            try:
                error = map_exception(exc)
            except TypeError:
                error = ServiceError(
                    "internal server error", status=500, code="internal"
                )
            killed = error.partial_stats is not None
            response = _error_response(error, headers=headers)
        self._observe(method, path, response, started, killed=killed)
        return response

    def _route(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str],
        params: Mapping[str, list[str]],
    ) -> ServiceResponse:
        route: Callable[..., ServiceResponse] | None = None
        allowed: tuple[str, ...] = ()
        args: tuple[Any, ...] = ()

        if path == "/healthz":
            route, allowed = self._get_healthz, ("GET",)
        elif path == "/version":
            route, allowed = self._get_version, ("GET",)
        elif path == "/metrics":
            route, allowed = self._get_metrics, ("GET",)
        elif path == "/dashboard":
            route, allowed = self._get_dashboard, ("GET",)
        elif path == "/v1/admin/stats":
            route, allowed = self._get_admin_stats, ("GET",)
            args = (params,)
        elif path == "/v1/admin/slo":
            route, allowed = self._get_admin_slo, ("GET",)
        elif path == "/v1/admin/inflight":
            route, allowed = self._get_admin_inflight, ("GET",)
        elif path.startswith("/v1/admin/inflight/"):
            rest = path[len("/v1/admin/inflight/") :]
            if rest and "/" not in rest:
                route, allowed = self._delete_admin_inflight, ("DELETE",)
                args = (rest,)
        elif path == "/v1/admin/cache":
            route, allowed = self._get_admin_cache, ("GET",)
        elif path == "/v1/logs":
            route, allowed = self._get_logs, ("GET",)
        elif path.startswith("/v1/logs/"):
            rest = path[len("/v1/logs/") :]
            if rest.endswith("/stats") and rest.count("/") == 1:
                route, allowed = self._get_log_stats, ("GET",)
                args = (rest[: -len("/stats")],)
            elif rest.endswith("/records") and rest.count("/") == 1:
                route, allowed = self._post_append, ("POST",)
                args = (rest[: -len("/records")], body)
            elif "/" not in rest and rest:
                route, allowed = self._get_log_stats, ("GET",)
                args = (rest,)
        elif path == "/v1/query":
            route, allowed = self._post_query, ("POST",)
            args = (body, headers)
        elif path == "/v1/batch":
            route, allowed = self._post_batch, ("POST",)
            args = (body, headers)
        elif path == "/v1/lint":
            route, allowed = self._post_lint, ("POST",)
            args = (body,)
        elif path == "/v1/explain":
            route, allowed = self._post_explain, ("POST",)
            args = (body, headers)
        elif path == "/v1/analyze":
            route, allowed = self._post_analyze, ("POST",)
            args = (body, headers)

        if route is None:
            raise not_found(f"no route for {path}")
        if method not in allowed:
            raise method_not_allowed(method, path, allowed)
        response = route(*args)
        for name, value in headers.items():
            response.headers.setdefault(name, value)
        return response

    @staticmethod
    def _endpoint(path: str) -> str:
        """Normalised endpoint label: path parameters become templates so
        label cardinality stays bounded."""
        endpoint = path.rstrip("/") or "/"
        if endpoint.startswith("/v1/logs/"):
            endpoint = (
                "/v1/logs/{name}/records"
                if endpoint.endswith("/records")
                else "/v1/logs/{name}/stats"
            )
        elif endpoint.startswith("/v1/admin/inflight/"):
            endpoint = "/v1/admin/inflight/{query_id}"
        return endpoint

    def _observe(
        self,
        method: str,
        path: str,
        response: ServiceResponse,
        started: float,
        *,
        killed: bool,
    ) -> None:
        """Record one finished request everywhere it is observable."""
        duration_s = time.perf_counter() - started
        endpoint = self._endpoint(path)
        status = response.status
        note = self._note
        self.metrics.counter(
            "service.requests",
            labels={"endpoint": endpoint, "status": str(status)},
        ).inc()
        self.metrics.histogram(
            "service.request_seconds", labels={"endpoint": endpoint}
        ).observe(duration_s)
        self.metrics.histogram(
            "service.response_bytes",
            DEFAULT_SIZE_BUCKETS,
            labels={"endpoint": endpoint},
        ).observe(float(len(response.body())))
        if self.live is not None:
            self.live.observe_request(
                endpoint,
                status,
                duration_s,
                store=note.store,
                pattern=note.pattern,
                pairs=note.pairs,
                killed=killed,
            )
        if self.config.access_log:
            _ACCESS_LOG.info(
                json.dumps(
                    {
                        "method": method,
                        "path": path,
                        "endpoint": endpoint,
                        "status": status,
                        "duration_ms": round(duration_s * 1000.0, 3),
                        "bytes": len(response.body()),
                        "query_id": note.query_id
                        or response.headers.get("X-Query-Id"),
                        "killed": killed,
                        "shed": status == 429,
                        "clamped": list(note.clamped),
                        "store": note.store,
                    },
                    sort_keys=True,
                )
            )

    # ------------------------------------------------------------------
    # plumbing shared by the evaluation endpoints
    # ------------------------------------------------------------------

    def _check_draining(self) -> None:
        if self.draining:
            raise unavailable(
                "server is draining for shutdown",
                retry_after_s=self.config.retry_after_s,
            )

    def _snapshot(self, name: str) -> "Log":
        try:
            return self.catalog.snapshot(name)
        except LogStoreError as exc:
            if "unknown log" in str(exc):
                raise not_found(
                    f"unknown log {name!r}",
                    details={"available": list(self.catalog.names())},
                ) from None
            raise

    def _engine_options(
        self, clamped: ClampedOptions, *, entry: InflightEntry | None = None
    ) -> EngineOptions:
        return EngineOptions(
            engine=clamped.engine,
            optimize=clamped.optimize,
            max_incidents=clamped.max_incidents,
            metrics=self.metrics,
            jobs=clamped.jobs,
            backend=clamped.backend,
            cache=self.cache if clamped.cache else None,
            deadline_ms=clamped.deadline_ms,
            max_pairs=clamped.max_pairs,
            cancel=None if entry is None else entry.cancel,
        )

    def _begin(
        self,
        *,
        pattern: str,
        op: str,
        clamped: ClampedOptions,
        headers: dict[str, str],
    ) -> "tuple[QueryContext, RunRecorder | None]":
        """Mint the request's context and (optional) journal recorder.

        The service journals at the HTTP boundary with its own context;
        the inner :class:`Query` runs journal-free so each request owns
        exactly one submit → finish/killed lifecycle.
        """
        ctx = QueryContext.new(
            deadline_ms=clamped.deadline_ms,
            max_pairs=clamped.max_pairs,
            journal=self.journal is not None,
        )
        headers["X-Query-Id"] = ctx.query_id
        headers["X-Trace-Id"] = ctx.trace_id
        recorder = None
        if self.journal is not None:
            from repro.obs.journal import RunRecorder

            recorder = RunRecorder(self.journal, ctx, pattern=pattern, op=op)
            recorder.submit()
        return ctx, recorder

    def _evaluate(
        self,
        *,
        pattern: str,
        op: str,
        clamped: ClampedOptions,
        headers: dict[str, str],
        body: Callable[[InflightEntry], dict[str, Any]],
        store: str | None = None,
    ) -> ServiceResponse:
        """Run ``body`` under admission control, governor mapping, the
        inflight registry and the journal lifecycle; ``body`` receives
        the request's :class:`InflightEntry` (its cancel token and the
        engine-attachment hook) and returns the success payload."""
        self._check_draining()
        with self.admission.slot():
            ctx, recorder = self._begin(
                pattern=pattern, op=op, clamped=clamped, headers=headers
            )
            note = self._note
            note.pattern = pattern
            note.store = store
            note.clamped = clamped.clamped
            note.query_id = ctx.query_id
            entry = self.inflight.register(ctx, pattern=pattern, op=op, store=store)
            try:
                payload = body(entry)
            except Exception as exc:  # noqa: BLE001 - mapped below
                try:
                    error = map_exception(exc)
                except TypeError:
                    error = ServiceError(
                        "internal server error", status=500, code="internal"
                    )
                note.pairs = int(
                    getattr(error.partial_stats, "pairs_examined", 0) or 0
                )
                if recorder is not None:
                    if error.partial_stats is not None:
                        recorder.killed(
                            exc, store=store, http_status=error.status
                        )
                    else:
                        recorder.finish(
                            stats=None,
                            incidents=0,
                            status_override="error",
                            error=error.code,
                            http_status=error.status,
                            store=store,
                        )
                raise error from exc
            finally:
                self.inflight.remove(ctx.query_id)
            stats_obj = payload.pop("_stats_obj", None)
            note.pairs = int(getattr(stats_obj, "pairs_examined", 0) or 0)
            if recorder is not None:
                recorder.finish(
                    stats=stats_obj,
                    incidents=int(payload.get("count", 0) or 0),
                    endpoint=op,
                    store=store,
                    http_status=200,
                )
            if clamped.clamped:
                payload["clamped"] = list(clamped.clamped)
            return ServiceResponse(200, payload=payload, headers=dict(headers))

    # ------------------------------------------------------------------
    # GET endpoints
    # ------------------------------------------------------------------

    def _get_healthz(self) -> ServiceResponse:
        return ServiceResponse(
            200,
            payload={
                "status": "draining" if self.draining else "ok",
                "version": __version__,
                "stores": len(self.catalog),
                "admission": self.admission.snapshot(),
            },
        )

    def _get_version(self) -> ServiceResponse:
        return ServiceResponse(
            200, payload={"service": "repro.service", "version": __version__}
        )

    def _get_metrics(self) -> ServiceResponse:
        return ServiceResponse(200, text=self.metrics.to_prometheus())

    def _get_logs(self) -> ServiceResponse:
        return ServiceResponse(200, payload={"logs": self.catalog.describe()})

    # ------------------------------------------------------------------
    # the admin plane (auth-free: bind to a trusted network only)
    # ------------------------------------------------------------------
    # Admin endpoints deliberately bypass admission control: when the
    # worker pool is saturated is exactly when an operator needs to see
    # in-flight queries and kill one.

    def _require_live(self) -> WindowedAggregator:
        if self.live is None:
            raise not_found(
                "telemetry is disabled on this server "
                "(ServiceConfig.telemetry=False)"
            )
        return self.live

    def _get_admin_stats(
        self, params: Mapping[str, list[str]]
    ) -> ServiceResponse:
        live = self._require_live()
        window = parse_window_param(
            params,
            default_s=min(300.0, self.config.telemetry_window_s),
            max_s=self.config.telemetry_window_s,
        )
        payload = live.window(window).report()
        payload["observed_total"] = live.observed
        return ServiceResponse(200, payload=payload)

    def _get_admin_slo(self) -> ServiceResponse:
        self._require_live()
        assert self.slo is not None  # established with self.live
        return ServiceResponse(200, payload=self.slo.report())

    def _get_admin_inflight(self) -> ServiceResponse:
        rows = self.inflight.list()
        return ServiceResponse(
            200,
            payload={
                "count": len(rows),
                "queries": rows,
                "cancelled_total": self.inflight.cancelled_total,
            },
        )

    def _delete_admin_inflight(self, query_id: str) -> ServiceResponse:
        entry = self.inflight.request_cancel(
            query_id, reason="killed by operator via DELETE /v1/admin/inflight"
        )
        if entry is None:
            raise not_found(
                f"no in-flight query {query_id!r}",
                details={"inflight": [row["query_id"] for row in self.inflight.list()]},
            )
        self.metrics.counter("service.admin_cancellations").inc()
        return ServiceResponse(
            200,
            payload={
                "query_id": entry.query_id,
                "trace_id": entry.trace_id,
                "cancelled": True,
                "cooperative": True,
                "pattern": entry.pattern,
                "op": entry.op,
                "store": entry.store,
                "elapsed_s": time.time() - entry.started_unix,
                "pairs": entry.pairs_so_far(),
            },
        )

    def _get_admin_cache(self) -> ServiceResponse:
        stats = self.cache.stats()

        def ratio(hits: int, misses: int) -> float:
            total = hits + misses
            return hits / total if total else 0.0

        payload: dict[str, Any] = dict(stats)
        payload["result_hit_ratio"] = ratio(
            stats["result_hits"], stats["result_misses"]
        )
        payload["memo_hit_ratio"] = ratio(stats["memo_hits"], stats["memo_misses"])
        payload["hottest"] = self.cache.hot_keys(limit=10)
        payload["policy"] = {
            "caches_results": self.cache.policy.caches_results,
            "caches_memo": self.cache.policy.caches_memo,
        }
        return ServiceResponse(200, payload=payload)

    def _get_dashboard(self) -> ServiceResponse:
        from repro.service.dashboard import DASHBOARD_HTML

        return ServiceResponse(
            200, text=DASHBOARD_HTML, media_type="text/html; charset=utf-8"
        )

    def _get_log_stats(self, name: str) -> ServiceResponse:
        from repro.logstore.stats import summarize

        store = self._store(name)
        snapshot = self._snapshot(name)
        summary = summarize(snapshot)
        return ServiceResponse(
            200,
            payload={
                "name": name,
                "epoch": store.epoch,
                "lineage": store.lineage,
                "total_records": summary.total_records,
                "instance_count": summary.instance_count,
                "completed_instances": summary.completed_instances,
                "length_min": summary.length_min,
                "length_median": summary.length_median,
                "length_p95": summary.length_p95,
                "length_max": summary.length_max,
                "activity_counts": dict(summary.activity_counts),
                "attribute_names": sorted(summary.attribute_names),
            },
        )

    def _store(self, name: str):
        try:
            return self.catalog.get(name)
        except LogStoreError:
            raise not_found(
                f"unknown log {name!r}",
                details={"available": list(self.catalog.names())},
            ) from None

    # ------------------------------------------------------------------
    # POST endpoints
    # ------------------------------------------------------------------

    def _post_append(self, name: str, body: bytes | None) -> ServiceResponse:
        self._check_draining()
        request = parse_append_request(decode_json_body(body, what="append"))
        self._store(name)  # 404 before any mutation
        result = self.catalog.append_batch(name, request.records)
        return ServiceResponse(200, payload=result)

    def _post_query(
        self, body: bytes | None, headers: dict[str, str]
    ) -> ServiceResponse:
        request = parse_query_request(decode_json_body(body, what="query"))
        clamped = self.config.clamp(request.options)
        snapshot = self._snapshot(request.log)

        def run(entry: InflightEntry) -> dict[str, Any]:
            query = Query(request.pattern, self._engine_options(clamped, entry=entry))
            entry.engine = query.engine
            payload: dict[str, Any] = {
                "log": request.log,
                "pattern": request.pattern,
                "mode": request.mode,
                "epoch": snapshot.epoch,
            }
            if request.mode == "exists":
                payload["exists"] = query.exists(snapshot)
                payload["count"] = int(payload["exists"])
            elif request.mode == "count":
                payload["count"] = query.count(snapshot)
            else:
                incidents = query.run(snapshot)
                rows = incidents.to_rows()
                payload["count"] = len(rows)
                if request.mode == "instances":
                    payload["instances"] = sorted({row["wid"] for row in rows})
                else:
                    limit = request.limit
                    shown = rows if limit is None else rows[:limit]
                    payload["incidents"] = [
                        {**row, "lsns": list(row["lsns"])} for row in shown
                    ]
                    payload["truncated"] = len(shown) < len(rows)
            stats = query.engine.last_stats
            payload["stats"] = stats_to_dict(stats)
            payload["cache_layer"] = query.last_cache_layer
            payload["_stats_obj"] = stats
            return payload

        return self._evaluate(
            pattern=request.pattern,
            op="http.query",
            clamped=clamped,
            headers=headers,
            body=run,
            store=request.log,
        )

    def _post_batch(
        self, body: bytes | None, headers: dict[str, str]
    ) -> ServiceResponse:
        request = parse_batch_request(decode_json_body(body, what="batch"))
        clamped = self.config.clamp(request.options)
        snapshot = self._snapshot(request.log)

        def run(entry: InflightEntry) -> dict[str, Any]:
            outcome = Query.evaluate_batch(
                snapshot,
                list(request.patterns),
                optimize=clamped.optimize,
                analyze=request.analyze,
                jobs=clamped.jobs or 1,
                backend=clamped.backend or "serial",
                max_incidents=clamped.max_incidents,
                metrics=self.metrics,
                cache=self.cache if clamped.cache else None,
                deadline_ms=clamped.deadline_ms,
                max_pairs=clamped.max_pairs,
                cancel=entry.cancel,
            )
            results = []
            for text, incidents in zip(request.patterns, outcome.results):
                rows = incidents.to_rows()
                shown = rows if request.limit is None else rows[: request.limit]
                results.append(
                    {
                        "pattern": text,
                        "count": len(rows),
                        "incidents": [
                            {**row, "lsns": list(row["lsns"])} for row in shown
                        ],
                        "truncated": len(shown) < len(rows),
                    }
                )
            return {
                "log": request.log,
                "epoch": snapshot.epoch,
                "count": sum(item["count"] for item in results),
                "results": results,
                "stats": stats_to_dict(outcome.stats),
                "shared_hits": outcome.shared_hits,
                "cache_hits": outcome.cache_hits,
                "subsumed": outcome.subsumed,
                "proofs": outcome.proofs,
                "backend": outcome.backend,
                "jobs": outcome.jobs,
                "_stats_obj": outcome.stats,
            }

        return self._evaluate(
            pattern=" ; ".join(request.patterns),
            op="http.batch",
            clamped=clamped,
            headers=headers,
            body=run,
            store=request.log,
        )

    def _post_lint(self, body: bytes | None) -> ServiceResponse:
        from repro.core.lint import Linter, Severity
        from repro.core.parser import parse_with_spans

        request = parse_lint_request(decode_json_body(body, what="lint"))
        parsed = parse_with_spans(request.pattern)  # 400 via map_exception
        log = self._snapshot(request.log) if request.log is not None else None
        linter = Linter.for_context(log=log)
        diagnostics = linter.lint(parsed)
        return ServiceResponse(
            200,
            payload={
                "pattern": request.pattern,
                "ok": not any(d.severity == Severity.ERROR for d in diagnostics),
                "diagnostics": [d.to_dict() for d in diagnostics],
            },
        )

    def _post_explain(
        self, body: bytes | None, headers: dict[str, str]
    ) -> ServiceResponse:
        request = parse_explain_request(decode_json_body(body, what="explain"))
        clamped = self.config.clamp(request.options)
        snapshot = self._snapshot(request.log)

        def run(entry: InflightEntry) -> dict[str, Any]:
            query = Query(request.pattern, self._engine_options(clamped, entry=entry))
            entry.engine = query.engine
            plan = query.plan(snapshot)
            return {
                "log": request.log,
                "pattern": request.pattern,
                "optimized": str(plan.optimized),
                "changed": plan.optimized != query.pattern,
                "explain": query.explain(snapshot),
                "count": 0,
            }

        return self._evaluate(
            pattern=request.pattern,
            op="http.explain",
            clamped=clamped,
            headers=headers,
            body=run,
            store=request.log,
        )

    def _post_analyze(
        self, body: bytes | None, headers: dict[str, str]
    ) -> ServiceResponse:
        from repro.analysis import PatternProver, default_prover
        from repro.core.parser import parse

        request = parse_analyze_request(decode_json_body(body, what="analyze"))
        clamped = self.config.clamp({})

        def run(entry: InflightEntry) -> dict[str, Any]:
            prover = (
                PatternProver(max_states=request.max_states)
                if request.max_states is not None
                else default_prover()
            )
            p, q = parse(request.p), parse(request.q)
            if request.op == "equivalent":
                witness = prover.witness(p, q)
            else:
                witness = prover.containment_witness(p, q)
            return {
                "op": request.op,
                "p": request.p,
                "q": request.q,
                "result": witness is None,
                "witness": None if witness is None else witness.format(),
                "count": 0,
            }

        return self._evaluate(
            pattern=f"{request.p} ~ {request.q}",
            op="http.analyze",
            clamped=clamped,
            headers=headers,
            body=run,
        )

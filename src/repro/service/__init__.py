"""``repro.service`` — the long-running HTTP query daemon.

The paper frames incident-pattern querying as an online capability next
to the workflow engine, not a batch script; this package is that shape:
a dependency-free (stdlib-only) daemon serving ``POST /v1/query`` and
friends over a catalog of named live :class:`~repro.logstore.LogStore`
objects, with admission control, per-request option clamping, governor
kills as structured JSON errors, and a journaled lifecycle per request.

Layering (each module usable on its own):

- :mod:`repro.service.config` — :class:`ServiceConfig` ceilings + clamping
- :mod:`repro.service.errors` — the wire error contract
- :mod:`repro.service.schemas` — request validation
- :mod:`repro.service.catalog` — named stores (:class:`StoreCatalog`)
- :mod:`repro.service.admission` — bounded pool + shed queue
- :mod:`repro.service.inflight` — live-query registry + cooperative kill
- :mod:`repro.service.handlers` — :class:`QueryService` (transport-free)
- :mod:`repro.service.dashboard` — the zero-dependency HTML admin UI
- :mod:`repro.service.server` — the stdlib HTTP adapter + :func:`serve`

The admin plane (``/v1/admin/*``, ``/dashboard``) surfaces the live
windowed telemetry of :mod:`repro.obs.live`; see ``docs/SERVICE.md``
for the endpoint reference and curl examples.
"""

from repro.service.admission import AdmissionController
from repro.service.catalog import StoreCatalog
from repro.service.config import ClampedOptions, ServiceConfig
from repro.service.errors import ServiceError, map_exception
from repro.service.handlers import QueryService, ServiceResponse
from repro.service.inflight import InflightEntry, InflightRegistry
from repro.service.server import ServiceServer, serve

__all__ = [
    "AdmissionController",
    "ClampedOptions",
    "InflightEntry",
    "InflightRegistry",
    "QueryService",
    "ServiceConfig",
    "ServiceError",
    "ServiceResponse",
    "ServiceServer",
    "StoreCatalog",
    "map_exception",
    "serve",
]

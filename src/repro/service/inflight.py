"""Live-query introspection: who is evaluating right now, and the hook
to kill them.

Every evaluation request the service admits registers an
:class:`InflightEntry` for its lifetime.  The entry carries the query's
identity (``query_id``/``trace_id``), what it is doing (pattern, op,
store), when it started, and — the operational teeth — a shared
:class:`~repro.core.governor.CancelToken` plus a reference to the live
engine, whose :class:`~repro.core.governor.ResourceGovernor` exposes
checkpoint progress (``pairs_seen``).  ``GET /v1/admin/inflight`` lists
snapshots; ``DELETE /v1/admin/inflight/{query_id}`` sets the token, and
the run dies at its next cooperative checkpoint with the standard
structured-cancellation contract (503 ``unavailable`` + partial
:class:`~repro.core.eval.base.EvaluationStats`, journal ``killed``
event) — no thread is ever killed, no engine invariant is bypassed.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any

from repro.core.governor import CancelToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eval.base import Engine
    from repro.core.governor import QueryContext

__all__ = ["InflightEntry", "InflightRegistry"]


class InflightEntry:
    """One admitted, still-running query."""

    __slots__ = (
        "query_id",
        "trace_id",
        "pattern",
        "op",
        "store",
        "started_unix",
        "cancel",
        "engine",
        "cancelled_by_admin",
    )

    def __init__(
        self,
        *,
        query_id: str,
        trace_id: str,
        pattern: str,
        op: str,
        store: str | None,
        started_unix: float,
    ) -> None:
        self.query_id = query_id
        self.trace_id = trace_id
        self.pattern = pattern
        self.op = op
        self.store = store
        self.started_unix = started_unix
        self.cancel = CancelToken()
        #: attached by the handler once the Query's engine exists; its
        #: governor carries live checkpoint progress
        self.engine: "Engine | None" = None
        self.cancelled_by_admin = False

    def pairs_so_far(self) -> int:
        """Best-effort pairs examined so far, read lock-free from the
        engine's governor (refreshed at every cooperative checkpoint)."""
        engine = self.engine
        if engine is None:
            return 0
        governor = getattr(engine, "governor", None)
        if governor is not None:
            return int(getattr(governor, "pairs_seen", 0))
        stats = getattr(engine, "last_stats", None)
        return int(getattr(stats, "pairs_examined", 0) or 0)

    def snapshot(self, *, now: float | None = None) -> dict[str, Any]:
        when = time.time() if now is None else now
        return {
            "query_id": self.query_id,
            "trace_id": self.trace_id,
            "pattern": self.pattern,
            "op": self.op,
            "store": self.store,
            "started_unix": self.started_unix,
            "elapsed_s": max(0.0, when - self.started_unix),
            "pairs": self.pairs_so_far(),
            "cancelling": self.cancel.is_set(),
        }


class InflightRegistry:
    """Thread-safe registry of every in-flight evaluation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, InflightEntry] = {}
        self.cancelled_total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def register(
        self,
        ctx: "QueryContext",
        *,
        pattern: str,
        op: str,
        store: str | None = None,
    ) -> InflightEntry:
        entry = InflightEntry(
            query_id=ctx.query_id,
            trace_id=ctx.trace_id,
            pattern=pattern,
            op=op,
            store=store,
            started_unix=time.time(),
        )
        with self._lock:
            self._entries[entry.query_id] = entry
        return entry

    def remove(self, query_id: str) -> None:
        with self._lock:
            self._entries.pop(query_id, None)

    def get(self, query_id: str) -> InflightEntry | None:
        with self._lock:
            return self._entries.get(query_id)

    def list(self, *, now: float | None = None) -> list[dict[str, Any]]:
        """Snapshots of every live entry, longest-running first."""
        with self._lock:
            entries = list(self._entries.values())
        rows = [entry.snapshot(now=now) for entry in entries]
        rows.sort(key=lambda row: (-row["elapsed_s"], row["query_id"]))
        return rows

    def request_cancel(self, query_id: str, *, reason: str) -> InflightEntry | None:
        """Set the entry's token; returns the entry, or None if unknown.

        The kill is cooperative: this only flips the flag, the running
        query raises at its next governor checkpoint.
        """
        with self._lock:
            entry = self._entries.get(query_id)
            if entry is None:
                return None
            entry.cancelled_by_admin = True
            self.cancelled_total += 1
        entry.cancel.set(reason)
        return entry

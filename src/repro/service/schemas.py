"""Wire-request schemas and validators for the query service.

Dependency-free structural validation in the style of
:mod:`repro.obs.export`: each ``parse_*_request`` function takes the
decoded JSON body, rejects anything outside the schema with the
service's structured 400 (:func:`repro.service.errors.bad_request`,
carrying lint-style diagnostics), and returns a typed request value.

The validators are strict on purpose: **unknown fields are errors**, not
ignored — a typo like ``"dedline_ms"`` must fail loudly rather than
silently run without a deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.service.errors import ServiceError, bad_request

__all__ = [
    "QueryRequest",
    "BatchRequest",
    "LintRequest",
    "ExplainRequest",
    "AnalyzeRequest",
    "AppendRequest",
    "AppendRecord",
    "QUERY_MODES",
    "ANALYZE_OPS",
    "parse_query_request",
    "parse_batch_request",
    "parse_lint_request",
    "parse_explain_request",
    "parse_analyze_request",
    "parse_append_request",
    "parse_window_param",
]

#: What ``POST /v1/query`` may compute.
QUERY_MODES: tuple[str, ...] = ("incidents", "count", "exists", "instances")

#: Decision procedures exposed by ``POST /v1/analyze``.
ANALYZE_OPS: tuple[str, ...] = ("equivalent", "contains")

#: The per-request engine knobs accepted inside ``options`` and the
#: validator tag of each (see ``_CHECKS``).
OPTION_FIELDS: dict[str, str] = {
    "engine": "str",
    "optimize": "bool",
    "max_incidents": "posint",
    "jobs": "posint",
    "backend": "str",
    "deadline_ms": "posnum",
    "max_pairs": "posint",
    "cache": "bool",
}


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


_CHECKS: dict[str, tuple[Any, str]] = {
    "str": (lambda v: isinstance(v, str) and bool(v), "a non-empty string"),
    "bool": (lambda v: isinstance(v, bool), "a boolean"),
    "int": (
        lambda v: isinstance(v, int) and not isinstance(v, bool),
        "an integer",
    ),
    "posint": (
        lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 1,
        "a positive integer",
    ),
    "nonnegint": (
        lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
        "a non-negative integer",
    ),
    "posnum": (lambda v: _is_num(v) and v > 0, "a positive number"),
    "object": (lambda v: isinstance(v, Mapping), "an object"),
    "list": (lambda v: isinstance(v, list), "an array"),
}


def _diagnostic(message: str, *, field_name: str | None = None) -> dict[str, Any]:
    """One lint-style finding for a 400 body (mirrors
    :meth:`repro.core.lint.Diagnostic.to_dict`)."""
    return {
        "code": "SVC400",
        "severity": "error",
        "message": message if field_name is None else f"{field_name!r}: {message}",
        "span": None,
        "suggestion": None,
    }


class _Validator:
    """Accumulates findings over one request body, then raises once."""

    def __init__(self, doc: Any, *, what: str) -> None:
        self.what = what
        self.findings: list[dict[str, Any]] = []
        if not isinstance(doc, Mapping):
            raise bad_request(
                f"{what} body must be a JSON object, got "
                f"{type(doc).__name__}",
                details={"diagnostics": [_diagnostic("body must be an object")]},
            )
        self.doc: Mapping[str, Any] = doc

    def reject_unknown(self, allowed: tuple[str, ...]) -> None:
        unknown = sorted(set(self.doc) - set(allowed))
        for name in unknown:
            self.findings.append(
                _diagnostic(
                    f"unknown field (allowed: {', '.join(sorted(allowed))})",
                    field_name=name,
                )
            )

    def require(self, name: str, tag: str) -> Any:
        if name not in self.doc:
            self.findings.append(_diagnostic("required field is missing", field_name=name))
            return None
        return self._checked(name, self.doc[name], tag)

    def optional(self, name: str, tag: str, default: Any = None) -> Any:
        if name not in self.doc or self.doc[name] is None:
            return default
        return self._checked(name, self.doc[name], tag)

    def _checked(self, name: str, value: Any, tag: str) -> Any:
        check, expected = _CHECKS[tag]
        if not check(value):
            self.findings.append(
                _diagnostic(f"must be {expected}", field_name=name)
            )
            return None
        return value

    def choice(self, name: str, choices: tuple[str, ...], default: str) -> str:
        value = self.optional(name, "str", default)
        if value is not None and value not in choices:
            self.findings.append(
                _diagnostic(
                    f"must be one of {', '.join(choices)}", field_name=name
                )
            )
            return default
        return str(value)

    def options(self, name: str = "options") -> dict[str, Any]:
        """The validated ``options`` sub-object (unknown fields rejected)."""
        raw = self.optional(name, "object", {})
        if not raw:
            return {}
        validated: dict[str, Any] = {}
        for key in sorted(raw):
            tag = OPTION_FIELDS.get(key)
            if tag is None:
                self.findings.append(
                    _diagnostic(
                        f"unknown option (allowed: "
                        f"{', '.join(sorted(OPTION_FIELDS))})",
                        field_name=f"{name}.{key}",
                    )
                )
                continue
            value = self._checked(f"{name}.{key}", raw[key], tag)
            if value is not None:
                validated[key] = value
        return validated

    def finish(self) -> None:
        """Raise the accumulated 400, if any finding was recorded."""
        if self.findings:
            raise bad_request(
                f"invalid {self.what} request "
                f"({len(self.findings)} schema violation(s))",
                details={"diagnostics": self.findings},
            )


# ---------------------------------------------------------------------------
# request types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """Validated body of ``POST /v1/query``."""

    log: str
    pattern: str
    mode: str = "incidents"
    limit: int | None = None
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class BatchRequest:
    """Validated body of ``POST /v1/batch``."""

    log: str
    patterns: tuple[str, ...]
    limit: int | None = None
    analyze: bool = True
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class LintRequest:
    """Validated body of ``POST /v1/lint``."""

    pattern: str
    log: str | None = None


@dataclass(frozen=True)
class ExplainRequest:
    """Validated body of ``POST /v1/explain``."""

    log: str
    pattern: str
    options: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class AnalyzeRequest:
    """Validated body of ``POST /v1/analyze``."""

    op: str
    p: str
    q: str
    max_states: int | None = None


@dataclass(frozen=True)
class AppendRecord:
    """One record operation of an append request.

    ``activity`` ``"START"`` opens an instance (``wid`` optional — omit
    for an auto-assigned id), ``"END"`` closes ``wid``; anything else
    appends the activity to the open instance ``wid``.
    """

    activity: str
    wid: int | None = None
    attrs_in: dict[str, Any] | None = None
    attrs_out: dict[str, Any] | None = None


@dataclass(frozen=True)
class AppendRequest:
    """Validated body of ``POST /v1/logs/{name}/records``."""

    records: tuple[AppendRecord, ...]


# ---------------------------------------------------------------------------
# parsers
# ---------------------------------------------------------------------------


def parse_query_request(doc: Any) -> QueryRequest:
    v = _Validator(doc, what="query")
    v.reject_unknown(("log", "pattern", "mode", "limit", "options"))
    log = v.require("log", "str")
    pattern = v.require("pattern", "str")
    mode = v.choice("mode", QUERY_MODES, "incidents")
    limit = v.optional("limit", "nonnegint")
    options = v.options()
    v.finish()
    return QueryRequest(
        log=str(log), pattern=str(pattern), mode=mode, limit=limit, options=options
    )


def parse_batch_request(doc: Any) -> BatchRequest:
    v = _Validator(doc, what="batch")
    v.reject_unknown(("log", "patterns", "limit", "analyze", "options"))
    log = v.require("log", "str")
    patterns = v.require("patterns", "list")
    if patterns is not None:
        if not patterns:
            v.findings.append(
                _diagnostic("must not be empty", field_name="patterns")
            )
        for index, text in enumerate(patterns):
            if not isinstance(text, str) or not text:
                v.findings.append(
                    _diagnostic(
                        "must be a non-empty string",
                        field_name=f"patterns[{index}]",
                    )
                )
    limit = v.optional("limit", "nonnegint")
    analyze = v.optional("analyze", "bool", True)
    options = v.options()
    v.finish()
    return BatchRequest(
        log=str(log),
        patterns=tuple(str(p) for p in (patterns or ())),
        limit=limit,
        analyze=bool(analyze),
        options=options,
    )


def parse_lint_request(doc: Any) -> LintRequest:
    v = _Validator(doc, what="lint")
    v.reject_unknown(("pattern", "log"))
    pattern = v.require("pattern", "str")
    log = v.optional("log", "str")
    v.finish()
    return LintRequest(pattern=str(pattern), log=log)


def parse_explain_request(doc: Any) -> ExplainRequest:
    v = _Validator(doc, what="explain")
    v.reject_unknown(("log", "pattern", "options"))
    log = v.require("log", "str")
    pattern = v.require("pattern", "str")
    options = v.options()
    v.finish()
    return ExplainRequest(log=str(log), pattern=str(pattern), options=options)


def parse_analyze_request(doc: Any) -> AnalyzeRequest:
    v = _Validator(doc, what="analyze")
    v.reject_unknown(("op", "p", "q", "max_states"))
    op = v.choice("op", ANALYZE_OPS, "equivalent")
    p = v.require("p", "str")
    q = v.require("q", "str")
    max_states = v.optional("max_states", "posint")
    v.finish()
    return AnalyzeRequest(op=op, p=str(p), q=str(q), max_states=max_states)


def parse_append_request(doc: Any) -> AppendRequest:
    v = _Validator(doc, what="append")
    v.reject_unknown(("records",))
    raw = v.require("records", "list")
    records: list[AppendRecord] = []
    if raw is not None:
        if not raw:
            v.findings.append(_diagnostic("must not be empty", field_name="records"))
        for index, item in enumerate(raw):
            where = f"records[{index}]"
            if not isinstance(item, Mapping):
                v.findings.append(_diagnostic("must be an object", field_name=where))
                continue
            unknown = sorted(set(item) - {"activity", "wid", "attrs_in", "attrs_out"})
            for name in unknown:
                v.findings.append(
                    _diagnostic("unknown field", field_name=f"{where}.{name}")
                )
            activity = item.get("activity")
            if not isinstance(activity, str) or not activity:
                v.findings.append(
                    _diagnostic(
                        "must be a non-empty string",
                        field_name=f"{where}.activity",
                    )
                )
                continue
            wid = item.get("wid")
            if wid is not None and (
                not isinstance(wid, int) or isinstance(wid, bool) or wid < 1
            ):
                v.findings.append(
                    _diagnostic(
                        "must be a positive integer", field_name=f"{where}.wid"
                    )
                )
                continue
            attrs: dict[str, dict[str, Any] | None] = {}
            ok = True
            for attr_field in ("attrs_in", "attrs_out"):
                value = item.get(attr_field)
                if value is not None and not isinstance(value, Mapping):
                    v.findings.append(
                        _diagnostic(
                            "must be an object", field_name=f"{where}.{attr_field}"
                        )
                    )
                    ok = False
                else:
                    attrs[attr_field] = None if value is None else dict(value)
            if not ok:
                continue
            if activity != "START" and wid is None:
                v.findings.append(
                    _diagnostic(
                        "wid is required (only START may omit it)",
                        field_name=where,
                    )
                )
                continue
            records.append(
                AppendRecord(
                    activity=activity,
                    wid=wid,
                    attrs_in=attrs.get("attrs_in"),
                    attrs_out=attrs.get("attrs_out"),
                )
            )
    v.finish()
    return AppendRequest(records=tuple(records))


def parse_window_param(
    params: Mapping[str, Any] | None,
    *,
    default_s: float,
    max_s: float,
) -> float:
    """Validate the admin plane's ``?window=<seconds>`` query parameter.

    Accepts a positive number of seconds no larger than the telemetry
    ring span; anything else gets the structured 400 with a diagnostic,
    same contract as the body validators.
    """
    raw = None if params is None else params.get("window")
    if raw is None:
        return float(default_s)
    if isinstance(raw, (list, tuple)):  # urllib parse_qs shape
        raw = raw[-1] if raw else None
    try:
        window = float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise bad_request(
            "invalid admin query parameters",
            details={
                "diagnostics": [
                    _diagnostic(
                        f"window must be a number of seconds, got {raw!r}",
                        field_name="window",
                    )
                ]
            },
        ) from None
    if not window > 0 or window != window:  # reject 0, negatives, NaN
        raise bad_request(
            "invalid admin query parameters",
            details={
                "diagnostics": [
                    _diagnostic(
                        f"window must be > 0 seconds, got {window!r}",
                        field_name="window",
                    )
                ]
            },
        )
    if window > max_s:
        raise bad_request(
            "invalid admin query parameters",
            details={
                "diagnostics": [
                    _diagnostic(
                        f"window must be <= the telemetry ring span "
                        f"({max_s:g}s), got {window:g}",
                        field_name="window",
                    )
                ]
            },
        )
    return window


def decode_json_body(body: bytes | None, *, what: str) -> Any:
    """Decode a request body as JSON, mapping failures to the 400 contract."""
    import json

    if body is None or not body.strip():
        raise bad_request(f"{what} request requires a JSON body")
    try:
        return json.loads(body.decode("utf-8"))
    except UnicodeDecodeError:
        raise bad_request(f"{what} body is not valid UTF-8") from None
    except json.JSONDecodeError as exc:
        raise bad_request(
            f"{what} body is not valid JSON: {exc.msg} at offset {exc.pos}"
        ) from None


# re-exported for handlers
_ = ServiceError

"""The zero-dependency admin dashboard.

One self-contained HTML document (inline CSS + vanilla JS, no external
assets, no build step) served at ``GET /dashboard``.  It polls the
admin-plane JSON endpoints — ``/v1/admin/stats``, ``/v1/admin/slo``,
``/v1/admin/inflight``, ``/v1/admin/cache`` — every two seconds and
renders windowed latency quantiles, SLO burn gauges, the in-flight
table (with a cooperative *kill* button wired to
``DELETE /v1/admin/inflight/{query_id}``) and cache health.  Like the
rest of the admin plane it is **auth-free** and must only be exposed on
a trusted network (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro-logs · live telemetry</title>
<style>
  :root { color-scheme: dark; }
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #0d1117; color: #c9d1d9; margin: 1.2rem; }
  h1 { font-size: 1.1rem; color: #e6edf3; }
  h1 small { color: #8b949e; font-weight: normal; }
  h2 { font-size: 0.85rem; color: #8b949e; text-transform: uppercase;
       letter-spacing: 0.08em; margin: 1.4rem 0 0.4rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 0.22rem 0.7rem 0.22rem 0;
           border-bottom: 1px solid #21262d; white-space: nowrap; }
  th { color: #8b949e; font-weight: normal; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .cards { display: flex; flex-wrap: wrap; gap: 0.8rem; }
  .card { background: #161b22; border: 1px solid #21262d; border-radius: 6px;
          padding: 0.6rem 0.9rem; min-width: 9rem; }
  .card .v { font-size: 1.25rem; color: #e6edf3; }
  .card .k { color: #8b949e; font-size: 0.75rem; }
  .ok { color: #3fb950; } .warn { color: #d29922; } .bad { color: #f85149; }
  button.kill { background: #21262d; color: #f85149; border: 1px solid #30363d;
                border-radius: 4px; cursor: pointer; font: inherit;
                padding: 0.05rem 0.5rem; }
  button.kill:hover { background: #f85149; color: #0d1117; }
  #err { color: #f85149; margin-left: 0.6rem; }
  select { background: #161b22; color: #c9d1d9; border: 1px solid #30363d;
           border-radius: 4px; font: inherit; }
</style>
</head>
<body>
<h1>repro-logs <small>live telemetry</small>
  <select id="window">
    <option value="60">1m</option>
    <option value="300" selected>5m</option>
    <option value="900">15m</option>
    <option value="3600">1h</option>
  </select>
  <span id="err"></span>
</h1>

<h2>Service</h2>
<div class="cards" id="cards"></div>

<h2>SLOs</h2>
<table id="slo"><thead><tr>
  <th>objective</th><th>target</th><th class="num">fast burn</th>
  <th class="num">slow burn</th><th class="num">budget left</th><th>state</th>
</tr></thead><tbody></tbody></table>

<h2>Routes</h2>
<table id="routes"><thead><tr>
  <th>route</th><th class="num">req</th><th class="num">err</th>
  <th class="num">p50</th><th class="num">p95</th><th class="num">p99</th>
</tr></thead><tbody></tbody></table>

<h2>Stores</h2>
<table id="stores"><thead><tr>
  <th>store</th><th class="num">req</th><th class="num">err</th>
  <th class="num">p50</th><th class="num">p95</th><th class="num">p99</th>
</tr></thead><tbody></tbody></table>

<h2>Pattern shapes</h2>
<table id="patterns"><thead><tr>
  <th>pattern</th><th class="num">req</th><th class="num">killed</th>
  <th class="num">pairs</th><th class="num">p95</th><th class="num">p99</th>
</tr></thead><tbody></tbody></table>

<h2>In flight</h2>
<table id="inflight"><thead><tr>
  <th>query_id</th><th>op</th><th>store</th><th>pattern</th>
  <th class="num">elapsed</th><th class="num">pairs</th><th></th>
</tr></thead><tbody></tbody></table>

<h2>Cache</h2>
<div class="cards" id="cache"></div>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const esc = (s) => String(s).replace(/[&<>"]/g,
  (c) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const ms = (s) => s >= 1 ? s.toFixed(2) + "s" : (s * 1000).toFixed(1) + "ms";
const pct = (x) => (100 * x).toFixed(2) + "%";

function card(k, v, cls) {
  return `<div class="card"><div class="v ${cls || ""}">${esc(v)}</div>` +
         `<div class="k">${esc(k)}</div></div>`;
}

function rows(tbody, html) { $(tbody).querySelector("tbody").innerHTML = html; }

async function getJSON(path) {
  const res = await fetch(path);
  if (!res.ok) throw new Error(path + " -> " + res.status);
  return res.json();
}

async function kill(qid) {
  try { await fetch("/v1/admin/inflight/" + qid, { method: "DELETE" }); }
  catch (e) { /* surfaced on next poll */ }
  refresh();
}
window.kill = kill;

function dimRows(cells, killCol) {
  return cells.map((c) =>
    `<tr><td>${esc(c.key)}</td><td class="num">${c.count}</td>` +
    (killCol
      ? `<td class="num">${c.killed}</td><td class="num">${c.pairs}</td>`
      : `<td class="num">${c.errors}</td><td class="num">${ms(c.p50_s)}</td>`) +
    `<td class="num">${ms(c.p95_s)}</td><td class="num">${ms(c.p99_s)}</td></tr>`
  ).join("");
}

async function refresh() {
  const w = $("window").value;
  try {
    const [stats, slo, inflight, cache] = await Promise.all([
      getJSON("/v1/admin/stats?window=" + w),
      getJSON("/v1/admin/slo"),
      getJSON("/v1/admin/inflight"),
      getJSON("/v1/admin/cache"),
    ]);
    $("err").textContent = "";

    const errCls = stats.error_ratio > 0.01 ? "bad"
      : (stats.error_ratio > 0 ? "warn" : "ok");
    $("cards").innerHTML =
      card("requests / " + stats.window_s + "s", stats.requests) +
      card("error ratio", pct(stats.error_ratio), errCls) +
      card("governor kills", stats.killed, stats.killed ? "warn" : "ok") +
      card("p50", ms(stats.latency.p50_s)) +
      card("p95", ms(stats.latency.p95_s)) +
      card("p99", ms(stats.latency.p99_s)) +
      card("in flight", inflight.count);

    rows("slo", slo.objectives.map((o) => {
      const cls = o.breach ? "bad" : (o.burn_fast >= 1 ? "warn" : "ok");
      const state = o.breach ? "BREACH" : (o.burn_fast >= 1 ? "burning" : "ok");
      return `<tr><td>${esc(o.name)}</td><td>${pct(o.target)}</td>` +
        `<td class="num">${o.burn_fast.toFixed(2)}×</td>` +
        `<td class="num">${o.burn_slow.toFixed(2)}×</td>` +
        `<td class="num">${pct(o.budget_remaining)}</td>` +
        `<td class="${cls}">${state}</td></tr>`;
    }).join(""));

    rows("routes", dimRows(stats.routes, false));
    rows("stores", dimRows(stats.stores, false));
    rows("patterns", dimRows(stats.patterns, true));

    rows("inflight", inflight.queries.map((q) =>
      `<tr><td>${esc(q.query_id)}</td><td>${esc(q.op)}</td>` +
      `<td>${esc(q.store || "")}</td><td>${esc(q.pattern)}</td>` +
      `<td class="num">${q.elapsed_s.toFixed(1)}s</td>` +
      `<td class="num">${q.pairs}</td>` +
      `<td><button class="kill" onclick="kill('${esc(q.query_id)}')">` +
      (q.cancelling ? "cancelling…" : "kill") + `</button></td></tr>`
    ).join(""));

    const hr = (h, m) => (h + m) ? pct(h / (h + m)) : "—";
    $("cache").innerHTML =
      card("result hit ratio", hr(cache.result_hits, cache.result_misses)) +
      card("memo hit ratio", hr(cache.memo_hits, cache.memo_misses)) +
      card("result entries", cache.result_entries) +
      card("result bytes", cache.result_bytes) +
      card("memo entries", cache.memo_entries) +
      card("memo bytes", cache.memo_bytes);
  } catch (e) {
    $("err").textContent = String(e);
  }
}

refresh();
setInterval(refresh, 2000);
$("window").addEventListener("change", refresh);
</script>
</body>
</html>
"""

"""Server-side configuration: sockets, admission caps, option ceilings.

:class:`ServiceConfig` is the one frozen value that parameterises a
daemon: where it listens, how many queries may run or wait at once, and
the per-request :class:`~repro.core.options.EngineOptions` ceilings that
requests are clamped against.  Clamping — :meth:`ServiceConfig.clamp` —
is the admission-control rule the tentpole hangs on: a client may ask
for *less* than the server allows (a tighter deadline, a smaller pairs
budget) but never more, and a request with no budget at all still runs
under the server ceilings, so one pathological pattern cannot starve
the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import ReproError
from repro.core.options import BACKENDS
from repro.core.query import ENGINES

__all__ = ["ServiceConfig", "ClampedOptions"]


@dataclass(frozen=True)
class ClampedOptions:
    """The per-request knobs after server-side clamping.

    ``clamped`` names the request fields that were reduced to a ceiling,
    so responses can report the adjustment (and tests can assert it).
    """

    engine: str | None = None
    optimize: bool = True
    max_incidents: int | None = None
    jobs: int | None = None
    backend: str | None = None
    deadline_ms: float | None = None
    max_pairs: int | None = None
    cache: bool = True
    clamped: tuple[str, ...] = ()


@dataclass(frozen=True)
class ServiceConfig:
    """How one daemon instance behaves.

    Attributes
    ----------
    host / port:
        Listen address; port 0 binds an ephemeral port (the server
        reports the bound address).
    max_concurrency:
        Queries evaluating at once; further admitted requests wait.
    queue_depth:
        Requests allowed to wait for a slot; beyond it the service sheds
        load with 429 + ``Retry-After``.
    queue_timeout_ms:
        Longest a request waits in the queue before it too is shed.
    deadline_ms_ceiling / max_pairs_ceiling / max_incidents_ceiling:
        Per-request governor ceilings.  Requests asking for more are
        clamped down; requests asking for nothing get the ceiling.
    jobs_ceiling:
        Upper bound on per-request parallel fan-out (``jobs``).
    cache_bytes:
        Optional per-layer byte budget for the shared query cache.
    max_body_bytes:
        Request bodies above this are refused with 413.
    retry_after_s:
        Hint rendered into ``Retry-After`` on 429/503 responses.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_concurrency: int = 8
    queue_depth: int = 16
    queue_timeout_ms: float = 10_000.0
    deadline_ms_ceiling: float = 30_000.0
    max_pairs_ceiling: int = 50_000_000
    max_incidents_ceiling: int = 1_000_000
    jobs_ceiling: int = 8
    cache_bytes: int | None = None
    max_body_bytes: int = 8 * 1024 * 1024
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ReproError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.queue_depth < 0:
            raise ReproError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.deadline_ms_ceiling <= 0:
            raise ReproError(
                f"deadline_ms_ceiling must be > 0, got {self.deadline_ms_ceiling}"
            )
        if self.max_pairs_ceiling < 1:
            raise ReproError(
                f"max_pairs_ceiling must be >= 1, got {self.max_pairs_ceiling}"
            )
        if self.jobs_ceiling < 1:
            raise ReproError(f"jobs_ceiling must be >= 1, got {self.jobs_ceiling}")

    def clamp(self, requested: dict[str, Any]) -> ClampedOptions:
        """Clamp one request's ``options`` object against the ceilings.

        ``requested`` is the already schema-validated options dict of a
        wire request (see :mod:`repro.service.schemas`).  Budgets are
        ``min(requested, ceiling)`` with the ceiling as the default;
        unknown engine/backend names raise the wire-level 400.
        """
        from repro.service.errors import bad_request

        clamped: list[str] = []

        engine = requested.get("engine")
        if engine is not None and engine not in ENGINES:
            raise bad_request(
                f"unknown engine {engine!r}",
                details={"available": sorted(ENGINES)},
            )
        backend = requested.get("backend")
        if backend is not None and backend not in BACKENDS:
            raise bad_request(
                f"unknown backend {backend!r}",
                details={"available": list(BACKENDS)},
            )

        deadline_ms = requested.get("deadline_ms")
        if deadline_ms is None or deadline_ms > self.deadline_ms_ceiling:
            if deadline_ms is not None:
                clamped.append("deadline_ms")
            deadline_ms = self.deadline_ms_ceiling

        max_pairs = requested.get("max_pairs")
        if max_pairs is None or max_pairs > self.max_pairs_ceiling:
            if max_pairs is not None:
                clamped.append("max_pairs")
            max_pairs = self.max_pairs_ceiling

        max_incidents = requested.get("max_incidents")
        if max_incidents is None or max_incidents > self.max_incidents_ceiling:
            if max_incidents is not None:
                clamped.append("max_incidents")
            max_incidents = self.max_incidents_ceiling

        jobs = requested.get("jobs")
        if jobs is not None and jobs > self.jobs_ceiling:
            clamped.append("jobs")
            jobs = self.jobs_ceiling

        return ClampedOptions(
            engine=engine,
            optimize=bool(requested.get("optimize", True)),
            max_incidents=max_incidents,
            jobs=jobs,
            backend=backend,
            deadline_ms=float(deadline_ms),
            max_pairs=int(max_pairs),
            cache=bool(requested.get("cache", True)),
            clamped=tuple(clamped),
        )

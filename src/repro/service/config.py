"""Server-side configuration: sockets, admission caps, option ceilings.

:class:`ServiceConfig` is the one frozen value that parameterises a
daemon: where it listens, how many queries may run or wait at once, and
the per-request :class:`~repro.core.options.EngineOptions` ceilings that
requests are clamped against.  Clamping — :meth:`ServiceConfig.clamp` —
is the admission-control rule the tentpole hangs on: a client may ask
for *less* than the server allows (a tighter deadline, a smaller pairs
budget) but never more, and a request with no budget at all still runs
under the server ceilings, so one pathological pattern cannot starve
the worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.errors import ReproError
from repro.core.options import BACKENDS
from repro.core.query import ENGINES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.live import SloPolicy

__all__ = ["ServiceConfig", "ClampedOptions"]


@dataclass(frozen=True)
class ClampedOptions:
    """The per-request knobs after server-side clamping.

    ``clamped`` names the request fields that were reduced to a ceiling,
    so responses can report the adjustment (and tests can assert it).
    """

    engine: str | None = None
    optimize: bool = True
    max_incidents: int | None = None
    jobs: int | None = None
    backend: str | None = None
    deadline_ms: float | None = None
    max_pairs: int | None = None
    cache: bool = True
    clamped: tuple[str, ...] = ()


@dataclass(frozen=True)
class ServiceConfig:
    """How one daemon instance behaves.

    Attributes
    ----------
    host / port:
        Listen address; port 0 binds an ephemeral port (the server
        reports the bound address).
    max_concurrency:
        Queries evaluating at once; further admitted requests wait.
    queue_depth:
        Requests allowed to wait for a slot; beyond it the service sheds
        load with 429 + ``Retry-After``.
    queue_timeout_ms:
        Longest a request waits in the queue before it too is shed.
    deadline_ms_ceiling / max_pairs_ceiling / max_incidents_ceiling:
        Per-request governor ceilings.  Requests asking for more are
        clamped down; requests asking for nothing get the ceiling.
    jobs_ceiling:
        Upper bound on per-request parallel fan-out (``jobs``).
    cache_bytes:
        Optional per-layer byte budget for the shared query cache.
    max_body_bytes:
        Request bodies above this are refused with 413.
    retry_after_s:
        Hint rendered into ``Retry-After`` on 429/503 responses.
    telemetry:
        Whether the live windowed aggregator and the admin plane record
        anything (default on; the bench overhead gate measures off→on).
    telemetry_bucket_s / telemetry_window_s:
        Width of one aggregation time bucket and the longest trailing
        window the ring can answer (``/v1/admin/stats?window=``).
    telemetry_top_k:
        Per-bucket cap on distinct route/store/pattern attribution keys;
        overflow folds into ``~other``.
    slo_availability_target / slo_latency_target:
        Default SLO objectives: fraction of non-error outcomes, and
        fraction of requests at or under ``slo_latency_threshold_s``.
    slo_fast_window_s / slo_slow_window_s / slo_burn_threshold:
        Multi-window burn-rate alerting parameters (a breach requires
        both windows to burn past the threshold).
    access_log:
        Emit one structured JSON access-log line per request on the
        ``repro.service.access`` logger (the ``--access-log`` CLI flag).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_concurrency: int = 8
    queue_depth: int = 16
    queue_timeout_ms: float = 10_000.0
    deadline_ms_ceiling: float = 30_000.0
    max_pairs_ceiling: int = 50_000_000
    max_incidents_ceiling: int = 1_000_000
    jobs_ceiling: int = 8
    cache_bytes: int | None = None
    max_body_bytes: int = 8 * 1024 * 1024
    retry_after_s: float = 1.0
    telemetry: bool = True
    telemetry_bucket_s: float = 10.0
    telemetry_window_s: float = 3600.0
    telemetry_top_k: int = 32
    slo_availability_target: float = 0.999
    slo_latency_target: float = 0.95
    slo_latency_threshold_s: float = 0.5
    slo_fast_window_s: float = 300.0
    slo_slow_window_s: float = 3600.0
    slo_burn_threshold: float = 1.0
    access_log: bool = False

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ReproError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.queue_depth < 0:
            raise ReproError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.deadline_ms_ceiling <= 0:
            raise ReproError(
                f"deadline_ms_ceiling must be > 0, got {self.deadline_ms_ceiling}"
            )
        if self.max_pairs_ceiling < 1:
            raise ReproError(
                f"max_pairs_ceiling must be >= 1, got {self.max_pairs_ceiling}"
            )
        if self.jobs_ceiling < 1:
            raise ReproError(f"jobs_ceiling must be >= 1, got {self.jobs_ceiling}")
        if self.telemetry_bucket_s <= 0:
            raise ReproError(
                f"telemetry_bucket_s must be > 0, got {self.telemetry_bucket_s}"
            )
        if self.telemetry_window_s < self.telemetry_bucket_s:
            raise ReproError(
                f"telemetry_window_s ({self.telemetry_window_s}) must be >= "
                f"telemetry_bucket_s ({self.telemetry_bucket_s})"
            )
        if self.slo_slow_window_s > self.telemetry_window_s:
            raise ReproError(
                f"slo_slow_window_s ({self.slo_slow_window_s}) must fit in "
                f"telemetry_window_s ({self.telemetry_window_s})"
            )
        for name in ("slo_availability_target", "slo_latency_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ReproError(f"{name} must be in (0, 1), got {value}")

    def slo_policy(self) -> "SloPolicy":
        """The default SLO policy this configuration describes.

        Two service-wide objectives — availability and a latency
        quantile — over the configured fast/slow burn windows.  Custom
        deployments can build richer per-route/per-store policies with
        :class:`~repro.obs.live.SloObjective` directly.
        """
        from repro.obs.live import SloObjective, SloPolicy

        return SloPolicy(
            objectives=(
                SloObjective(
                    name="availability",
                    kind="availability",
                    target=self.slo_availability_target,
                ),
                SloObjective(
                    name="latency",
                    kind="latency",
                    target=self.slo_latency_target,
                    latency_threshold_s=self.slo_latency_threshold_s,
                ),
            ),
            fast_window_s=self.slo_fast_window_s,
            slow_window_s=self.slo_slow_window_s,
            burn_threshold=self.slo_burn_threshold,
        )

    def clamp(self, requested: dict[str, Any]) -> ClampedOptions:
        """Clamp one request's ``options`` object against the ceilings.

        ``requested`` is the already schema-validated options dict of a
        wire request (see :mod:`repro.service.schemas`).  Budgets are
        ``min(requested, ceiling)`` with the ceiling as the default;
        unknown engine/backend names raise the wire-level 400.
        """
        from repro.service.errors import bad_request

        clamped: list[str] = []

        engine = requested.get("engine")
        if engine is not None and engine not in ENGINES:
            raise bad_request(
                f"unknown engine {engine!r}",
                details={"available": sorted(ENGINES)},
            )
        backend = requested.get("backend")
        if backend is not None and backend not in BACKENDS:
            raise bad_request(
                f"unknown backend {backend!r}",
                details={"available": list(BACKENDS)},
            )

        deadline_ms = requested.get("deadline_ms")
        if deadline_ms is None or deadline_ms > self.deadline_ms_ceiling:
            if deadline_ms is not None:
                clamped.append("deadline_ms")
            deadline_ms = self.deadline_ms_ceiling

        max_pairs = requested.get("max_pairs")
        if max_pairs is None or max_pairs > self.max_pairs_ceiling:
            if max_pairs is not None:
                clamped.append("max_pairs")
            max_pairs = self.max_pairs_ceiling

        max_incidents = requested.get("max_incidents")
        if max_incidents is None or max_incidents > self.max_incidents_ceiling:
            if max_incidents is not None:
                clamped.append("max_incidents")
            max_incidents = self.max_incidents_ceiling

        jobs = requested.get("jobs")
        if jobs is not None and jobs > self.jobs_ceiling:
            clamped.append("jobs")
            jobs = self.jobs_ceiling

        return ClampedOptions(
            engine=engine,
            optimize=bool(requested.get("optimize", True)),
            max_incidents=max_incidents,
            jobs=jobs,
            backend=backend,
            deadline_ms=float(deadline_ms),
            max_pairs=int(max_pairs),
            cache=bool(requested.get("cache", True)),
            clamped=tuple(clamped),
        )

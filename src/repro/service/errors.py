"""The service's wire-level error contract.

Every failure the daemon reports travels as one structured JSON body::

    {"error": {"code": "deadline_exceeded", "status": 408,
               "message": "...", "details": {...},
               "partial_stats": {...}}}

:class:`ServiceError` is the single carrier: handlers raise it (or one
of the convenience constructors below) and the dispatch loop renders it.
Library errors are mapped at one place — :func:`map_exception` — so the
status-code contract stays in sync with the exception hierarchy of
:mod:`repro.core.errors`:

==========================================  ======  =====================
library exception                           status  wire code
==========================================  ======  =====================
``PatternSyntaxError`` / schema violation      400  ``bad_request``
unknown log / route                            404  ``not_found``
wrong HTTP method                              405  ``method_not_allowed``
body over the configured cap                   413  ``payload_too_large``
``QueryTimeout``                               408  ``deadline_exceeded``
``QueryBudgetExceeded``                        422  ``budget_exceeded``
``BudgetExceededError`` (max_incidents)        422  ``incident_budget``
``LogStoreError`` and other ``ReproError``     422  ``unprocessable``
admission saturation                           429  ``saturated``
``QueryCancelled`` / draining shutdown         503  ``unavailable``
==========================================  ======  =====================

Governor kills (408/422/503) carry the partial
:class:`~repro.core.eval.base.EvaluationStats` snapshot the governor
detached at the checkpoint that tripped, serialised by
:func:`stats_to_dict` — the caller learns what the killed query had
already cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.errors import (
    BudgetExceededError,
    PatternSyntaxError,
    QueryBudgetExceeded,
    QueryCancelled,
    QueryGovernorError,
    QueryTimeout,
    ReproError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eval.base import EvaluationStats

__all__ = [
    "ServiceError",
    "bad_request",
    "not_found",
    "method_not_allowed",
    "payload_too_large",
    "saturated",
    "unavailable",
    "map_exception",
    "stats_to_dict",
]


def stats_to_dict(stats: "EvaluationStats | None") -> dict[str, Any] | None:
    """JSON-friendly rendering of an evaluation-stats snapshot."""
    if stats is None:
        return None
    return {
        "operator_evals": stats.operator_evals,
        "pairs_examined": stats.pairs_examined,
        "incidents_produced": stats.incidents_produced,
        "max_live_incidents": stats.max_live_incidents,
        "per_operator": dict(stats.per_operator),
    }


class ServiceError(Exception):
    """One wire-level failure: HTTP status, stable code, JSON payload.

    Parameters
    ----------
    message:
        Human-readable explanation (the ``message`` field).
    status:
        HTTP status code to respond with.
    code:
        Stable machine-readable identifier (``snake_case``).
    details:
        Optional JSON-serialisable object with error specifics (unknown
        fields, lint-style diagnostics, budget numbers, ...).
    retry_after_s:
        When set, rendered as a ``Retry-After`` response header (429/503).
    partial_stats:
        Optional detached stats snapshot from a governor kill.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int,
        code: str,
        details: Any = None,
        retry_after_s: float | None = None,
        partial_stats: "EvaluationStats | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.details = details
        self.retry_after_s = retry_after_s
        self.partial_stats = partial_stats

    def payload(self) -> dict[str, Any]:
        """The JSON body of the error response."""
        error: dict[str, Any] = {
            "code": self.code,
            "status": self.status,
            "message": str(self),
        }
        if self.details is not None:
            error["details"] = self.details
        if self.partial_stats is not None:
            error["partial_stats"] = stats_to_dict(self.partial_stats)
        return {"error": error}

    def headers(self) -> dict[str, str]:
        """Extra response headers this error contributes."""
        if self.retry_after_s is None:
            return {}
        return {"Retry-After": f"{max(0.0, self.retry_after_s):g}"}


def bad_request(message: str, *, details: Any = None) -> ServiceError:
    return ServiceError(message, status=400, code="bad_request", details=details)


def not_found(message: str, *, details: Any = None) -> ServiceError:
    return ServiceError(message, status=404, code="not_found", details=details)


def method_not_allowed(method: str, path: str, allowed: tuple[str, ...]) -> ServiceError:
    return ServiceError(
        f"{method} is not allowed on {path}",
        status=405,
        code="method_not_allowed",
        details={"allowed": list(allowed)},
    )


def payload_too_large(size: int, limit: int) -> ServiceError:
    return ServiceError(
        f"request body of {size} bytes exceeds the {limit}-byte limit",
        status=413,
        code="payload_too_large",
        details={"size": size, "limit": limit},
    )


def saturated(message: str, *, retry_after_s: float) -> ServiceError:
    return ServiceError(
        message, status=429, code="saturated", retry_after_s=retry_after_s
    )


def unavailable(message: str, *, retry_after_s: float | None = None) -> ServiceError:
    return ServiceError(
        message, status=503, code="unavailable", retry_after_s=retry_after_s
    )


def map_exception(exc: Exception) -> ServiceError:
    """The single library-exception → wire-error mapping (see module docs).

    Unrecognised exceptions are *not* mapped here; the dispatch loop
    converts them to an opaque 500 so internal details never leak.
    """
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, PatternSyntaxError):
        diagnostic = {
            "code": "SVC400",
            "severity": "error",
            "message": str(exc),
            "span": None if exc.position is None else [exc.position, exc.position + 1],
            "suggestion": None,
        }
        return bad_request(
            "pattern does not parse", details={"diagnostics": [diagnostic]}
        )
    if isinstance(exc, QueryTimeout):
        return ServiceError(
            str(exc),
            status=408,
            code="deadline_exceeded",
            details={
                "deadline_ms": exc.deadline_ms,
                "elapsed_ms": exc.elapsed_ms,
            },
            partial_stats=exc.partial_stats,  # type: ignore[arg-type]
        )
    if isinstance(exc, QueryBudgetExceeded):
        return ServiceError(
            str(exc),
            status=422,
            code="budget_exceeded",
            details={"max_pairs": exc.limit, "examined": exc.examined},
            partial_stats=exc.partial_stats,  # type: ignore[arg-type]
        )
    if isinstance(exc, QueryCancelled):
        return ServiceError(
            str(exc),
            status=503,
            code="unavailable",
            partial_stats=exc.partial_stats,  # type: ignore[arg-type]
        )
    if isinstance(exc, QueryGovernorError):  # future governor kinds
        return ServiceError(
            str(exc),
            status=422,
            code="budget_exceeded",
            partial_stats=exc.partial_stats,  # type: ignore[arg-type]
        )
    if isinstance(exc, BudgetExceededError):
        return ServiceError(
            str(exc),
            status=422,
            code="incident_budget",
            details={"max_incidents": exc.limit},
        )
    if isinstance(exc, ReproError):
        return ServiceError(str(exc), status=422, code="unprocessable")
    raise TypeError(f"unmapped exception {type(exc).__name__}") from exc

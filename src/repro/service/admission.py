"""Admission control: a bounded worker pool with a shed-at-depth queue.

The daemon must degrade by *refusing* work, not by slowing every tenant
down.  :class:`AdmissionController` enforces the two caps from
:class:`~repro.service.config.ServiceConfig`:

* at most ``max_concurrency`` evaluations run at once;
* at most ``queue_depth`` further requests wait for a slot (each for at
  most ``queue_timeout_ms``); anything beyond is shed immediately with
  the 429 ``saturated`` wire error carrying ``Retry-After``.

The controller is a condition-variable state machine rather than a bare
``threading.Semaphore`` because the queue-depth cap needs an atomic
"count the waiters" decision: a semaphore would happily let unbounded
callers block.  ``peak_in_flight`` exists for the tentpole's concurrency
test — proof the pool bound actually held under ≥ 8 concurrent clients.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.service.errors import saturated

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Grants evaluation slots; sheds load beyond the configured caps."""

    def __init__(
        self,
        *,
        max_concurrency: int,
        queue_depth: int,
        queue_timeout_ms: float = 10_000.0,
        retry_after_s: float = 1.0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.queue_timeout_ms = queue_timeout_ms
        self.retry_after_s = retry_after_s
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._peak_in_flight = 0
        self._peak_queued = 0
        self._admitted = 0
        self._rejected = 0
        self._metrics = metrics

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    @property
    def peak_in_flight(self) -> int:
        with self._cond:
            return self._peak_in_flight

    def snapshot(self) -> dict[str, int]:
        """Counters for ``/healthz`` and tests."""
        with self._cond:
            return {
                "in_flight": self._in_flight,
                "queued": self._queued,
                "peak_in_flight": self._peak_in_flight,
                "peak_queued": self._peak_queued,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "max_concurrency": self.max_concurrency,
                "queue_depth": self.queue_depth,
            }

    # ------------------------------------------------------------------
    # the slot protocol
    # ------------------------------------------------------------------

    @contextmanager
    def slot(self) -> Iterator[None]:
        """Hold one evaluation slot for the duration of the ``with`` body.

        Raises the 429 ``saturated`` :class:`ServiceError` when the pool
        is full and the queue is at depth (or the queue wait times out).
        """
        self._acquire()
        try:
            yield
        finally:
            self._release()

    def _acquire(self) -> None:
        deadline = None
        with self._cond:
            if self._in_flight >= self.max_concurrency:
                if self._queued >= self.queue_depth:
                    self._rejected += 1
                    self._count("service.rejected")
                    raise saturated(
                        f"server saturated: {self._in_flight} in flight, "
                        f"{self._queued} queued (caps {self.max_concurrency}"
                        f"/{self.queue_depth})",
                        retry_after_s=self.retry_after_s,
                    )
                self._queued += 1
                self._peak_queued = max(self._peak_queued, self._queued)
                self._gauge("service.queued", self._queued)
                import time

                deadline = time.monotonic() + self.queue_timeout_ms / 1000.0
                try:
                    while self._in_flight >= self.max_concurrency:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(timeout=remaining):
                            if self._in_flight < self.max_concurrency:
                                break
                            self._rejected += 1
                            self._count("service.rejected")
                            raise saturated(
                                "server saturated: timed out waiting "
                                f"{self.queue_timeout_ms:g}ms for a slot",
                                retry_after_s=self.retry_after_s,
                            )
                finally:
                    self._queued -= 1
                    self._gauge("service.queued", self._queued)
            self._in_flight += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
            self._admitted += 1
            self._count("service.admitted")
            self._gauge("service.in_flight", self._in_flight)

    def _release(self) -> None:
        with self._cond:
            self._in_flight -= 1
            self._gauge("service.in_flight", self._in_flight)
            self._cond.notify()

    # ------------------------------------------------------------------
    # metrics plumbing (no-ops without a registry)
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _gauge(self, name: str, value: int) -> None:
        if self._metrics is not None:
            self._metrics.gauge(name).set(float(value))

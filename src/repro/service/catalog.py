"""A named collection of live :class:`~repro.logstore.LogStore` objects.

The daemon serves queries *by log name*: every evaluation endpoint takes
``"log": "<name>"`` and resolves it here.  A catalog can be built three
ways —

* programmatically (``catalog.add_log("clinic", log)`` in tests and
  bench cases),
* from a config file (``StoreCatalog.from_config``, JSON everywhere and
  TOML where :mod:`tomllib` exists, i.e. Python ≥ 3.11), or
* by scanning a directory of log files (``StoreCatalog.from_directory``),
  where each ``*.jsonl`` / ``*.csv`` / ``*.xes`` becomes a store named
  after its stem.

Stores stay *live*: ``POST /v1/logs/{name}/records`` appends through
:meth:`StoreCatalog.get`, bumping the store epoch, which is exactly the
signal the PR-5 result cache keys on (``("lineage", store_id, epoch)``)
— so a hot append invalidates precisely the cached results of that one
log.  All mutation goes through one lock; snapshots are immutable so
queries never need it.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.errors import LogStoreError, ReproError
from repro.logstore import LogStore, read_csv, read_jsonl, read_xes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import Log
    from repro.obs.metrics import MetricsRegistry

__all__ = ["StoreCatalog"]

#: Extensions the directory scanner (and config loader) understand.
_READERS = {
    ".jsonl": read_jsonl,
    ".csv": read_csv,
    ".xes": read_xes,
}


def _load_log_file(path: Path) -> "Log":
    reader = _READERS.get(path.suffix.lower())
    if reader is None:
        raise ReproError(
            f"unsupported log format {path.suffix!r} for {path} "
            f"(expected one of {', '.join(sorted(_READERS))})"
        )
    return reader(str(path))


class StoreCatalog:
    """Thread-safe name → :class:`LogStore` registry for the daemon."""

    def __init__(self, *, metrics: "MetricsRegistry | None" = None) -> None:
        self._stores: dict[str, LogStore] = {}
        self._sources: dict[str, str] = {}
        self._lock = threading.Lock()
        self.metrics = metrics

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def add(self, name: str, store: LogStore, *, source: str = "<memory>") -> None:
        """Register a live store under ``name`` (refuses duplicates)."""
        if not name:
            raise ReproError("store name must be non-empty")
        with self._lock:
            if name in self._stores:
                raise ReproError(f"store {name!r} is already registered")
            if store.metrics is None:
                store.metrics = self.metrics
            self._stores[name] = store
            self._sources[name] = source
        if self.metrics is not None:
            self.metrics.gauge("service.catalog_stores").set(float(len(self._stores)))

    def add_log(self, name: str, log: "Log", *, source: str = "<memory>") -> LogStore:
        """Seed a live store from an immutable log and register it."""
        store = LogStore.from_log(log)
        self.add(name, store, source=source)
        return store

    def add_file(self, name: str, path: str | Path) -> LogStore:
        """Load a log file and register the resulting store."""
        file_path = Path(path)
        log = _load_log_file(file_path)
        return self.add_log(name, log, source=str(file_path))

    @classmethod
    def from_directory(
        cls, path: str | Path, *, metrics: "MetricsRegistry | None" = None
    ) -> "StoreCatalog":
        """Scan ``path`` for log files; each becomes a store named by stem."""
        root = Path(path)
        if not root.is_dir():
            raise ReproError(f"catalog directory {root} does not exist")
        catalog = cls(metrics=metrics)
        for file_path in sorted(root.iterdir()):
            if file_path.suffix.lower() in _READERS and file_path.is_file():
                catalog.add_file(file_path.stem, file_path)
        if not catalog.names():
            raise ReproError(
                f"catalog directory {root} holds no log files "
                f"({', '.join(sorted(_READERS))})"
            )
        return catalog

    @classmethod
    def from_config(
        cls, path: str | Path, *, metrics: "MetricsRegistry | None" = None
    ) -> "StoreCatalog":
        """Build a catalog from a JSON or TOML config file.

        The config maps names to log-file paths (relative paths resolve
        against the config file's directory)::

            {"logs": {"clinic": "logs/clinic.jsonl",
                      "billing": "logs/billing.csv"}}

        TOML uses the same shape under a ``[logs]`` table.  TOML support
        needs :mod:`tomllib` (Python ≥ 3.11); on older interpreters a
        clean error suggests JSON instead.
        """
        config_path = Path(path)
        if not config_path.is_file():
            raise ReproError(f"catalog config {config_path} does not exist")
        suffix = config_path.suffix.lower()
        if suffix == ".toml":
            try:
                import tomllib
            except ImportError:  # Python < 3.11
                raise ReproError(
                    f"TOML catalog {config_path} needs Python >= 3.11 "
                    "(tomllib); use a JSON catalog on this interpreter"
                ) from None
            with open(config_path, "rb") as handle:
                doc: Any = tomllib.load(handle)
        elif suffix == ".json":
            import json

            with open(config_path, "r", encoding="utf-8") as text_handle:
                try:
                    doc = json.load(text_handle)
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"catalog config {config_path} is not valid JSON: {exc}"
                    ) from None
        else:
            raise ReproError(
                f"unsupported catalog config format {suffix!r} "
                "(expected .json or .toml)"
            )

        logs = doc.get("logs") if isinstance(doc, Mapping) else None
        if not isinstance(logs, Mapping) or not logs:
            raise ReproError(
                f"catalog config {config_path} must define a non-empty "
                "'logs' table mapping names to file paths"
            )
        catalog = cls(metrics=metrics)
        base = config_path.parent
        for name in sorted(logs):
            target = logs[name]
            if not isinstance(target, str):
                raise ReproError(
                    f"catalog entry {name!r} must be a file path string"
                )
            file_path = Path(target)
            if not file_path.is_absolute():
                file_path = base / file_path
            if not file_path.is_file():
                raise ReproError(
                    f"catalog entry {name!r} points at missing file {file_path}"
                )
            catalog.add_file(str(name), file_path)
        return catalog

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._stores))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._stores

    def __len__(self) -> int:
        with self._lock:
            return len(self._stores)

    def get(self, name: str) -> LogStore:
        """The live store, or :class:`LogStoreError` for unknown names
        (the handler layer maps that to the 404 contract)."""
        with self._lock:
            store = self._stores.get(name)
        if store is None:
            raise LogStoreError(f"unknown log {name!r}")
        return store

    def snapshot(self, name: str) -> "Log":
        """An immutable snapshot of the named store's current contents."""
        return self.get(name).snapshot()

    def describe(self) -> list[dict[str, Any]]:
        """Catalog listing for ``GET /v1/logs``."""
        with self._lock:
            items = sorted(self._stores.items())
            sources = dict(self._sources)
        listing = []
        for name, store in items:
            listing.append(
                {
                    "name": name,
                    "records": len(store),
                    "instances": len(store.wid_record_counts()),
                    "open_instances": list(store.open_instances),
                    "epoch": store.epoch,
                    "lineage": store.lineage,
                    "source": sources.get(name, "<memory>"),
                }
            )
        return listing

    def append_batch(self, name: str, records: Any) -> dict[str, Any]:
        """Apply one validated append request to the named store.

        ``records`` is the tuple of
        :class:`~repro.service.schemas.AppendRecord` operations.  The
        whole batch runs under the catalog lock so concurrent appenders
        interleave at batch granularity, and the response reports the
        resulting epoch (what cache-invalidation tests assert on).
        """
        store = self.get(name)
        appended = opened = closed = 0
        wids: list[int] = []
        with self._lock:
            for record in records:
                if record.activity == "START":
                    wid = store.open_instance(record.wid)
                    wids.append(wid)
                    opened += 1
                elif record.activity == "END":
                    assert record.wid is not None  # schema guarantees it
                    store.close_instance(record.wid)
                    wids.append(record.wid)
                    closed += 1
                else:
                    assert record.wid is not None  # schema guarantees it
                    store.append(
                        record.wid,
                        record.activity,
                        attrs_in=record.attrs_in,
                        attrs_out=record.attrs_out,
                    )
                    wids.append(record.wid)
                    appended += 1
        return {
            "log": name,
            "appended": appended,
            "opened": opened,
            "closed": closed,
            "wids": wids,
            "epoch": store.epoch,
        }

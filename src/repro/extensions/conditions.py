"""Attribute-guarded atomic patterns.

The paper's introduction motivates queries like *"how many students every
year get referrals with balance > $5,000?"* — but its formal language only
constrains activity names.  This module supplies the missing piece: a
:class:`Guarded` atom that additionally requires a predicate over the log
record's ``αin``/``αout`` attribute maps.

Because :class:`Guarded` subclasses :class:`~repro.core.pattern.Atomic`
and engines dispatch leaf matching through ``Atomic.matches``, guarded
atoms compose with every operator, engine and optimizer rewrite without
further changes.  (The SQL/ETL baseline *cannot* evaluate them — its
warehouse projection has no attribute maps — which is precisely the
paper's criticism of the ETL route.)

API
---
Fluent condition builders::

    from repro.extensions import attr, where
    from repro import act

    p = where("GetRefer", attr("out.balance") > 5000) >> act("GetReimburse")

Textual guards (parsed by :func:`parse_guard`, and embedded in query text
as ``GetRefer[out.balance > 5000]``)::

    GetRefer[out.balance > 5000 and out.hospital == "Public Hospital"]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import PatternSyntaxError
from repro.core.model import LogRecord
from repro.core.pattern import Atomic

__all__ = [
    "Condition",
    "Compare",
    "Exists",
    "AllOf",
    "AnyOf",
    "Not",
    "AttrRef",
    "attr",
    "Guarded",
    "where",
    "parse_guard",
]

#: Attribute scopes a condition may inspect: the input map, the output
#: map, or either.
_SCOPES = ("in", "out", "any")

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "~=": lambda a, b: isinstance(a, str) and str(b) in a,  # contains
}


class Condition:
    """Base class of record predicates; combinable with ``&``, ``|``, ``~``."""

    def evaluate(self, record: LogRecord) -> bool:
        """Whether ``record`` satisfies the condition."""
        raise NotImplementedError

    def to_guard_text(self) -> str:
        """Render in the guard grammar of :func:`parse_guard` (so guarded
        patterns round-trip through query text)."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "AllOf":
        return AllOf((self, other))

    def __or__(self, other: "Condition") -> "AnyOf":
        return AnyOf((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


def _literal(value: Any) -> str:
    """Render a guard literal (inverse of the guard tokenizer)."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace('"', "")
    return f'"{text}"'


def _lookup(record: LogRecord, scope: str, name: str) -> tuple[bool, Any]:
    """Resolve an attribute reference; returns (found, value).

    ``any`` prefers the output map (the post-activity value) and falls
    back to the input map.
    """
    if scope in ("out", "any") and name in record.attrs_out:
        return True, record.attrs_out[name]
    if scope in ("in", "any") and name in record.attrs_in:
        return True, record.attrs_in[name]
    return False, None


@dataclass(frozen=True)
class Compare(Condition):
    """``scope.name <op> value``; a missing attribute never satisfies a
    comparison, and type-incompatible comparisons are False, not errors
    (logs are heterogeneous)."""

    scope: str
    name: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.scope not in _SCOPES:
            raise ValueError(f"scope must be one of {_SCOPES}, got {self.scope!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, record: LogRecord) -> bool:
        found, actual = _lookup(record, self.scope, self.name)
        if not found:
            return False
        try:
            return bool(_OPS[self.op](actual, self.value))
        except TypeError:
            return False

    def to_guard_text(self) -> str:
        return f"{self.scope}.{self.name} {self.op} {_literal(self.value)}"

    def __repr__(self) -> str:
        return f"{self.scope}.{self.name} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Exists(Condition):
    """The attribute is present (read and/or written) on the record."""

    scope: str
    name: str

    def __post_init__(self) -> None:
        if self.scope not in _SCOPES:
            raise ValueError(f"scope must be one of {_SCOPES}, got {self.scope!r}")

    def evaluate(self, record: LogRecord) -> bool:
        found, __ = _lookup(record, self.scope, self.name)
        return found

    def to_guard_text(self) -> str:
        return f"{self.scope}.{self.name}"

    def __repr__(self) -> str:
        return f"{self.scope}.{self.name} exists"


@dataclass(frozen=True)
class AllOf(Condition):
    """Conjunction."""

    conditions: tuple[Condition, ...]

    def evaluate(self, record: LogRecord) -> bool:
        return all(c.evaluate(record) for c in self.conditions)

    def to_guard_text(self) -> str:
        parts = [
            f"({c.to_guard_text()})" if isinstance(c, AnyOf) else c.to_guard_text()
            for c in self.conditions
        ]
        return " and ".join(parts)

    def __repr__(self) -> str:
        return "(" + " and ".join(map(repr, self.conditions)) + ")"


@dataclass(frozen=True)
class AnyOf(Condition):
    """Disjunction."""

    conditions: tuple[Condition, ...]

    def evaluate(self, record: LogRecord) -> bool:
        return any(c.evaluate(record) for c in self.conditions)

    def to_guard_text(self) -> str:
        return " or ".join(c.to_guard_text() for c in self.conditions)

    def __repr__(self) -> str:
        return "(" + " or ".join(map(repr, self.conditions)) + ")"


@dataclass(frozen=True)
class Not(Condition):
    """Negation."""

    condition: Condition

    def evaluate(self, record: LogRecord) -> bool:
        return not self.condition.evaluate(record)

    def to_guard_text(self) -> str:
        return f"not ({self.condition.to_guard_text()})"

    def __repr__(self) -> str:
        return f"not {self.condition!r}"


@dataclass(frozen=True)
class AttrRef:
    """Fluent builder: ``attr("out.balance") > 5000`` → a :class:`Compare`.

    The reference string is ``scope.name`` with scope in ``in``/``out``/
    ``any``; a bare name means ``any``.
    """

    scope: str
    name: str

    def __gt__(self, value) -> Compare:
        return Compare(self.scope, self.name, ">", value)

    def __ge__(self, value) -> Compare:
        return Compare(self.scope, self.name, ">=", value)

    def __lt__(self, value) -> Compare:
        return Compare(self.scope, self.name, "<", value)

    def __le__(self, value) -> Compare:
        return Compare(self.scope, self.name, "<=", value)

    def __eq__(self, value) -> Compare:  # type: ignore[override]
        return Compare(self.scope, self.name, "==", value)

    def __ne__(self, value) -> Compare:  # type: ignore[override]
        return Compare(self.scope, self.name, "!=", value)

    def contains(self, value) -> Compare:
        """Substring containment (string attributes)."""
        return Compare(self.scope, self.name, "~=", value)

    def exists(self) -> Exists:
        return Exists(self.scope, self.name)

    def __hash__(self) -> int:  # __eq__ is hijacked for the DSL
        return hash((self.scope, self.name))


def attr(reference: str) -> AttrRef:
    """Build an attribute reference from ``"scope.name"`` or ``"name"``."""
    if "." in reference:
        scope, __, name = reference.partition(".")
    else:
        scope, name = "any", reference
    if scope not in _SCOPES:
        raise ValueError(f"scope must be one of {_SCOPES}, got {scope!r}")
    if not name:
        raise ValueError("attribute name must be nonempty")
    return AttrRef(scope, name)


@dataclass(frozen=True, slots=True, repr=False)
class Guarded(Atomic):
    """An atomic pattern with an attribute guard.

    Matches a record iff the base atomic pattern matches (activity name,
    polarity) *and* the condition holds on the record's attribute maps.
    """

    condition: Condition = field(default_factory=lambda: AllOf(()))

    def matches(self, record: LogRecord) -> bool:
        # explicit class reference: dataclass(slots=True) re-creates the
        # class, which breaks zero-argument super() in its methods
        return Atomic.matches(self, record) and self.condition.evaluate(record)

    def to_query_text(self) -> str:
        return (
            Atomic.to_query_text(self) + f"[{self.condition.to_guard_text()}]"
        )

    def __repr__(self) -> str:
        return (
            f"Guarded({'¬' if self.negated else ''}{self.name}"
            f"[{self.condition!r}])"
        )


def where(pattern: Atomic | str, condition: Condition) -> Guarded:
    """Attach an attribute guard to an atomic pattern (or bare name)."""
    if isinstance(pattern, str):
        pattern = Atomic(pattern)
    if not isinstance(pattern, Atomic):
        raise TypeError("guards apply to atomic patterns only")
    if isinstance(pattern, Guarded):
        return Guarded(
            pattern.name, pattern.negated, AllOf((pattern.condition, condition))
        )
    return Guarded(pattern.name, pattern.negated, condition)


# ---------------------------------------------------------------------------
# Guard-expression parser (used by the query syntax `Name[...]`)
# ---------------------------------------------------------------------------

def parse_guard(text: str) -> Condition:
    """Parse a guard expression.

    Grammar (keywords case-sensitive, ``and`` binds tighter than ``or``)::

        guard   := conj ("or" conj)*
        conj    := unit ("and" unit)*
        unit    := "not" unit | "(" guard ")" | comparison | ref
        comparison := ref OP literal      OP ∈ {==, !=, <, <=, >, >=, ~=}
        ref     := [scope "."] name       scope ∈ {in, out, any}
        literal := number | "string" | true | false | null | bareword

    A bare ``ref`` asserts attribute existence.
    """
    parser = _GuardParser(text)
    condition = parser.parse_or()
    parser.expect_end()
    return condition


class _GuardParser:
    """Recursive-descent parser over a simple token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = self._tokenize(text)
        self.position = 0

    @staticmethod
    def _tokenize(text: str) -> list[tuple[str, Any, int]]:
        tokens: list[tuple[str, Any, int]] = []
        i, n = 0, len(text)
        while i < n:
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch in "()":
                tokens.append(("paren", ch, i))
                i += 1
                continue
            two = text[i : i + 2]
            if two in ("==", "!=", "<=", ">=", "~="):
                tokens.append(("op", two, i))
                i += 2
                continue
            if ch in "<>":
                tokens.append(("op", ch, i))
                i += 1
                continue
            if ch == '"':
                end = text.find('"', i + 1)
                if end < 0:
                    raise PatternSyntaxError(
                        "unterminated string in guard", text=text, position=i
                    )
                tokens.append(("literal", text[i + 1 : end], i))
                i = end + 1
                continue
            if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
                j = i + 1
                while j < n and (text[j].isdigit() or text[j] in "._eE+-"):
                    j += 1
                raw = text[i:j].rstrip(".")
                try:
                    value: Any = int(raw)
                except ValueError:
                    try:
                        value = float(raw)
                    except ValueError:
                        raise PatternSyntaxError(
                            f"malformed number {raw!r} in guard",
                            text=text,
                            position=i,
                        ) from None
                tokens.append(("literal", value, i))
                i = i + len(raw)
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] in "_."):
                    j += 1
                word = text[i:j]
                if word in ("and", "or", "not"):
                    tokens.append(("keyword", word, i))
                elif word == "true":
                    tokens.append(("literal", True, i))
                elif word == "false":
                    tokens.append(("literal", False, i))
                elif word == "null":
                    tokens.append(("literal", None, i))
                else:
                    tokens.append(("word", word, i))
                i = j
                continue
            raise PatternSyntaxError(
                f"unexpected character {ch!r} in guard", text=text, position=i
            )
        return tokens

    # -- token access -----------------------------------------------------

    def peek(self) -> tuple[str, Any, int] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> tuple[str, Any, int]:
        token = self.peek()
        if token is None:
            raise PatternSyntaxError(
                "unexpected end of guard expression", text=self.text
            )
        self.position += 1
        return token

    def expect_end(self) -> None:
        token = self.peek()
        if token is not None:
            raise PatternSyntaxError(
                f"unexpected trailing {token[1]!r} in guard",
                text=self.text,
                position=token[2],
            )

    # -- grammar ------------------------------------------------------------

    def parse_or(self) -> Condition:
        parts = [self.parse_and()]
        while (token := self.peek()) and token[:2] == ("keyword", "or"):
            self.next()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else AnyOf(tuple(parts))

    def parse_and(self) -> Condition:
        parts = [self.parse_unit()]
        while (token := self.peek()) and token[:2] == ("keyword", "and"):
            self.next()
            parts.append(self.parse_unit())
        return parts[0] if len(parts) == 1 else AllOf(tuple(parts))

    def parse_unit(self) -> Condition:
        token = self.next()
        kind, value, position = token
        if (kind, value) == ("keyword", "not"):
            return Not(self.parse_unit())
        if (kind, value) == ("paren", "("):
            inner = self.parse_or()
            closing = self.next()
            if closing[:2] != ("paren", ")"):
                raise PatternSyntaxError(
                    "expected ')' in guard", text=self.text, position=closing[2]
                )
            return inner
        if kind == "word":
            reference = attr(value)
            nxt = self.peek()
            if nxt is not None and nxt[0] == "op":
                op = self.next()[1]
                literal = self.next()
                if literal[0] not in ("literal", "word"):
                    raise PatternSyntaxError(
                        "expected a literal after comparison operator",
                        text=self.text,
                        position=literal[2],
                    )
                return Compare(reference.scope, reference.name, op, literal[1])
            return Exists(reference.scope, reference.name)
        raise PatternSyntaxError(
            f"unexpected {value!r} in guard", text=self.text, position=position
        )

"""Windowed sequential operator.

CEP systems bound how far apart matched events may be ("B within 5 events
of A").  :class:`Within` is the incident-algebra counterpart: a sequential
operator whose gap constraint is

    ``last(o1) < first(o2) <= last(o1) + bound``

so ``Within(p1, p2, bound=1)`` coincides with the consecutive operator ⊙
and ``bound=∞`` with plain ⊳.  As a subclass of
:class:`~repro.core.pattern.Sequential` it inherits chain flattening
(Theorems 2/4 hold per-gap), engine support (both engines consult
``gap_ok``/``bound``), SQL compilation, and the optimizer's chain DP.

Query-text syntax: ``A ->[5] B``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern import Pattern, Sequential

__all__ = ["Within", "within"]


@dataclass(frozen=True, slots=True, repr=False)
class Within(Sequential):
    """``p1 ⊳[k] p2`` — p1 strictly before p2, at most ``bound`` positions
    between the end of the p1-incident and the start of the p2-incident."""

    bound: int = 1

    symbol = "⊳[k]"

    def __post_init__(self) -> None:
        # explicit class reference: dataclass(slots=True) re-creates the
        # class, which breaks zero-argument super() in its methods
        Sequential.__post_init__(self)
        if self.bound < 1:
            raise ValueError("window bound must be >= 1")

    @property
    def token(self) -> str:  # type: ignore[override]
        return f"->[{self.bound}]"

    def gap_ok(self, last1: int, first2: int) -> bool:
        return last1 < first2 <= last1 + self.bound


def within(p1: Pattern | str, p2: Pattern | str, bound: int) -> Within:
    """Build ``p1 ⊳[bound] p2`` (strings become positive atoms)."""
    from repro.core.pattern import _as_pattern

    return Within(_as_pattern(p1), _as_pattern(p2), bound)

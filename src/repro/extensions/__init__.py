"""Language extensions beyond the paper's core algebra.

* :mod:`repro.extensions.conditions` — attribute-guarded atomic patterns
  (the "balance > 5000" queries the paper's introduction motivates but
  its formal language leaves to future work);
* :mod:`repro.extensions.windows` — bounded-window variants of the
  sequential operator (CEP-style "within k steps" matching).
"""

from repro.extensions.conditions import (
    AllOf,
    AnyOf,
    AttrRef,
    Compare,
    Condition,
    Exists,
    Guarded,
    Not,
    attr,
    parse_guard,
    where,
)
from repro.extensions.windows import Within, within

__all__ = [
    "Condition",
    "Compare",
    "Exists",
    "AllOf",
    "AnyOf",
    "Not",
    "AttrRef",
    "attr",
    "Guarded",
    "where",
    "parse_guard",
    "Within",
    "within",
]

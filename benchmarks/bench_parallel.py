"""Experiment P1 — parallel sharded execution: speedup and exactness.

Incidents never span workflow instances (Definition 4), so evaluation
parallelises across wid-disjoint shards with *zero* change to the
result.  This bench measures what that buys on a process pool:

* serial (direct engine) vs 2- and 4-worker process-pool wall times on
  a generated clinic log;
* **byte-for-byte equality** of the parallel incident sequence against
  serial — asserted unconditionally, on every run, for both shard
  strategies;
* a ``BENCH_parallel.json`` artifact with the timing series (path via
  ``REPRO_BENCH_PARALLEL``, default: current directory).

Speedup assertions only run on multi-core hosts (``os.cpu_count() >=
2``); on a single core a process pool is pure overhead and the honest
claim is equality, not speed.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.eval.indexed import IndexedEngine
from repro.core.model import Log
from repro.core.parser import parse
from repro.exec import ParallelExecutor, evaluate_batch
from repro.workflow.engine import SimulationConfig, WorkflowEngine
from repro.workflow.models import clinic_referral_workflow

PATTERN_TEXT = "GetRefer -> CheckIn -> SeeDoctor"
JOB_COUNTS = (2, 4)


@pytest.fixture(scope="module")
def parallel_log() -> Log:
    """A clinic log large enough that per-shard work dwarfs fork cost."""
    engine = WorkflowEngine(clinic_referral_workflow())
    return engine.run(SimulationConfig(instances=300, seed=42))


def _timed(fn, repeats: int = 3) -> tuple[float, object]:
    """Best-of-N wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_parallel_matches_serial_and_times(parallel_log: Log) -> None:
    pattern = parse(PATTERN_TEXT)
    serial_s, serial = _timed(
        lambda: IndexedEngine().evaluate(parallel_log, pattern)
    )
    serial_incidents = list(serial)

    timings: dict[str, float] = {"serial": serial_s}
    for jobs in JOB_COUNTS:
        for strategy in ("hash", "range"):
            executor = ParallelExecutor(
                jobs=jobs, backend="process", strategy=strategy
            )
            wall_s, result = _timed(
                lambda: executor.evaluate(parallel_log, pattern)
            )
            assert result.incidents is not None
            # exactness: same set, same canonical order, element for element
            assert list(result.incidents) == serial_incidents, (
                jobs,
                strategy,
            )
            assert result.stats.incidents_produced > 0
            timings[f"process_j{jobs}_{strategy}"] = wall_s

    cores = os.cpu_count() or 1
    if cores >= 2:
        # with real cores, 2 workers must not be drastically slower than
        # serial (pool + pickling overhead bounded at 5x), and should
        # usually win on this log size; exact speedup is host-dependent
        assert timings["process_j2_hash"] < timings["serial"] * 5.0

    artifact = {
        "experiment": "P1-parallel",
        "pattern": PATTERN_TEXT,
        "records": len(parallel_log),
        "instances": len(parallel_log.wids),
        "incidents": len(serial_incidents),
        "cpu_count": cores,
        "timings_s": timings,
        "speedup_j2": timings["serial"] / timings["process_j2_hash"],
        "speedup_j4": timings["serial"] / timings["process_j4_hash"],
    }
    out_path = os.environ.get("REPRO_BENCH_PARALLEL", "BENCH_parallel.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)


def test_batch_shares_work(parallel_log: Log) -> None:
    """Shared-scan batch vs independent evaluation: fewer pairs, same
    results, and the wall-time of the batch under the independent sum."""
    queries = [
        "GetRefer -> CheckIn",
        "GetRefer -> CheckIn -> SeeDoctor",
        "GetRefer -> CheckIn -> UpdateRefer",
    ]
    patterns = [parse(q) for q in queries]

    indep_pairs = 0
    indep_results = []
    for pattern in patterns:
        engine = IndexedEngine()
        indep_results.append(engine.evaluate(parallel_log, pattern))
        assert engine.last_stats is not None
        indep_pairs += engine.last_stats.pairs_examined

    batch = evaluate_batch(parallel_log, patterns, optimize=False)
    for got, expected in zip(batch.results, indep_results):
        assert list(got) == list(expected)
    assert batch.stats.pairs_examined < indep_pairs
    assert batch.shared_hits > 0

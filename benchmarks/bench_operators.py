"""Experiment L1 — Lemma 1: per-operator evaluation cost scaling.

Lemma 1 claims, for input incident sets of sizes ``n1``, ``n2``:

* ``⊙``, ``⊳`` evaluate in ``O(n1 * n2)``;
* ``⊗`` in ``O(n1 * n2 * min(k1, k2))`` (dominated by dedup; additive when
  the activity multisets differ);
* ``⊕`` in ``O(n1 * n2 * (k1 + k2))``.

Each benchmark fixes ``n1 == n2 == n`` and sweeps ``n``; the measured
times must grow ~quadratically for the pairwise operators (doubling n →
~4x time).  The ``test_quadratic_shape`` check asserts the fitted scaling
exponent without the benchmark plugin, so the claim is also enforced in
plain test runs.
"""

from __future__ import annotations

import time

import pytest

from repro.core.eval.naive import (
    choice_eval,
    consecutive_eval,
    parallel_eval,
    sequential_eval,
)
from repro.core.incident import Incident
from repro.core.model import Log

SIZES = (64, 128, 256)

OPERATORS = {
    "consecutive": consecutive_eval,
    "sequential": sequential_eval,
    "choice": choice_eval,
    "parallel": parallel_eval,
}


def operand_sets(n: int) -> tuple[list[Incident], list[Incident]]:
    """Two incident lists of size n over one instance: As then Bs, so the
    sequential operator produces its full quadratic output."""
    log = Log.from_traces([["A"] * n + ["B"] * n])
    a = [Incident([r]) for r in log.with_activity("A")]
    b = [Incident([r]) for r in log.with_activity("B")]
    return a, b


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("operator", sorted(OPERATORS))
def test_operator_eval(benchmark, operator, n):
    inc1, inc2 = operand_sets(n)
    evaluate = OPERATORS[operator]
    benchmark.group = f"L1-{operator}"
    result = benchmark(evaluate, inc1, inc2)
    # sanity: output sizes match Lemma 1's bounds
    assert len(result) <= n * n


def _measure(evaluate, n: int) -> float:
    inc1, inc2 = operand_sets(n)
    started = time.perf_counter()
    evaluate(inc1, inc2)
    return time.perf_counter() - started


@pytest.mark.parametrize("operator", ["sequential", "parallel"])
def test_quadratic_shape(operator):
    """Fitted exponent of t(n) for the pairwise operators is ~2 (between
    1.5 and 3 to absorb constant-factor noise)."""
    import math

    evaluate = OPERATORS[operator]
    t1 = max(_measure(evaluate, 128), 1e-5)
    t2 = max(_measure(evaluate, 512), 1e-5)
    exponent = math.log(t2 / t1) / math.log(512 / 128)
    assert 1.3 <= exponent <= 3.2, f"{operator}: exponent {exponent:.2f}"


def test_null_tracer_overhead(bench_metrics):
    """Experiment O1 — disabled tracing is free.

    Evaluating under ``NULL_TRACER.span(...)`` must cost within 5% of the
    bare call.  Interleaved min-of-N timing cancels scheduler noise: the
    minimum of many repeats estimates the true cost floor of each variant.
    """
    from repro.obs.tracer import NULL_TRACER

    inc1, inc2 = operand_sets(256)

    def bare() -> None:
        sequential_eval(inc1, inc2)

    def traced() -> None:
        with NULL_TRACER.span("⊳", key=0) as span:
            sequential_eval(inc1, inc2)
            span.add(pairs=len(inc1) * len(inc2))

    for warmup in (bare, traced):
        warmup()
    best = {"bare": float("inf"), "traced": float("inf")}
    for _ in range(15):
        for name, run in (("bare", bare), ("traced", traced)):
            started = time.perf_counter()
            run()
            best[name] = min(best[name], time.perf_counter() - started)

    overhead = best["traced"] / best["bare"] - 1.0
    bench_metrics.gauge("bench.null_tracer.bare_s").set(best["bare"])
    bench_metrics.gauge("bench.null_tracer.traced_s").set(best["traced"])
    bench_metrics.gauge("bench.null_tracer.overhead_ratio").set(overhead)
    assert overhead <= 0.05, f"null tracer overhead {overhead:.1%} exceeds 5%"

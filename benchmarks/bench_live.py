"""Experiment O3 — live telemetry is (nearly) free.

The windowed aggregator (``repro.obs.live``) sits on the service's hot
dispatch path: every response — success, shed, or kill — funnels through
``QueryService._observe``, which records the outcome into the telemetry
ring plus two per-route histograms.  The acceptance gate for the admin
plane is that this whole observation layer costs within 5% of an
otherwise-identical service with ``ServiceConfig(telemetry=False)`` on
the warm-cache query path (the cheapest real request, so the worst case
for relative overhead).  A second measurement records the raw cost of
one ``observe_request`` + trailing-window merge, unasserted, so the
bench history shows drift in the aggregator itself.
"""

from __future__ import annotations

import json
import time

from repro.obs.live import WindowedAggregator
from repro.service import QueryService, ServiceConfig, StoreCatalog
from repro.workflow.engine import SimulationConfig, WorkflowEngine
from repro.workflow.models import clinic_referral_workflow

PATTERN = "GetRefer -> CheckIn -> SeeDoctor"


def _clinic_log(instances: int = 120):
    engine = WorkflowEngine(clinic_referral_workflow())
    return engine.run(SimulationConfig(instances=instances, seed=42))


def _best_of(runs, rounds: int = 15) -> dict[str, float]:
    """Interleaved min-of-N timing: the minimum over many alternating
    repeats estimates each variant's cost floor with scheduler noise
    cancelled (same protocol as ``bench_journal._best_of``)."""
    for _, run in runs:
        run()  # warmup
    best = {name: float("inf") for name, _ in runs}
    for _ in range(rounds):
        for name, run in runs:
            started = time.perf_counter()
            run()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def _warm_service(*, telemetry: bool) -> tuple[QueryService, bytes]:
    catalog = StoreCatalog()
    catalog.add_log("clinic", _clinic_log())
    service = QueryService(
        catalog, ServiceConfig(telemetry=telemetry)
    )
    body = json.dumps({"log": "clinic", "pattern": PATTERN}).encode()
    response = service.dispatch("POST", "/v1/query", body)  # prime the cache
    assert response.status == 200
    return service, body


def test_live_telemetry_overhead(bench_metrics):
    """Warm-cache ``POST /v1/query`` dispatch with the telemetry hub on
    costs within 5% of the same dispatch with telemetry off.

    Both loops call ``response.body()`` — the real server encodes every
    response, and the telemetry path measures the encoded size, so the
    comparison must charge encoding to both variants.
    """
    on_service, on_body = _warm_service(telemetry=True)
    off_service, off_body = _warm_service(telemetry=False)
    repeats = 50

    def with_telemetry() -> None:
        for _ in range(repeats):
            response = on_service.dispatch("POST", "/v1/query", on_body)
            assert response.status == 200
            response.body()

    def without_telemetry() -> None:
        for _ in range(repeats):
            response = off_service.dispatch("POST", "/v1/query", off_body)
            assert response.status == 200
            response.body()

    best = _best_of([("off", without_telemetry), ("on", with_telemetry)])
    overhead = best["on"] / best["off"] - 1.0
    bench_metrics.gauge("bench.live.telemetry_off_s").set(best["off"])
    bench_metrics.gauge("bench.live.telemetry_on_s").set(best["on"])
    bench_metrics.gauge("bench.live.overhead_ratio").set(overhead)
    assert on_service.live is not None and on_service.live.observed >= repeats
    assert off_service.live is None
    assert overhead <= 0.05, f"live telemetry overhead {overhead:.1%} exceeds 5%"


def test_aggregator_costs_recorded(bench_metrics):
    """Unasserted raw costs: one ``observe_request`` into a populated
    ring, and one 5-minute window merge over 30 buckets — the two
    operations the admin plane performs, isolated from HTTP dispatch."""
    aggregator = WindowedAggregator(bucket_s=10.0, window_s=900.0)
    for i in range(5_000):
        aggregator.observe_request(
            "/v1/query",
            200 if i % 17 else 408,
            0.001 + (i % 50) / 1000.0,
            store=("clinic", "orders", "loans")[i % 3],
            pattern=f"A -> B{i % 7}",
            pairs=100,
            killed=i % 17 == 0,
            ts=600.0 + i * 0.12,
        )

    def observe() -> None:
        for i in range(1_000):
            aggregator.observe_request(
                "/v1/query", 200, 0.002, store="clinic",
                pattern="A -> B1", pairs=10, ts=1190.0,
            )

    def merge() -> None:
        for _ in range(100):
            snapshot = aggregator.window(300.0, now=1200.0)
            assert snapshot.total.count > 0

    best = _best_of([("observe_1k", observe), ("merge_100", merge)], rounds=8)
    bench_metrics.gauge("bench.live.observe_1k_s").set(best["observe_1k"])
    bench_metrics.gauge("bench.live.window_merge_100_s").set(best["merge_100"])

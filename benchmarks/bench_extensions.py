"""Extension benchmarks — guards (S16) and windows (S21).

* **guard selectivity**: an attribute guard shrinks the leaf incident set
  before any join; time for ``GetRefer[...] -> GetReimburse`` must drop
  with guard selectivity (1.0 = plain atom);
* **window bound sweep**: ``A ->[k] B`` output and time grow with ``k``
  until they saturate at plain ``⊳``;
* windowed evaluation must not cost more than unbounded ⊳ on the indexed
  engine (its qualifying range is a sub-slice).
"""

from __future__ import annotations

import pytest

from repro.core.eval.indexed import IndexedEngine
from repro.core.model import Log
from repro.core.parser import parse


@pytest.fixture(scope="module")
def clinic(clinic_log_medium):
    return clinic_log_medium


GUARDS = {
    "none": "GetRefer -> GetReimburse",
    "half": "GetRefer[out.balance >= 2000] -> GetReimburse",
    "rare": "GetRefer[out.balance >= 8000] -> GetReimburse",
}


@pytest.mark.parametrize("selectivity", sorted(GUARDS))
def test_guarded_query(benchmark, clinic, selectivity):
    engine = IndexedEngine()
    pattern = parse(GUARDS[selectivity])
    benchmark.group = "S16-guard-selectivity"
    benchmark(engine.evaluate, clinic, pattern)


def test_guard_reduces_work(clinic):
    engine = IndexedEngine()
    engine.evaluate(clinic, parse(GUARDS["none"]))
    unguarded_pairs = engine.last_stats.pairs_examined
    engine.evaluate(clinic, parse(GUARDS["rare"]))
    guarded_pairs = engine.last_stats.pairs_examined
    assert guarded_pairs < unguarded_pairs


@pytest.fixture(scope="module")
def window_log() -> Log:
    # one A every 8 events, Bs everywhere: window bound controls output
    trace = (["A"] + ["B"] * 7) * 40
    return Log.from_traces([trace] * 5)


@pytest.mark.parametrize("bound", (1, 4, 16, 64))
def test_window_bound_sweep(benchmark, window_log, bound):
    engine = IndexedEngine()
    pattern = parse(f"A ->[{bound}] B")
    benchmark.group = "S21-window-bound"
    result = benchmark(engine.evaluate, window_log, pattern)
    assert len(result) > 0


def test_window_output_grows_with_bound(window_log):
    engine = IndexedEngine()
    sizes = [
        len(engine.evaluate(window_log, parse(f"A ->[{k}] B")))
        for k in (1, 4, 16)
    ]
    assert sizes[0] < sizes[1] < sizes[2]
    unbounded = len(engine.evaluate(window_log, parse("A -> B")))
    assert sizes[-1] <= unbounded


def test_windowed_never_examines_more_pairs_than_unbounded(window_log):
    engine = IndexedEngine()
    engine.evaluate(window_log, parse("A -> B"))
    unbounded_pairs = engine.last_stats.pairs_examined
    engine.evaluate(window_log, parse("A ->[4] B"))
    windowed_pairs = engine.last_stats.pairs_examined
    assert windowed_pairs <= unbounded_pairs

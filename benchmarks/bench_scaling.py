"""Experiment B2 — scaling with log size, and the activity index.

Section 3.2 of the paper claims "an index structure for each workflow id
and activity is used to generate log records for an activity node in
constant time".  Two measurements:

* atomic-query latency vs log size: with the per-activity index the cost
  is proportional to the *output*, not the log (flat for a fixed-rate
  activity); negated atoms force a scan and grow linearly — the contrast
  is the point;
* a fixed three-activity query vs number of workflow instances: near-
  linear, because incidents never span instances.
"""

from __future__ import annotations

import pytest

from repro.core.eval.indexed import IndexedEngine
from repro.core.parser import parse
from repro.workflow.engine import SimulationConfig, WorkflowEngine
from repro.workflow.models import clinic_referral_workflow

INSTANCE_COUNTS = (50, 100, 200, 400)


@pytest.fixture(scope="module")
def logs_by_size():
    engine = WorkflowEngine(clinic_referral_workflow())
    return {
        n: engine.run(SimulationConfig(instances=n, seed=3))
        for n in INSTANCE_COUNTS
    }


@pytest.mark.parametrize("instances", INSTANCE_COUNTS)
def test_atomic_query_via_index(benchmark, logs_by_size, instances):
    log = logs_by_size[instances]
    engine = IndexedEngine()
    pattern = parse("UpdateRefer")
    benchmark.group = "B2-atomic-indexed"
    benchmark(engine.evaluate, log, pattern)


@pytest.mark.parametrize("instances", INSTANCE_COUNTS)
def test_negated_atomic_query_scans(benchmark, logs_by_size, instances):
    log = logs_by_size[instances]
    engine = IndexedEngine()
    pattern = parse("!UpdateRefer")
    benchmark.group = "B2-atomic-negated-scan"
    benchmark(engine.evaluate, log, pattern)


@pytest.mark.parametrize("instances", INSTANCE_COUNTS)
def test_three_activity_query_scaling(benchmark, logs_by_size, instances):
    log = logs_by_size[instances]
    engine = IndexedEngine()
    pattern = parse("GetRefer -> UpdateRefer -> GetReimburse")
    benchmark.group = "B2-query-vs-instances"
    benchmark(engine.evaluate, log, pattern)


def test_per_instance_isolation_keeps_growth_near_linear(logs_by_size):
    """Machine-independent check: examined pairs grow ~linearly with the
    instance count for a fixed per-instance workload."""
    engine = IndexedEngine()
    pattern = parse("SeeDoctor -> PayTreatment")
    pairs = {}
    for n, log in logs_by_size.items():
        engine.evaluate(log, pattern)
        pairs[n] = engine.last_stats.pairs_examined
    smallest, largest = min(pairs), max(pairs)
    growth = pairs[largest] / max(pairs[smallest], 1)
    size_ratio = largest / smallest
    assert growth <= size_ratio * 2.5, pairs

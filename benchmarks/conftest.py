"""Shared benchmark fixtures and helpers.

The paper has no numeric tables — its quantitative content is the
complexity analysis (Lemma 1, Theorem 1) and the optimization-enabling
laws (Theorems 2-5).  Each ``bench_*.py`` regenerates the corresponding
claim as measured series; EXPERIMENTS.md records the expected vs measured
shapes.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.eval.indexed import IndexedEngine
from repro.core.eval.naive import NaiveEngine
from repro.core.incident import Incident
from repro.core.model import Log
from repro.obs.export import metrics_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.workflow.engine import SimulationConfig, WorkflowEngine
from repro.workflow.models import clinic_referral_workflow


def incident_list(log: Log, activity: str) -> list[Incident]:
    """Atomic incident list for one activity (operator-bench input)."""
    return [Incident([r]) for r in log.with_activity(activity)]


@pytest.fixture(scope="session")
def clinic_log_medium() -> Log:
    """A mid-sized clinic log shared by several benches."""
    engine = WorkflowEngine(clinic_referral_workflow())
    return engine.run(SimulationConfig(instances=150, seed=1))


@pytest.fixture(scope="session")
def bench_metrics() -> MetricsRegistry:
    """Session-wide metrics registry for benchmark bookkeeping.

    Benches record measurements here (counters/gauges/histograms); set
    ``REPRO_BENCH_METRICS=/path/to/out.json`` to dump the registry as a
    ``repro.obs.metrics/v1`` document after the run.
    """
    registry = MetricsRegistry()
    yield registry
    out = os.environ.get("REPRO_BENCH_METRICS")
    if out and len(registry):
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(metrics_to_dict(registry), fh, indent=2, ensure_ascii=False)
            fh.write("\n")

"""Registry adapter — the declarative bench cases under pytest-benchmark.

The named cases of :mod:`repro.obs.bench.cases` are the *recorded* perf
surface (``repro-logs bench run`` / ``BENCH_history.jsonl`` / the
committed baselines); this module exposes the same cases to the ad-hoc
``pytest benchmarks/ --benchmark-only`` workflow so both paths measure
identical workloads.  Setup runs outside the timed region in both
harnesses.

``test_smoke_suite_document_validates`` is the plain-pytest sanity pass:
one repetition of every smoke case, assembled and checked against the
``repro.obs.bench/v1`` schema — it catches a case whose setup broke
before CI's bench-smoke job does.
"""

from __future__ import annotations

import pytest

from repro.obs.bench import default_registry, run_suite
from repro.obs.export import validate_bench

_REGISTRY = default_registry()
_SMOKE = [case.name for case in _REGISTRY.select(suite="smoke")]
_FULL_ONLY = [
    case.name for case in _REGISTRY.select(suite="full") if case.name not in _SMOKE
]


@pytest.mark.parametrize("name", _SMOKE)
def test_registry_case(benchmark, name):
    case = _REGISTRY.get(name)
    body = case.build()
    benchmark.group = f"registry-{name.split('.')[0]}"
    benchmark(body)


@pytest.mark.parametrize("name", _FULL_ONLY)
@pytest.mark.benchmark(warmup=False)
def test_registry_case_full(benchmark, name):
    """Full-suite extras (process pools, scans) — heavier, same adapter."""
    case = _REGISTRY.get(name)
    body = case.build()
    benchmark.group = f"registry-{name.split('.')[0]}"
    benchmark.pedantic(body, rounds=3, iterations=1)


def test_smoke_suite_document_validates():
    cases = _REGISTRY.select(suite="smoke")
    document = run_suite(cases, suite="smoke", warmup=0, repeats=1)
    validate_bench(document)
    assert {c["name"] for c in document["cases"]} == set(_SMOKE)

"""Experiment T1 — Theorem 1: the ``O(m^k)`` worst case.

The worst case is the left-deep ⊕-chain ``(((t ⊕ t) ⊕ t) … ⊕ t)`` over a
single-instance log whose ``m`` records all carry activity ``t``: with
``k`` operators the incident set is every (k+1)-subset of the records —
``C(m, k+1)`` incidents — and evaluation cost follows.

Two sweeps: output/time vs ``k`` at fixed ``m``, and vs ``m`` at fixed
``k``.  Expected shapes: exponential in ``k``; polynomial of degree
``k+1`` in ``m``.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.core.eval.naive import NaiveEngine
from repro.core.eval.indexed import IndexedEngine
from repro.core.pattern import parallel
from repro.generator.synthetic import worst_case_log


def chain(k: int):
    """The Theorem 1 pattern with k ⊕ operators."""
    return parallel(*(["t"] * (k + 1)))


@pytest.mark.parametrize("k", (1, 2, 3))
def test_parallel_chain_vs_k(benchmark, k):
    log = worst_case_log(14)
    engine = NaiveEngine()
    benchmark.group = "T1-vs-k (m=14)"
    result = benchmark(engine.evaluate, log, chain(k))
    assert len(result) == math.comb(14, k + 1)


@pytest.mark.parametrize("m", (8, 16, 32))
def test_parallel_chain_vs_m(benchmark, m):
    log = worst_case_log(m)
    engine = NaiveEngine()
    benchmark.group = "T1-vs-m (k=2)"
    result = benchmark(engine.evaluate, log, chain(2))
    assert len(result) == math.comb(m, 3)


def test_exponential_growth_in_k():
    """Doubling k at fixed m must blow the runtime up super-linearly."""
    log = worst_case_log(16)
    engine = IndexedEngine()

    def measure(k: int) -> float:
        started = time.perf_counter()
        engine.evaluate(log, chain(k))
        return time.perf_counter() - started

    t_small = max(measure(1), 1e-6)
    t_large = measure(3)
    # output grows C(16,2)=120 -> C(16,4)=1820 (~15x); the pairwise work
    # grows faster still
    assert t_large / t_small > 5


def test_output_size_formula_holds():
    for m in (6, 10, 14):
        for k in (1, 2):
            result = NaiveEngine().evaluate(worst_case_log(m), chain(k))
            assert len(result) == math.comb(m, k + 1)
